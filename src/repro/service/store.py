"""The content-addressed artifact store behind the what-if service.

Artifacts are compressed once (``POST /artifacts``), persisted as
binary ``.rpb`` containers (:mod:`repro.core.binfmt`), and addressed by
the SHA-256 of their container bytes — the write is deterministic
(sorted-key header, fixed buffer layout), so the same compression
result always yields the same id, and re-uploading an identical
artifact is a no-op that returns the existing id.

Serving state is a size-bounded LRU of :class:`~repro.service.warm.\
WarmArtifact` entries keyed by that hash. Entries are **mmap-backed**:
evicting one drops Python wrappers and lets the OS reclaim the page
cache, and re-admitting it is an O(1) re-map plus the warm-index build
— no deserialization of polynomial objects either way. Hit/miss/
eviction counters feed ``GET /healthz``.
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ArtifactNotFound, SerializeError
from repro.service.warm import WarmArtifact

if TYPE_CHECKING:
    from repro.api.artifact import CompressedProvenance

__all__ = ["ArtifactStore"]

#: Store ids are the full SHA-256 hex digest of the container bytes.
_ID_PATTERN = re.compile(r"^[0-9a-f]{64}$")


class ArtifactStore:
    """A spool directory of ``.rpb`` containers + an LRU of warm entries.

    :param root: spool directory (created if missing); one
        ``<sha256>.rpb`` file per artifact.
    :param capacity: maximum *resident* (warm, mmap-backed) artifacts;
        least-recently-used entries are evicted past that — their spool
        files stay, so a later request re-maps them on demand.
    """

    def __init__(self, root: str | os.PathLike, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, WarmArtifact] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # --------------------------------------------------------------- writes

    def put(
        self,
        artifact: CompressedProvenance,
        *,
        warm_from: WarmArtifact | None = None,
    ) -> str:
        """Persist ``artifact`` and return its content-hash id.

        The container is written to a temp file in the spool directory,
        hashed, and atomically renamed to ``<sha256>.rpb`` — concurrent
        writers of the same artifact race benignly (same bytes, same
        name). The stored entry is reloaded mmap-backed so the resident
        copy is the cheap-to-evict one, not the builder's object graph.

        :param warm_from: the warm entry the artifact was mutated from
            (the ``POST /artifacts/{id}/extend`` path). When the cut is
            unchanged, the new entry is built with
            :meth:`WarmArtifact.repaired
            <repro.service.warm.WarmArtifact.repaired>` — the lift
            index carries over instead of being rebuilt from the tree.
        """
        from repro.core import binfmt

        handle, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".incoming-", suffix=".rpb"
        )
        tmp = Path(tmp_name)
        try:
            os.close(handle)
            binfmt.write_artifact(artifact, tmp)
            artifact_id = _hash_file(tmp)
            final = self.path_of(artifact_id)
            os.replace(tmp, final)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        if artifact_id not in self._entries:
            loaded = self._load_verified(artifact_id)
            if (
                warm_from is not None
                and warm_from.artifact.vvs.labels == loaded.vvs.labels
            ):
                entry = warm_from.repaired(loaded)
            else:
                entry = WarmArtifact(loaded)
            self._admit(artifact_id, entry)
        return artifact_id

    # ---------------------------------------------------------------- reads

    def get(self, artifact_id: str) -> WarmArtifact:
        """The warm entry for ``artifact_id`` (LRU-promoted).

        Resident entries return immediately; spooled ones are re-mapped
        and re-warmed (a *miss*). Unknown ids — malformed, or with no
        spool file — raise :class:`~repro.errors.ArtifactNotFound`.
        """
        entry = self._entries.get(artifact_id)
        if entry is not None:
            self._entries.move_to_end(artifact_id)
            self.hits += 1
            return entry
        if not _ID_PATTERN.fullmatch(artifact_id):
            raise ArtifactNotFound(
                f"invalid artifact id {artifact_id!r} (expected the "
                "64-hex-digit content hash returned by POST /artifacts)"
            )
        if not self.path_of(artifact_id).exists():
            raise ArtifactNotFound(f"no artifact {artifact_id!r} in the store")
        self.misses += 1
        entry = self._map(artifact_id)
        self._admit(artifact_id, entry)
        return entry

    def __contains__(self, artifact_id: str) -> bool:
        return artifact_id in self._entries or (
            bool(_ID_PATTERN.fullmatch(artifact_id))
            and self.path_of(artifact_id).exists()
        )

    def path_of(self, artifact_id: str) -> Path:
        """The spool path of ``artifact_id`` (existing or not)."""
        return self.root / f"{artifact_id}.rpb"

    def stats(self) -> dict[str, object]:
        """Cache counters and occupancy, JSON-ready (for ``/healthz``)."""
        return {
            "capacity": self.capacity,
            "resident": len(self._entries),
            "spooled": sum(1 for _ in self.root.glob("*.rpb")),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    # ------------------------------------------------------------ internals

    def _map(self, artifact_id: str) -> WarmArtifact:
        """A cold warm entry for ``artifact_id`` (see :meth:`_load_verified`)."""
        return WarmArtifact(self._load_verified(artifact_id))

    def _load_verified(self, artifact_id: str) -> CompressedProvenance:
        """Load ``artifact_id``'s container mmap-backed, verifying that
        the bytes still hash to the id (a spool file corrupted or
        swapped behind the store's back must not serve under the old
        content address)."""
        from repro.api.artifact import CompressedProvenance

        path = self.path_of(artifact_id)
        actual = _hash_file(path)
        if actual != artifact_id:
            raise SerializeError(
                f"content hash mismatch for artifact {artifact_id!r}: the "
                f"spool file hashes to {actual!r} — the container was "
                "modified after it was stored"
            )
        return CompressedProvenance.load(path, mmap=True)

    def _admit(self, artifact_id: str, entry: WarmArtifact) -> None:
        self._entries[artifact_id] = entry
        self._entries.move_to_end(artifact_id)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1


def _hash_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()
