"""Tests for the zero-copy binary artifact container (core.binfmt).

The contract under test: a saved artifact answers **bit-identically**
whichever envelope it traveled through — the JSON text or the binary
``.rpb`` container, mmap'd or fully read — including exact-coefficient
sidecars (Fractions, big ints), and anything malformed raises a clear
:class:`SerializeError` instead of a deep NumPy/KeyError.
"""

import os
import pickle
from fractions import Fraction

import numpy
import pytest
from hypothesis import given, settings, strategies as st

from repro.api.artifact import CompressedProvenance
from repro.api.session import ProvenanceSession
from repro.core import binfmt, serialize
from repro.core.forest import AbstractionForest, ValidVariableSet
from repro.core.polynomial import Monomial, Polynomial, PolynomialSet
from repro.core.serialize import SerializeError
from repro.core.tree import AbstractionTree


def make_artifact(polynomials):
    """Wrap any PolynomialSet in a minimal artifact (trivial forest)."""
    leaves = sorted(polynomials.variables) or ["x"]
    forest = AbstractionForest([AbstractionTree.from_nested(("R", leaves))])
    return CompressedProvenance(
        polynomials,
        forest,
        forest.root_vvs(),
        algorithm="greedy",
        bound=max(1, polynomials.num_monomials),
        original_size=polynomials.num_monomials,
        original_granularity=polynomials.num_variables,
        monomial_loss=0,
        variable_loss=0,
    )


@pytest.fixture(scope="module")
def artifact():
    from repro.workloads.telephony import (
        example13_polynomials, months_tree, plans_tree,
    )

    forest = AbstractionForest([plans_tree(), months_tree()])
    return ProvenanceSession(example13_polynomials(), forest).compress(bound=9)


def probe_scenarios(artifact, count=6):
    names = sorted(artifact.polynomials.variables)
    return [
        {name: float((i + j) % 4) / 2 for j, name in enumerate(names)}
        for i in range(count)
    ]


def answers(artifact, scenarios):
    return [
        (a.name, a.values, a.exact) for a in artifact.ask_many(scenarios)
    ]


class TestRoundTrip:
    def test_binary_round_trip_equal(self, artifact, tmp_path):
        path = str(tmp_path / "a.rpb")
        assert artifact.save(path) == path
        assert binfmt.is_binary(path)
        loaded = CompressedProvenance.load(path)
        assert loaded == artifact
        assert serialize.forest_to_dict(loaded.forest) == \
            serialize.forest_to_dict(artifact.forest)
        assert loaded.vvs.labels == artifact.vvs.labels

    def test_json_dumps_identical_after_binary_trip(self, artifact, tmp_path):
        """Re-serializing the binary-loaded artifact reproduces the JSON
        envelope byte for byte — nothing was lost or retyped."""
        path = str(tmp_path / "a.rpb")
        artifact.save(path)
        assert serialize.dumps(CompressedProvenance.load(path)) == \
            serialize.dumps(artifact)

    def test_answers_bit_identical_across_formats(self, artifact, tmp_path):
        json_path = str(tmp_path / "a.json")
        bin_path = str(tmp_path / "a.rpb")
        artifact.save(json_path, format="json")
        artifact.save(bin_path, format="bin")
        scenarios = probe_scenarios(artifact)
        expected = answers(artifact, scenarios)
        assert answers(CompressedProvenance.load(json_path), scenarios) == \
            expected
        assert answers(CompressedProvenance.load(bin_path), scenarios) == \
            expected
        assert answers(
            CompressedProvenance.load(bin_path, mmap=False), scenarios
        ) == expected

    def test_load_path_auto_detects(self, artifact, tmp_path):
        json_path = str(tmp_path / "a.json")
        bin_path = str(tmp_path / "a.rpb")
        artifact.save(json_path)
        artifact.save(bin_path)
        assert serialize.load_path(json_path) == artifact
        assert serialize.load_path(bin_path) == artifact
        assert not binfmt.is_binary(json_path)

    def test_session_load_artifact(self, artifact, tmp_path):
        path = str(tmp_path / "a.rpb")
        artifact.save(path)
        assert ProvenanceSession.load_artifact(path) == artifact

    def test_save_format_validation(self, artifact, tmp_path):
        with pytest.raises(ValueError, match="unknown artifact format"):
            artifact.save(str(tmp_path / "a.json"), format="msgpack")

    def test_auto_format_by_extension(self, artifact, tmp_path):
        for name, binary in [
            ("a.rpb", True), ("a.BIN", True), ("a.json", False),
            ("a.txt", False),
        ]:
            path = str(tmp_path / name)
            artifact.save(path)
            assert binfmt.is_binary(path) is binary

    def test_binary_smaller_or_reloadable_resave(self, artifact, tmp_path):
        """A binary-loaded artifact can itself be re-saved (both formats)
        and still answers identically — the lazy set materializes."""
        first = str(tmp_path / "a.rpb")
        artifact.save(first)
        loaded = CompressedProvenance.load(first)
        second = str(tmp_path / "b.json")
        loaded.save(second)
        assert CompressedProvenance.load(second) == artifact


class TestExactCoefficients:
    def test_fraction_and_bigint_round_trip(self, tmp_path):
        big = 2**80 + 7
        polys = PolynomialSet([
            Polynomial([
                (Monomial([("x", 2), ("y", 1)]), Fraction(22, 7)),
                (Monomial([("x", 1)]), big),
                (Monomial([("y", 3)]), -(2**70)),
            ]),
            Polynomial([
                (Monomial([("z", 1)]), 0.1),
                (Monomial([]), 3),
            ]),
        ])
        original = make_artifact(polys)
        path = str(tmp_path / "exact.rpb")
        original.save(path)
        loaded = CompressedProvenance.load(path)
        assert loaded.polynomials == polys
        assert serialize.dumps(loaded) == serialize.dumps(original)
        terms = {
            coeff for poly in loaded.polynomials for coeff, _ in poly
        }
        assert Fraction(22, 7) in terms
        assert big in terms

    def test_int64_boundary_values(self, tmp_path):
        polys = PolynomialSet([
            Polynomial([
                (Monomial([("x", 1)]), 2**63 - 1),
                (Monomial([("y", 1)]), -(2**63)),
                (Monomial([("z", 1)]), 2**63),  # first non-i64 int
            ]),
        ])
        original = make_artifact(polys)
        path = str(tmp_path / "bounds.rpb")
        original.save(path)
        assert CompressedProvenance.load(path).polynomials == polys

    def test_empty_set_round_trip(self, tmp_path):
        original = make_artifact(PolynomialSet([]))
        path = str(tmp_path / "empty.rpb")
        original.save(path)
        loaded = CompressedProvenance.load(path)
        assert loaded == original
        assert len(loaded.polynomials) == 0
        assert loaded.polynomials.num_monomials == 0
        assert serialize.dumps(loaded) == serialize.dumps(original)


COEFF = st.one_of(
    st.integers(min_value=-(2**70), max_value=2**70).filter(lambda v: v != 0),
    st.floats(allow_nan=False, allow_infinity=False).filter(lambda v: v != 0),
    st.fractions(min_value=-100, max_value=100).filter(lambda v: v != 0),
)

MONOMIAL = st.dictionaries(
    st.sampled_from(["x", "y", "z", "w"]),
    st.integers(min_value=1, max_value=4),
    max_size=3,
)

POLYNOMIAL = st.lists(st.tuples(MONOMIAL, COEFF), max_size=5)

POLYNOMIAL_SET = st.lists(POLYNOMIAL, max_size=4)


class TestRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(spec=POLYNOMIAL_SET)
    def test_binary_and_json_agree(self, tmp_path_factory, spec):
        """For arbitrary mixed-coefficient sets, the binary container
        round-trips to the same object and the same JSON bytes as the
        JSON envelope does."""
        polys = PolynomialSet([
            Polynomial(
                (Monomial(sorted(powers.items())), coeff)
                for powers, coeff in terms
            )
            for terms in spec
        ])
        original = make_artifact(polys)
        tmp = tmp_path_factory.mktemp("binfmt")
        bin_path = str(tmp / "a.rpb")
        original.save(bin_path)
        from_bin = CompressedProvenance.load(bin_path)
        from_json = serialize.loads(serialize.dumps(original))
        assert from_bin.polynomials == polys
        assert from_bin == from_json
        assert serialize.dumps(from_bin) == serialize.dumps(from_json)
        scenarios = probe_scenarios(original, count=3)
        assert answers(from_bin, scenarios) == answers(original, scenarios)


class TestCorruption:
    def save(self, artifact, tmp_path):
        path = str(tmp_path / "good.rpb")
        artifact.save(path)
        return path, open(path, "rb").read()

    def reload(self, tmp_path, data):
        path = str(tmp_path / "bad.rpb")
        with open(path, "wb") as handle:
            handle.write(data)
        return binfmt.read_artifact(path)

    def test_truncations_raise_serialize_error(self, artifact, tmp_path):
        _, data = self.save(artifact, tmp_path)
        for cut in (0, 4, 11, 40, len(data) // 2, len(data) - 1):
            with pytest.raises(SerializeError):
                self.reload(tmp_path, data[:cut])

    def test_bad_magic(self, artifact, tmp_path):
        _, data = self.save(artifact, tmp_path)
        with pytest.raises(SerializeError, match="magic"):
            self.reload(tmp_path, b"NOTMAGIC" + data[8:])

    def test_corrupt_header_json(self, artifact, tmp_path):
        _, data = self.save(artifact, tmp_path)
        length = int.from_bytes(data[8:12], "little")
        mangled = data[:12] + b"\xff" * length + data[12 + length:]
        with pytest.raises(SerializeError, match="header"):
            self.reload(tmp_path, mangled)

    def test_unknown_schema(self, artifact, tmp_path):
        _, data = self.save(artifact, tmp_path)
        length = int.from_bytes(data[8:12], "little")
        header = data[12:12 + length].replace(
            b'"schema":1', b'"schema":9'
        )
        assert len(header) == length
        with pytest.raises(SerializeError, match="schema"):
            self.reload(tmp_path, data[:12] + header + data[12 + length:])

    def test_wrong_kind_for_artifact(self, artifact, tmp_path):
        path = str(tmp_path / "c.bin")
        blob = binfmt.dumps_compiled(artifact.polynomials.compiled())
        with open(path, "wb") as handle:
            handle.write(blob)
        with pytest.raises(SerializeError, match="kind"):
            binfmt.read_artifact(path)
        # ...but read_compiled accepts either kind.
        assert binfmt.read_compiled(path).num_polynomials == len(
            artifact.polynomials
        )

    def test_json_loader_rejects_binary_text_mode(self, artifact, tmp_path):
        """Feeding container bytes to the JSON loader fails as an
        unknown envelope, not a random decode crash."""
        path, data = self.save(artifact, tmp_path)
        with pytest.raises(ValueError):
            serialize.loads(data.decode("latin-1"))

    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.rpb")
        open(path, "wb").close()
        with pytest.raises(SerializeError, match="magic"):
            binfmt.read_artifact(path)


class TestLazyMaterialization:
    def test_ask_does_not_materialize(self, artifact, tmp_path):
        path = str(tmp_path / "a.rpb")
        artifact.save(path)
        loaded = CompressedProvenance.load(path)
        polys = loaded.polynomials
        assert isinstance(polys, binfmt.BufferBackedPolynomialSet)
        loaded.ask_many(probe_scenarios(artifact, count=2))
        assert len(polys) == len(artifact.polynomials)
        assert polys.num_monomials == artifact.polynomials.num_monomials
        assert polys.variables == artifact.polynomials.variables
        assert polys._materialized is None  # still lazy after all that
        assert polys.polynomials  # force it
        assert polys._materialized is not None
        assert polys == artifact.polynomials

    def test_append_raises(self, artifact, tmp_path):
        path = str(tmp_path / "a.rpb")
        artifact.save(path)
        loaded = CompressedProvenance.load(path)
        with pytest.raises(TypeError, match="read-only"):
            loaded.polynomials.append(Polynomial([]))

    def test_views_are_read_only(self, artifact, tmp_path):
        path = str(tmp_path / "a.rpb")
        artifact.save(path)
        compiled = CompressedProvenance.load(path).polynomials.compiled()
        with pytest.raises(ValueError):
            compiled._coeffs[0] = 1.0


class TestCompiledTransport:
    def test_mmap_source_recorded(self, artifact, tmp_path):
        path = str(tmp_path / "a.rpb")
        artifact.save(path)
        compiled = CompressedProvenance.load(path).polynomials.compiled()
        assert compiled.source == os.path.abspath(path)
        eager = CompressedProvenance.load(path, mmap=False)
        assert eager.polynomials.compiled().source is None

    def test_pickle_shrinks_to_path(self, artifact, tmp_path):
        path = str(tmp_path / "a.rpb")
        artifact.save(path)
        compiled = CompressedProvenance.load(path).polynomials.compiled()
        payload = pickle.dumps(compiled)
        # O(path), not O(matrix): far below the file's own size.
        assert len(payload) < os.path.getsize(path)
        clone = pickle.loads(payload)
        assert clone.source == compiled.source
        scenarios = probe_scenarios(artifact, count=3)
        assert numpy.array_equal(
            clone.evaluate(scenarios), compiled.evaluate(scenarios)
        )

    def test_plain_compiled_pickle_still_works(self, artifact):
        compiled = artifact.polynomials.compiled()
        assert compiled.source is None
        clone = pickle.loads(pickle.dumps(compiled))
        scenarios = probe_scenarios(artifact, count=3)
        assert numpy.array_equal(
            clone.evaluate(scenarios), compiled.evaluate(scenarios)
        )

    def test_dumps_compiled_buffer_round_trip(self, artifact):
        compiled = artifact.polynomials.compiled()
        blob = binfmt.dumps_compiled(compiled)
        assert blob[:8] == binfmt.MAGIC
        clone = binfmt.compiled_from_buffer(blob)
        scenarios = probe_scenarios(artifact, count=4)
        assert numpy.array_equal(
            clone.evaluate(scenarios), compiled.evaluate(scenarios)
        )

    def test_compiled_from_memoryview(self, artifact):
        """The shared-memory shape: a writable memoryview over the
        container bytes still yields read-only compiled views."""
        compiled = artifact.polynomials.compiled()
        backing = bytearray(binfmt.dumps_compiled(compiled))
        clone = binfmt.compiled_from_buffer(memoryview(backing))
        assert not clone._coeffs.flags.writeable
        scenarios = probe_scenarios(artifact, count=2)
        assert numpy.array_equal(
            clone.evaluate(scenarios), compiled.evaluate(scenarios)
        )
