"""Algorithm 2 — greedy valid variable selection for forests (§3.2).

The multi-tree optimization problem is NP-hard (Proposition 11 /
Appendix A), so the paper proposes a greedy heuristic: start from the
identity cut (all leaves), and repeatedly replace a set of sibling nodes
by their parent, always choosing the *candidate* parent (a node all of
whose children are currently chosen) that entails the minimal variable
loss, until the provenance is small enough or no candidate remains.

A subtlety the paper's Example 15 exposes: with multiple trees the
cumulative monomial loss is **not** the sum of per-tree losses — merges
compose across trees (after months collapse into a quarter, the two
business plans sit in *one* monomial pair instead of two). The
implementation therefore maintains a *working state*: the polynomials
abstracted by the current cut, with an inverted variable→monomial index,
and applies each chosen candidate incrementally. This also matches the
paper's complexity claim of ``O(n · |P|_M)`` work per candidate
application.

Tie-breaking: candidates are compared by (minimal incremental VL,
maximal incremental ML, label) — the ML tie-break reproduces Example 15,
where ``q1`` (VL 1, ML 7) is preferred over ``SB`` (VL 1, ML 2).
"""

from __future__ import annotations

from repro.core.abstraction import ensure_set
from repro.core.forest import AbstractionForest, ValidVariableSet
from repro.core.tree import AbstractionTree
from repro.algorithms.result import AbstractionResult

__all__ = ["greedy_vvs", "GreedyStep"]


class GreedyStep:
    """One iteration of the greedy loop (kept in ``result.trace``)."""

    __slots__ = ("chosen", "delta_ml", "delta_vl", "cumulative_ml", "cumulative_vl")

    def __init__(self, chosen, delta_ml, delta_vl, cumulative_ml, cumulative_vl):
        self.chosen = chosen
        self.delta_ml = delta_ml
        self.delta_vl = delta_vl
        self.cumulative_ml = cumulative_ml
        self.cumulative_vl = cumulative_vl

    def __repr__(self):
        return (
            f"GreedyStep({self.chosen!r}, dML={self.delta_ml}, "
            f"dVL={self.delta_vl}, ML={self.cumulative_ml}, VL={self.cumulative_vl})"
        )


class _WorkingState:
    """The polynomials under the current cut, updatable in place.

    * ``polys`` — one ``set`` of monomial keys per polynomial, where a
      key is a sorted tuple of ``(variable, exponent)`` pairs with leaf
      variables replaced by their current group representative;
    * ``index`` — representative/variable → set of ``(poly, key)`` pairs
      for every monomial the variable occurs in.

    Merging sibling groups into a parent rewrites exactly the indexed
    monomials; identical rewrites collapse, which is the monomial loss.
    """

    __slots__ = ("polys", "index")

    def __init__(self, polynomials):
        self.polys = []
        self.index = {}
        for poly_number, polynomial in enumerate(polynomials):
            keys = set()
            for monomial in polynomial.monomials:
                key = monomial.powers
                keys.add(key)
                for var, _ in key:
                    self.index.setdefault(var, set()).add((poly_number, key))
            self.polys.append(keys)

    @property
    def size(self):
        """``|P↓S|_M`` under the current cut."""
        return sum(len(keys) for keys in self.polys)

    @property
    def granularity(self):
        """``|P↓S|_V`` under the current cut."""
        return sum(1 for entries in self.index.values() if entries)

    def present(self, variable):
        """Does ``variable`` occur in the current abstracted polynomials?"""
        return bool(self.index.get(variable))

    def _rewrites(self, group, parent):
        """Yield ``(poly, old_key, new_key)`` for merging ``group``→``parent``.

        Forest compatibility guarantees a monomial holds at most one
        variable of the tree, hence exactly one member of ``group``.
        """
        members = set(group)
        seen = set()
        for member in group:
            for entry in self.index.get(member, ()):
                if entry in seen:
                    continue
                seen.add(entry)
                poly_number, key = entry
                new_key = tuple(
                    sorted(
                        (parent if var in members else var, exp)
                        for var, exp in key
                    )
                )
                yield poly_number, key, new_key

    def simulate_merge(self, group, parent):
        """Incremental ML of merging ``group`` into ``parent`` (no mutation)."""
        per_poly_old = {}
        per_poly_new = {}
        for poly_number, _, new_key in self._rewrites(group, parent):
            per_poly_old[poly_number] = per_poly_old.get(poly_number, 0) + 1
            per_poly_new.setdefault(poly_number, set()).add(new_key)
        loss = 0
        for poly_number, count in per_poly_old.items():
            survivors = per_poly_new[poly_number]
            # A rewrite may also collide with an untouched monomial that
            # already equals the new key (possible only if parent == an
            # existing variable, which compatibility rules out) — so the
            # survivor count is just the distinct rewritten keys.
            loss += count - len(survivors)
        return loss

    def apply_merge(self, group, parent):
        """Merge ``group`` into ``parent``; return the monomial loss."""
        rewrites = list(self._rewrites(group, parent))
        loss = 0
        for poly_number, old_key, new_key in rewrites:
            keys = self.polys[poly_number]
            keys.discard(old_key)
            if new_key in keys:
                loss += 1
            else:
                keys.add(new_key)
            # Re-index every variable of the rewritten monomial.
            for var, _ in old_key:
                entries = self.index.get(var)
                if entries is not None:
                    entries.discard((poly_number, old_key))
            for var, _ in new_key:
                self.index.setdefault(var, set()).add((poly_number, new_key))
        for member in set(group):
            if member != parent:
                self.index.pop(member, None)
        return loss


def greedy_vvs(polynomials, forest, bound, *, clean=True, ml_tie_break=True):
    """Greedy multi-tree abstraction (Algorithm 2).

    :param polynomials: a :class:`Polynomial` or :class:`PolynomialSet`.
    :param forest: an :class:`AbstractionForest` (a single
        :class:`AbstractionTree` is accepted and wrapped).
    :param bound: desired maximum number of monomials ``B``.
    :param clean: apply footnote 1 before running.
    :param ml_tie_break: break VL ties by simulating each tied
        candidate's monomial loss and preferring the largest (the
        Example 15 behaviour). Disabling it breaks ties by label only —
        cheaper per round, possibly more rounds and worse cuts; the
        ablation benchmark quantifies the trade.

    Unlike :func:`repro.algorithms.optimal.optimal_vvs`, the greedy
    never raises for an unreachable bound — it abstracts as far as the
    forest allows and returns the final cut (check
    ``result.abstracted_size`` against your bound), mirroring the
    paper's "while ML(S) < k and C ≠ ∅" loop, which simply terminates
    when candidates run out.

    >>> from repro.core.parser import parse_set
    >>> polys = parse_set(["2*b1*m1 + 3*b1*m3 + 4*b2*m1 + 5*b2*m3"])
    >>> tree = AbstractionTree.from_nested(("SB", ["b1", "b2"]))
    >>> result = greedy_vvs(polys, tree, bound=2)
    >>> sorted(result.vvs.labels), result.abstracted_size
    (['SB'], 2)
    """
    polynomials = ensure_set(polynomials)
    if isinstance(forest, AbstractionTree):
        forest = AbstractionForest([forest])
    if bound < 1:
        raise ValueError(f"bound must be >= 1, got {bound}")
    if clean:
        forest = forest.clean(polynomials)

    total_monomials = polynomials.num_monomials
    total_variables = polynomials.num_variables
    k = total_monomials - bound

    state = _WorkingState(polynomials)
    selected = set(forest.leaf_labels)
    trace = []

    # Candidate set: nodes whose children are all currently selected.
    candidates = set()
    trees = {}
    for tree in forest:
        for label in tree.labels:
            trees[label] = tree
            node = tree.node(label)
            if node.children and all(
                child.label in selected for child in node.children
            ):
                candidates.add(label)

    cumulative_ml = 0
    cumulative_vl = 0
    while cumulative_ml < k and candidates:
        # rank = (delta_vl, -delta_ml, label): minimal variable loss
        # first, then maximal monomial loss (Example 15), then label for
        # determinism ("ties are broken arbitrarily" in the paper).
        best = None
        for label in sorted(candidates):
            children = trees[label].children(label)
            present = sum(1 for child in children if state.present(child))
            delta_vl = max(0, present - 1)
            if best is not None and delta_vl > best[0]:
                continue
            if ml_tie_break:
                delta_ml = state.simulate_merge(children, label)
            else:
                delta_ml = 0
            rank = (delta_vl, -delta_ml, label)
            if best is None or rank < best:
                best = rank
        delta_vl, _, chosen = best
        tree = trees[chosen]
        children = tree.children(chosen)
        loss = state.apply_merge(children, chosen)
        candidates.discard(chosen)
        selected.difference_update(children)
        selected.add(chosen)
        cumulative_ml += loss
        cumulative_vl += delta_vl
        trace.append(
            GreedyStep(chosen, loss, delta_vl, cumulative_ml, cumulative_vl)
        )
        parent = tree.parent(chosen)
        if parent is not None and all(
            child in selected for child in tree.children(parent)
        ):
            candidates.add(parent)

    vvs = ValidVariableSet(forest, frozenset(selected), _validated=True)
    size = state.size
    granularity = state.granularity
    return AbstractionResult(
        vvs=vvs,
        monomial_loss=total_monomials - size,
        variable_loss=total_variables - granularity,
        abstracted_size=size,
        abstracted_granularity=granularity,
        trace=trace,
    )
