"""Tests for the declarative sweep engine (repro.scenarios.sweep)."""

import pickle

import pytest

from repro.core.parser import parse_set
from repro.scenarios import Scenario, ScenarioSuite, Sweep, evaluate_scenarios


@pytest.fixture
def polys():
    return parse_set(["2*a*x + 3*b*x + 4*c*y", "6*a*z + 7*b*z"])


class TestGrid:
    def test_cartesian_count_and_order(self):
        sweep = Sweep.grid({"p": ["a"], "q": ["b"]}, [0.5, 2.0])
        assert len(sweep) == 4
        assert [s.changes for s in sweep] == [
            {"a": 0.5, "b": 0.5},
            {"a": 0.5, "b": 2.0},
            {"a": 2.0, "b": 0.5},
            {"a": 2.0, "b": 2.0},
        ]

    def test_group_multiplier_moves_all_members(self):
        sweep = Sweep.grid({"g": ["a", "b", "c"]}, [0.8])
        assert sweep[0].changes == {"a": 0.8, "b": 0.8, "c": 0.8}

    def test_per_group_multipliers_mapping(self):
        sweep = Sweep.grid(
            {"p": ["a"], "q": ["b"]}, {"p": [0.5], "q": [1.0, 2.0]}
        )
        assert len(sweep) == 2
        assert [s.changes["b"] for s in sweep] == [1.0, 2.0]

    def test_list_of_lists_and_bare_names(self):
        assert len(Sweep.grid([["a", "b"], ["c"]], [0.9, 1.1])) == 4
        assert Sweep.grid(["a", "b"], [0.9])[0].changes == {"a": 0.9, "b": 0.9}

    def test_names_identify_choices(self):
        sweep = Sweep.grid({"p": ["a"], "q": ["b"]}, [0.5, 2.0])
        assert sweep[3].name == "grid[p=2,q=2]"

    def test_validation(self):
        with pytest.raises(ValueError):
            Sweep.grid({}, [0.5])
        with pytest.raises(ValueError):
            Sweep.grid({"g": []}, [0.5])
        with pytest.raises(ValueError):
            Sweep.grid({"g": ["a"]}, [])
        with pytest.raises(ValueError):
            Sweep.grid({"g": ["a"]}, {"other": [0.5]})
        with pytest.raises(ValueError):
            Sweep.grid({"g": ["a"], "h": ["b"]}, [[0.5]])


class TestOneAtATime:
    def test_variable_major_order(self):
        sweep = Sweep.one_at_a_time(["a", "b"], [0.0, 1.2])
        assert [s.changes for s in sweep] == [
            {"a": 0.0}, {"a": 1.2}, {"b": 0.0}, {"b": 1.2}
        ]

    def test_baseline_applies_under_each_scenario(self):
        sweep = Sweep.one_at_a_time(
            ["a", "b"], [0.5], baseline={"c": 2.0, "a": 9.0}
        )
        assert sweep[0].changes == {"a": 0.5, "c": 2.0}  # sweep wins on "a"
        assert sweep[1].changes == {"a": 9.0, "b": 0.5, "c": 2.0}

    def test_baseline_accepts_scenario(self):
        base = Scenario("base", {"c": 2.0})
        assert Sweep.one_at_a_time(["a"], [0.5], baseline=base)[0].changes == {
            "a": 0.5, "c": 2.0
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            Sweep.one_at_a_time([], [0.5])
        with pytest.raises(ValueError):
            Sweep.one_at_a_time(["a"], [])


class TestRandom:
    def test_reproducible_same_seed(self):
        a = Sweep.random(["x", "y", "z"], 20, seed=7)
        b = Sweep.random(["x", "y", "z"], 20, seed=7)
        assert [s.changes for s in a] == [s.changes for s in b]

    def test_different_seeds_differ(self):
        a = Sweep.random(["x", "y", "z"], 5, seed=7)
        b = Sweep.random(["x", "y", "z"], 5, seed=8)
        assert [s.changes for s in a] != [s.changes for s in b]

    def test_index_access_is_iteration_order_independent(self):
        sweep = Sweep.random(["x", "y"], 10, seed=3, changes=1)
        forward = [sweep.scenario(i).changes for i in range(10)]
        backward = [sweep.scenario(i).changes
                    for i in reversed(range(10))][::-1]
        assert forward == backward

    def test_multipliers_within_range(self):
        sweep = Sweep.random(["x"], 50, low=0.9, high=1.1, seed=2)
        for scenario in sweep:
            for value in scenario.changes.values():
                assert 0.9 <= value <= 1.1

    def test_changes_limits_perturbed_variables(self):
        sweep = Sweep.random(["x", "y", "z"], 20, changes=2, seed=4)
        assert all(len(s.changes) == 2 for s in sweep)

    def test_validation(self):
        with pytest.raises(ValueError):
            Sweep.random([], 5)
        with pytest.raises(ValueError):
            Sweep.random(["x"], -1)
        with pytest.raises(ValueError):
            Sweep.random(["x"], 5, changes=2)
        with pytest.raises(ValueError):
            Sweep.random(["x"], 5, low=2.0, high=1.0)


class TestSequenceProtocol:
    def test_negative_and_slice_indexing(self):
        sweep = Sweep.one_at_a_time(["a", "b", "c"], [0.5])
        assert sweep[-1].changes == {"c": 0.5}
        assert [s.changes for s in sweep[1:]] == [{"b": 0.5}, {"c": 0.5}]
        with pytest.raises(IndexError):
            sweep.scenario(3)

    def test_reiteration_yields_identical_scenarios(self):
        sweep = Sweep.random(["x", "y"], 8, seed=1)
        assert [s.changes for s in sweep] == [s.changes for s in sweep]

    def test_chunks_cover_exactly(self):
        sweep = Sweep.random(["x"], 10, seed=1)
        assert list(sweep.chunks(4)) == [(0, 4), (4, 8), (8, 10)]
        with pytest.raises(ValueError):
            list(sweep.chunks(0))

    def test_materialize_shard(self):
        sweep = Sweep.one_at_a_time(["a", "b", "c"], [0.5])
        shard = sweep.materialize(1, 3)
        assert [s.changes for s in shard] == [{"b": 0.5}, {"c": 0.5}]

    def test_suite_materializes(self):
        suite = Sweep.one_at_a_time(["a", "b"], [0.5]).suite()
        assert isinstance(suite, ScenarioSuite)
        assert len(suite) == 2

    def test_pickle_round_trip(self):
        sweep = Sweep.random(["x", "y"], 12, seed=9, changes=1)
        clone = pickle.loads(pickle.dumps(sweep))
        assert [s.changes for s in clone] == [s.changes for s in sweep]
        assert repr(clone) == repr(sweep)

    def test_sweeps_stay_lazy(self):
        """A million-scenario sweep is spec-sized, not list-sized."""
        sweep = Sweep.grid(
            {f"g{i}": [f"v{i}"] for i in range(20)}, [0.5, 1.0]
        )
        assert len(sweep) == 2 ** 20
        assert len(pickle.dumps(sweep)) < 2000
        assert sweep[2 ** 20 - 1].changes["v19"] == 1.0


class TestSweepEvaluation:
    def test_evaluate_scenarios_accepts_sweep(self, polys):
        sweep = Sweep.one_at_a_time(["a", "b"], [0.0])
        matrix = evaluate_scenarios(polys, sweep)
        assert matrix.shape == (2, 2)
        # knocking out "a" zeroes its monomials: 3x + 4y with x=y=z=1.
        assert matrix[0][0] == pytest.approx(3 + 4)
        assert matrix[0][1] == pytest.approx(7)

    def test_sweep_matches_manual_scenarios(self, polys):
        sweep = Sweep.grid({"p": ["a", "b"]}, [0.5, 1.5])
        via_sweep = evaluate_scenarios(polys, sweep)
        manual = evaluate_scenarios(
            polys, [Scenario("m", dict(s.changes)) for s in sweep]
        )
        assert (via_sweep == manual).all()
