"""Synthetic provenance generators for tests and micro-benchmarks.

Generates polynomial multisets that are *compatible by construction*
with a set of variable pools: each monomial draws at most one variable
from each pool, so any forest whose trees partition single pools is
compatible (§2.2's requirement).
"""

from __future__ import annotations

from repro.core.polynomial import Monomial, Polynomial, PolynomialSet
from repro.util.rng import derive_rng

__all__ = ["random_polynomials", "random_compatible_instance"]


def random_polynomials(
    num_polynomials,
    monomials_per_polynomial,
    variable_pools,
    seed=0,
    extra_variables=0,
    coefficient_range=(1, 100),
):
    """A random compatible PolynomialSet.

    :param variable_pools: list of variable-name lists; each monomial
        uses at most one variable per pool (drawn with probability 0.9).
    :param extra_variables: number of free variables outside any pool
        (sprinkled in with probability 0.5 each monomial — these model
        the non-abstracted indeterminates of real provenance).

    >>> ps = random_polynomials(3, 5, [["a", "b"], ["x", "y"]], seed=1)
    >>> len(ps)
    3
    >>> all(p.num_monomials <= 5 for p in ps)
    True
    """
    rng = derive_rng(seed, "random_polynomials")
    free = [f"w{i}" for i in range(extra_variables)]
    low, high = coefficient_range
    polynomials = []
    for _ in range(num_polynomials):
        polynomial = Polynomial.zero()
        for _ in range(monomials_per_polynomial):
            factors = []
            for pool in variable_pools:
                if pool and rng.random() < 0.9:
                    factors.append(pool[rng.randrange(len(pool))])
            if free and rng.random() < 0.5:
                factors.append(free[rng.randrange(len(free))])
            coefficient = rng.randint(low, high)
            polynomial = polynomial + Polynomial(
                {Monomial.of(*factors): coefficient}
            )
        polynomials.append(polynomial)
    return PolynomialSet(polynomials)


def random_compatible_instance(
    seed=0,
    num_trees=2,
    leaves_per_tree=8,
    num_polynomials=4,
    monomials_per_polynomial=12,
    max_fanout=3,
):
    """A random ``(polynomials, forest)`` pair, compatible by construction.

    Convenience for property-based tests: returns the polynomial set and
    an :class:`~repro.core.forest.AbstractionForest` whose trees cover
    disjoint variable pools actually used by the polynomials.
    """
    from repro.core.forest import AbstractionForest
    from repro.workloads.trees import random_tree

    pools = [
        [f"t{t}v{i}" for i in range(leaves_per_tree)] for t in range(num_trees)
    ]
    polynomials = random_polynomials(
        num_polynomials, monomials_per_polynomial, pools, seed=seed
    )
    trees = []
    for number, pool in enumerate(pools):
        present = [v for v in pool if v in polynomials.variables]
        if not present:
            continue
        trees.append(
            random_tree(present, seed=seed + number, max_fanout=max_fanout,
                        prefix=f"T{number}")
        )
    return polynomials, AbstractionForest(trees)
