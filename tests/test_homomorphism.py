"""Tests for N[X] → K evaluation (Green's factorization property)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.parser import parse, parse_set
from repro.semiring import (
    BOOLEAN,
    LINEAGE,
    NATURAL,
    TROPICAL,
    WHY,
    Homomorphism,
    evaluate_in,
)


class TestEvaluateIn:
    def test_boolean_tuple_deletion(self):
        """The classic what-if: does the answer survive deleting tuples?"""
        p = parse("x*y + z")
        assert evaluate_in(p, BOOLEAN, {"x": True, "y": True, "z": False})
        assert evaluate_in(p, BOOLEAN, {"x": False, "z": True})
        assert not evaluate_in(p, BOOLEAN, {"x": False, "z": False})

    def test_natural_bag_multiplicity(self):
        p = parse("2*x*y + z")
        assert evaluate_in(p, NATURAL, {"x": 2, "y": 3, "z": 4}) == 16

    def test_tropical_cost(self):
        p = parse("x*y + z")
        value = evaluate_in(p, TROPICAL, {"x": 1.0, "y": 2.0, "z": 5.0})
        assert value == 3.0  # min(1+2, 5)

    def test_lineage(self):
        p = parse("x*y + z")
        value = evaluate_in(
            p,
            LINEAGE,
            {"x": frozenset({"x"}), "y": frozenset({"y"}), "z": frozenset({"z"})},
        )
        assert value == frozenset({"x", "y", "z"})

    def test_why_provenance(self):
        p = parse("x*y + z")
        value = evaluate_in(
            p,
            WHY,
            {
                "x": frozenset([frozenset({"x"})]),
                "y": frozenset([frozenset({"y"})]),
                "z": frozenset([frozenset({"z"})]),
            },
        )
        assert value == frozenset([frozenset({"x", "y"}), frozenset({"z"})])

    def test_exponents(self):
        assert evaluate_in(parse("x^3"), NATURAL, {"x": 2}) == 8

    def test_default_is_one(self):
        assert evaluate_in(parse("x*y"), NATURAL, {"x": 5}) == 5

    def test_zero_polynomial(self):
        assert evaluate_in(parse("0"), NATURAL, {}) == 0
        assert evaluate_in(parse("x - x"), NATURAL, {}) == 0

    def test_fractional_coefficient_rejected(self):
        with pytest.raises(ValueError, match="natural"):
            evaluate_in(parse("0.5*x"), NATURAL, {"x": 1})

    def test_integral_float_coefficient_accepted(self):
        assert evaluate_in(parse("2.0*x"), NATURAL, {"x": 3}) == 6


class TestHomomorphismProperties:
    @given(
        st.integers(0, 5), st.integers(0, 5), st.integers(0, 3), st.integers(0, 3)
    )
    def test_evaluation_is_a_homomorphism_into_naturals(self, a, b, va, vb):
        """eval(P + Q) == eval(P) + eval(Q); eval(P·Q) == eval(P)·eval(Q)."""
        p = parse("x") * a + parse("y")
        q = parse("x*y") * b + 1
        assignment = {"x": va, "y": vb}
        ep = evaluate_in(p, NATURAL, assignment)
        eq = evaluate_in(q, NATURAL, assignment)
        assert evaluate_in(p + q, NATURAL, assignment) == ep + eq
        assert evaluate_in(p * q, NATURAL, assignment) == ep * eq

    def test_callable_form(self):
        h = Homomorphism(TROPICAL, {"x": 2.0, "y": 3.0})
        assert h(parse("x*y + x")) == 2.0
        assert h(parse_set(["x", "y"])) == [2.0, 3.0]

    def test_callable_rejects_other_types(self):
        h = Homomorphism(NATURAL, {})
        with pytest.raises(TypeError):
            h("x + y")

    def test_unassigned_default_override(self):
        h = Homomorphism(TROPICAL, {}, default=math.inf)
        assert h(parse("x")) == math.inf
