"""Unit tests for repro.core.polynomial.Monomial."""

import pytest

from repro.core.polynomial import Monomial


class TestConstruction:
    def test_of_single_variable(self):
        m = Monomial.of("x")
        assert m.exponent("x") == 1
        assert m.variables == {"x"}

    def test_of_repeated_variable_adds_exponents(self):
        m = Monomial.of("x", "x", "x")
        assert m.exponent("x") == 3

    def test_of_pair_syntax(self):
        m = Monomial.of(("x", 2), "y")
        assert m.exponent("x") == 2
        assert m.exponent("y") == 1

    def test_mixed_pairs_and_names_combine(self):
        m = Monomial.of(("x", 2), "x")
        assert m.exponent("x") == 3

    def test_empty_monomial_is_one(self):
        assert Monomial.of() == Monomial.ONE
        assert str(Monomial.ONE) == "1"

    def test_powers_are_sorted(self):
        m = Monomial.of("z", "a", "m")
        assert [v for v, _ in m.powers] == ["a", "m", "z"]

    def test_rejects_zero_exponent(self):
        with pytest.raises(ValueError):
            Monomial([("x", 0)])

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            Monomial([("x", -1)])

    def test_rejects_duplicate_in_raw_constructor(self):
        with pytest.raises(ValueError):
            Monomial([("x", 1), ("x", 2)])

    def test_immutable(self):
        m = Monomial.of("x")
        with pytest.raises(AttributeError):
            m.powers = ()


class TestAlgebra:
    def test_multiplication_merges_exponents(self):
        assert Monomial.of("x") * Monomial.of("x", "y") == Monomial.of(("x", 2), "y")

    def test_multiplication_with_one_is_identity(self):
        m = Monomial.of("a", "b")
        assert m * Monomial.ONE == m
        assert Monomial.ONE * m == m

    def test_multiplication_is_commutative(self):
        a = Monomial.of("x", ("y", 2))
        b = Monomial.of("z", "x")
        assert a * b == b * a

    def test_degree(self):
        assert Monomial.of(("x", 2), "y").degree == 3
        assert Monomial.ONE.degree == 0

    def test_contains(self):
        m = Monomial.of("x", "y")
        assert "x" in m
        assert "z" not in m

    def test_len_counts_distinct_variables(self):
        assert len(Monomial.of(("x", 5), "y")) == 2


class TestSubstitution:
    def test_identity_when_unmapped(self):
        m = Monomial.of("x", "y")
        assert m.substitute({}) == m

    def test_simple_rename(self):
        assert Monomial.of("m1", "x").substitute({"m1": "q1"}) == Monomial.of("q1", "x")

    def test_merging_rename_adds_exponents(self):
        m = Monomial.of("a", "b").substitute({"a": "g", "b": "g"})
        assert m == Monomial.of(("g", 2))

    def test_exponent_preserved_through_rename(self):
        m = Monomial.of(("m1", 3)).substitute({"m1": "q1"})
        assert m == Monomial.of(("q1", 3))


class TestEvaluation:
    def test_evaluates_product(self):
        m = Monomial.of(("x", 2), "y")
        assert m.evaluate({"x": 3.0, "y": 2.0}) == 18.0

    def test_missing_variables_default_to_one(self):
        assert Monomial.of("x", "y").evaluate({"x": 5.0}) == 5.0

    def test_custom_default(self):
        assert Monomial.of("x").evaluate({}, default=0.0) == 0.0

    def test_one_evaluates_to_one(self):
        assert Monomial.ONE.evaluate({}) == 1.0


class TestOrderingAndHashing:
    def test_equal_monomials_hash_equal(self):
        assert hash(Monomial.of("x", "y")) == hash(Monomial.of("y", "x"))

    def test_ordering_is_total_on_examples(self):
        monomials = [Monomial.of("b"), Monomial.of("a"), Monomial.of("a", "b")]
        ordered = sorted(monomials)
        assert ordered[0] == Monomial.of("a")

    def test_str_formats_exponents(self):
        assert str(Monomial.of(("x", 2), "y")) == "x^2*y"

    def test_repr_roundtrip_via_eval(self):
        m = Monomial.of(("x", 2), "y")
        assert eval(repr(m), {"Monomial": Monomial}) == m
