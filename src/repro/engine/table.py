"""K-relations: tables whose tuples carry semiring annotations.

The semiring model (Green et al., reference [36]): a K-relation is a
function from tuples to a commutative semiring ``K``, non-zero on
finitely many tuples. Bag semantics is ``K = N``; full provenance is
``K = N[X]`` with each base tuple annotated by its own variable.
"""

from __future__ import annotations

from repro.core.polynomial import Polynomial
from repro.engine.schema import Schema, SchemaError
from repro.semiring.polynomial_semiring import PROVENANCE
from repro.semiring.standard import NATURAL

__all__ = ["Relation"]


class Relation:
    """A finite K-relation: ``{tuple: annotation}`` over a schema.

    >>> r = Relation.from_rows(["A", "B"], [(1, "x"), (2, "y")])
    >>> len(r), r.semiring.name
    (2, 'natural')
    """

    __slots__ = ("schema", "rows", "semiring", "name")

    def __init__(self, schema, rows=None, semiring=NATURAL, name=None):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.schema = schema
        self.semiring = semiring
        self.name = name
        self.rows = {}
        if rows:
            for row, annotation in rows.items() if isinstance(rows, dict) else rows:
                self.add(row, annotation)

    @classmethod
    def from_rows(cls, columns, rows, semiring=NATURAL, annotator=None, name=None):
        """Build a relation from plain tuples.

        ``annotator(row_dict, ordinal)`` supplies each tuple's
        annotation; by default every tuple gets ``semiring.one`` (bag
        multiplicity 1 / Boolean presence / …).
        """
        relation = cls(columns, semiring=semiring, name=name)
        for ordinal, row in enumerate(rows):
            if annotator is None:
                annotation = semiring.one
            else:
                annotation = annotator(relation.schema.row_to_dict(row), ordinal)
            relation.add(row, annotation)
        return relation

    def add(self, row, annotation=None):
        """Insert (⊕-combining with any existing annotation)."""
        row = tuple(row)
        if len(row) != len(self.schema):
            raise SchemaError(
                f"row of width {len(row)} does not fit schema {self.schema!r}"
            )
        if annotation is None:
            annotation = self.semiring.one
        if row in self.rows:
            annotation = self.semiring.plus(self.rows[row], annotation)
        if self.semiring.is_zero(annotation):
            self.rows.pop(row, None)
        else:
            self.rows[row] = annotation

    def annotation(self, row):
        """The annotation of ``row`` (``zero`` when absent)."""
        return self.rows.get(tuple(row), self.semiring.zero)

    def with_tuple_variables(self, prefix="t"):
        """Re-annotate every tuple with a fresh ``N[X]`` variable.

        This is the paper's setting 1 (§2.1): variables stand for base
        tuples, and Boolean valuations answer existence what-ifs. The
        original multiplicity is preserved as the coefficient.
        """
        annotated = Relation(self.schema, semiring=PROVENANCE, name=self.name)
        for ordinal, (row, annotation) in enumerate(sorted(self.rows.items())):
            coefficient = annotation if isinstance(annotation, int) else 1
            annotated.add(
                row, Polynomial.variable(f"{prefix}{ordinal}", coefficient)
            )
        return annotated

    # ------------------------------------------------------------ plumbing

    def __iter__(self):
        """Iterate over ``(row_tuple, annotation)`` in insertion order."""
        return iter(self.rows.items())

    def __len__(self):
        return len(self.rows)

    def __contains__(self, row):
        return tuple(row) in self.rows

    def dicts(self):
        """Iterate over ``(row_dict, annotation)`` pairs."""
        for row, annotation in self.rows.items():
            yield self.schema.row_to_dict(row), annotation

    def __eq__(self, other):
        return (
            isinstance(other, Relation)
            and self.schema == other.schema
            and self.rows == other.rows
        )

    def __repr__(self):
        label = self.name or "relation"
        return (
            f"Relation<{label}>({list(self.schema.columns)!r}, "
            f"{len(self.rows)} rows, {self.semiring.name})"
        )
