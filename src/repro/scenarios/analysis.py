"""Raw-vs-abstracted what-if analysis: speedup and accuracy.

Two quantities matter once provenance is abstracted:

* **assignment speedup** (Figure 10): how much faster scenarios valuate
  on the compressed polynomials — compression is useful precisely
  because each analyst applies many valuations;
* **accuracy**: scenarios uniform on the chosen groups are answered
  *exactly* (the lifting homomorphism); non-uniform scenarios are
  answered approximately by valuating each meta-variable at a
  representative of its group's values — the "reasonable loss of
  accuracy" the abstract trades for size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.valuation import Valuation
from repro.util.timing import time_call

__all__ = [
    "SpeedupReport",
    "assignment_speedup",
    "approximate_lift",
    "evaluate_scenarios",
    "scenario_error",
]


def evaluate_scenarios(polynomials, scenarios, default=1.0):
    """Valuate a whole scenario suite in one vectorized pass.

    :param scenarios: an iterable of :class:`Scenario`,
        :class:`~repro.core.valuation.Valuation` or plain dicts.
    :returns: a ``(num_scenarios, num_polynomials)`` NumPy array — row
        ``i`` is ``scenarios[i].evaluate(polynomials)``.

    The polynomial set is compiled to coefficient/exponent arrays once
    (cached on the set), so a suite of hundreds of scenarios costs a few
    matrix operations instead of hundreds of per-monomial Python loops.
    """
    valuations = [Valuation.coerce(s, default) for s in scenarios]
    return polynomials.evaluate_batch(valuations)


@dataclass
class SpeedupReport:
    """Timing comparison of scenario application, raw vs abstracted."""

    raw_seconds: float
    abstracted_seconds: float
    raw_size: int
    abstracted_size: int

    @property
    def speedup_percent(self):
        """``100 · (1 − t_abstracted / t_raw)`` (Figure 10's y-axis)."""
        if self.raw_seconds == 0:
            return 0.0
        return 100.0 * (1.0 - self.abstracted_seconds / self.raw_seconds)

    @property
    def compression_ratio(self):
        """``|P↓S|_M / |P|_M``."""
        if self.raw_size == 0:
            return 1.0
        return self.abstracted_size / self.raw_size


def assignment_speedup(polynomials, abstracted, scenarios, vvs=None, repeat=3,
                       batch=True):
    """Time a scenario suite on raw vs abstracted provenance.

    Scenarios are lifted onto meta-variables when a ``vvs`` is given
    (exactly, when uniform; via :func:`approximate_lift` otherwise) so
    both sides do equivalent work.

    ``batch=True`` (the default) valuates each side through the
    compiled :meth:`~repro.core.polynomial.PolynomialSet.evaluate_batch`
    — the whole suite per matrix product; ``batch=False`` keeps the
    per-scenario interpreter loop (the pre-vectorization behaviour,
    useful for measuring what batching itself buys).
    """
    raw_valuations = [s.valuation() for s in scenarios]
    if vvs is None:
        abstracted_valuations = raw_valuations
    else:
        abstracted_valuations = [
            s.lift(vvs) if s.is_supported_by(vvs) else approximate_lift(s, vvs)
            for s in scenarios
        ]

    if batch:
        def run(polys, valuations):
            return polys.evaluate_batch(valuations)
    else:
        def run(polys, valuations):
            out = []
            for valuation in valuations:
                out.append(valuation.evaluate(polys))
            return out

    raw_seconds, _ = time_call(run, polynomials, raw_valuations, repeat=repeat)
    abstracted_seconds, _ = time_call(
        run, abstracted, abstracted_valuations, repeat=repeat
    )
    return SpeedupReport(
        raw_seconds=raw_seconds,
        abstracted_seconds=abstracted_seconds,
        raw_size=polynomials.num_monomials,
        abstracted_size=abstracted.num_monomials,
    )


def approximate_lift(scenario, vvs, default=1.0):
    """Best-effort valuation on meta-variables for a non-uniform scenario.

    Each group's meta-variable takes the *mean* of its leaves' values —
    the least-squares representative. Exact when the scenario is
    uniform on the group. ``scenario`` may be a :class:`Scenario`, a
    :class:`~repro.core.valuation.Valuation` or a plain mapping.
    """
    valuation = Valuation.coerce(scenario, default)
    default = valuation.default
    lifted = dict(valuation.assignment)
    for label in vvs.labels:
        group = vvs.group(label)
        values = [valuation[leaf] for leaf in group]
        for leaf in group:
            lifted.pop(leaf, None)
        mean = sum(values) / len(values)
        if mean != default:
            lifted[label] = mean
    return Valuation(lifted, default=default)


def scenario_error(polynomials, abstracted, vvs, scenario):
    """Per-polynomial relative error of the abstracted answer.

    Returns a list of ``|approx − exact| / max(1, |exact|)`` values —
    all zeros when the scenario is uniform on the VVS (the lossless
    case, asserted by property tests).
    """
    exact = scenario.valuation().evaluate(polynomials)
    if scenario.is_supported_by(vvs):
        lifted = scenario.lift(vvs)
    else:
        lifted = approximate_lift(scenario, vvs)
    approx = lifted.evaluate(abstracted)
    return [
        abs(a - e) / max(1.0, abs(e)) for a, e in zip(approx, exact)
    ]
