"""Per-artifact warm state: the precomputed lift index.

Profiling the serving path shows the per-scenario cost is *not* the
batch evaluation (a compiled artifact answers a scenario in ~100µs) but
the lifting in front of it: :meth:`Valuation.is_uniform_on
<repro.core.valuation.Valuation.is_uniform_on>` and
:meth:`~repro.core.valuation.Valuation.lift` each walk
``vvs.group(label)`` — a tree traversal — for *every* label of the cut,
per scenario. A long-lived server answering thousands of single-
scenario requests against the same artifact pays that traversal over
and over for groups the scenario never touches.

:class:`WarmArtifact` hoists everything scenario-independent out of the
loop, once per artifact:

* the label→group tables (each group as a tuple, in the exact order
  ``vvs.group`` yields leaves);
* the inverse leaf→label map, so a scenario's *touched* labels are
  found in O(changes) instead of O(labels × group);
* per-``default`` cached means of untouched groups for the approximate
  path (computed by the same fold :func:`repro.scenarios.analysis.\
approximate_lift` uses, so the cached float is bit-identical).

:meth:`WarmArtifact.ask_many` then replicates
:meth:`CompressedProvenance.ask_many
<repro.api.artifact.CompressedProvenance.ask_many>` step for step —
same uniformity decision, same lifted assignments, same evaluator —
and its answers are **bit-identical** to the facade's (asserted by the
service bench stage and the property tests). Only the traversals are
gone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.valuation import Valuation

if TYPE_CHECKING:
    from collections.abc import Iterable

    from repro.api.artifact import Answer, CompressedProvenance, ScenarioLike
    from repro.options import OptionsLike

__all__ = ["WarmArtifact"]


class WarmArtifact:
    """A :class:`~repro.api.artifact.CompressedProvenance` plus the
    precomputed serving state the store keeps resident per artifact."""

    __slots__ = (
        "artifact",
        "_groups",
        "_group_of",
        "_leaf_to_label",
        "_untouched_means",
    )

    def __init__(self, artifact: CompressedProvenance) -> None:
        self.artifact = artifact
        vvs = artifact.vvs
        self._groups: tuple = tuple(
            (label, tuple(vvs.group(label))) for label in vvs.labels
        )
        self._group_of: dict = dict(self._groups)
        self._leaf_to_label: dict = {
            leaf: label for label, group in self._groups for leaf in group
        }
        #: default value -> {label: untouched-group mean} (lazy).
        self._untouched_means: dict = {}
        # Warm the compiled evaluator now, not on the first request.
        artifact.polynomials.compiled()

    def repaired(self, artifact: CompressedProvenance) -> WarmArtifact:
        """A warm entry for ``artifact``, reusing this one's lift index.

        The incremental-extend path: an extended artifact keeps its
        cut, and every precomputed table here depends only on the cut —
        the label→group tables, the leaf→label inverse and the cached
        untouched-group means are all reused as-is (sharing is safe:
        the tables are read-only and the means cache only ever gains
        per-default entries both entries would compute identically).
        Only the compiled evaluator is warmed on the new polynomials —
        so admitting a repaired artifact skips the per-label tree
        traversals a cold :class:`WarmArtifact` build pays.
        """
        clone = object.__new__(WarmArtifact)
        clone.artifact = artifact
        clone._groups = self._groups
        clone._group_of = self._group_of
        clone._leaf_to_label = self._leaf_to_label
        clone._untouched_means = self._untouched_means
        artifact.polynomials.compiled()
        return clone

    # ------------------------------------------------------------- lifting

    def _means_for(self, default: float) -> dict:
        """Mean of an all-``default`` group, per label, cached per default.

        Replicates :func:`~repro.scenarios.analysis.approximate_lift`'s
        exact fold (``sum([default] * n) / n``) — for most defaults that
        equals ``default`` and the label is omitted from the lifted
        assignment, but floating-point summation can drift for some
        (e.g. ``default=0.1``, ``n=3``), and the warm path must drift
        identically.
        """
        means = self._untouched_means.get(default)
        if means is None:
            means = {}
            for label, group in self._groups:
                values = [default] * len(group)
                means[label] = sum(values) / len(values)
            self._untouched_means[default] = means
        return means

    def lift_one(self, valuation: Valuation) -> tuple[Valuation, bool]:
        """``(lifted, exact)`` for one valuation — the facade's per-
        scenario decision, computed in O(changed variables).

        Bit-identical to ``valuation.lift(vvs)`` when the valuation is
        uniform on the cut and to ``approximate_lift(valuation, vvs)``
        otherwise.
        """
        assignment = valuation.assignment
        default = valuation.default
        # Touched labels, first-touch order (dict preserves insertion).
        touched: dict = {}
        for variable in assignment:
            label = self._leaf_to_label.get(variable)
            if label is not None:
                touched[label] = True
        # Uniformity: untouched groups are all-default, hence uniform;
        # only touched multi-leaf groups can break it (Valuation.
        # is_uniform_on skips len<=1 groups the same way).
        exact = True
        for label in touched:
            group = self._group_of[label]
            if len(group) <= 1:
                continue
            first = assignment.get(group[0], default)
            for leaf in group:
                if assignment.get(leaf, default) != first:
                    exact = False
                    break
            if not exact:
                break
        lifted = dict(assignment)
        if exact:
            # Valuation.lift: untouched groups contribute their unique
            # value `default`, which the `value != default` guard drops
            # — so only touched groups mutate the assignment.
            for label in touched:
                group = self._group_of[label]
                value = assignment.get(group[0], default)
                for leaf in group:
                    lifted.pop(leaf, None)
                if value != default:
                    lifted[label] = value
        else:
            # approximate_lift walks every label; untouched groups fall
            # back to the cached all-default mean.
            means = self._means_for(default)
            for label, group in self._groups:
                if label in touched:
                    values = [
                        assignment.get(leaf, default) for leaf in group
                    ]
                    for leaf in group:
                        lifted.pop(leaf, None)
                    mean = sum(values) / len(values)
                else:
                    mean = means[label]
                if mean != default:
                    lifted[label] = mean
        return Valuation(lifted, default=default), exact

    # ------------------------------------------------------------ answering

    def ask_many(
        self,
        scenarios: Iterable[ScenarioLike],
        default: float = 1.0,
        *,
        options: OptionsLike = None,
    ) -> list[Answer]:
        """Answer a scenario family — bit-identical to
        :meth:`CompressedProvenance.ask_many
        <repro.api.artifact.CompressedProvenance.ask_many>`, with the
        per-scenario lifting served from the warm index."""
        from repro.api.artifact import Answer
        from repro.scenarios.analysis import evaluate_scenarios

        names = []
        exacts = []
        lifted = []
        for index, item in enumerate(scenarios):
            valuation = Valuation.coerce(item, default)
            name = getattr(item, "name", None)
            names.append(
                str(name) if name is not None else f"scenario-{index}"
            )
            entry, exact = self.lift_one(valuation)
            exacts.append(exact)
            lifted.append(entry)
        if not lifted:
            return []
        matrix = evaluate_scenarios(
            self.artifact.polynomials, lifted, default=default,
            options=options,
        )
        return [
            Answer(name, tuple(float(v) for v in row), exact)
            for name, exact, row in zip(names, exacts, matrix, strict=True)
        ]

    def ask(
        self,
        scenario: ScenarioLike,
        default: float = 1.0,
        *,
        options: OptionsLike = None,
    ) -> Answer:
        """Answer one scenario via the warm index (see :meth:`ask_many`)."""
        return self.ask_many([scenario], default=default, options=options)[0]
