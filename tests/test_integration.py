"""End-to-end integration: engine → provenance → abstraction → what-if.

The headline soundness property of provisioning: valuating stored
provenance equals re-running the query on hypothetically modified data.
And after abstraction: group-uniform scenarios still valuate exactly.
"""

import pytest

from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from repro.core.forest import AbstractionForest
from repro.engine import Query
from repro.scenarios import Scenario
from repro.workloads.telephony import (
    figure1_database,
    months_tree,
    revenue_by_zip,
)
from repro.workloads.tpch import q1_pricing_summary, supplier_tree


def _rerun_with_price_multipliers(cust, calls, plans, plan_mult, month_mult):
    """Re-execute the revenue query with prices literally modified."""
    modified = Query(plans).extend(
        "NewPrice",
        lambda r: r["Price"] * plan_mult.get(r["Plan"], 1.0)
        * month_mult.get(r["Mo"], 1.0),
    ).relation
    return (
        Query(calls)
        .join(cust, on=("CID", "ID"))
        .join(modified, on=["Plan", "Mo"])
        .group_by("Zip")
        .sum(lambda r: r["Dur"] * r["NewPrice"])
    )


class TestProvisioningSoundness:
    """Valuation of provenance == re-execution on modified data."""

    def test_figure1_price_change(self):
        cust, calls, plans = figure1_database()
        provenance = revenue_by_zip(cust, calls, plans)
        # Scenario: plan A prices x0.8, March prices x1.25.
        scenario = Scenario("mixed", {"p1": 0.8, "m3": 1.25})
        rerun = _rerun_with_price_multipliers(
            cust, calls, plans, {"A": 0.8}, {3: 1.25}
        )
        for key, polynomial in provenance:
            via_provenance = scenario.valuation().evaluate(polynomial)
            via_rerun = rerun.value(key)
            assert via_provenance == pytest.approx(via_rerun)

    def test_generated_benchmark_price_change(self, small_telephony):
        cust, calls, plans = small_telephony.relations()
        provenance = revenue_by_zip(
            cust, calls, plans, small_telephony.plan_variable
        )
        scenario = Scenario(
            "cuts", {"p0": 0.5, "p1": 0.9, "m1": 1.1, "m2": 0.7}
        )
        rerun = _rerun_with_price_multipliers(
            cust, calls, plans, {"P0": 0.5, "P1": 0.9}, {1: 1.1, 2: 0.7}
        )
        for key, polynomial in provenance:
            assert scenario.valuation().evaluate(polynomial) == pytest.approx(
                rerun.value(key)
            )


class TestAbstractionPreservesSupportedScenarios:
    def test_quarterly_scenario_after_month_abstraction(self):
        cust, calls, plans = figure1_database()
        provenance = revenue_by_zip(cust, calls, plans).polynomials
        forest = AbstractionForest(
            [months_tree().clean(provenance.variables)]
        )
        vvs = forest.root_vvs()  # months -> q1
        abstracted = vvs.apply(provenance)
        scenario = Scenario.uniform("q1-cut", ["m1", "m3"], 0.8)
        lifted = scenario.lift(vvs)
        for raw, compact in zip(provenance, abstracted, strict=True):
            assert lifted.evaluate(compact) == pytest.approx(
                scenario.valuation().evaluate(raw)
            )

    def test_optimal_abstraction_pipeline_on_telephony(self, small_telephony):
        provenance = small_telephony.provenance()
        tree = small_telephony.plans_abstraction_tree((4,))
        bound = max(1, provenance.num_monomials // 2)
        result = optimal_vvs(provenance, tree, bound)
        assert result.abstracted_size <= bound
        abstracted = result.apply(provenance)
        # A scenario uniform on every chosen group valuates exactly.
        groups = {
            label: result.vvs.group(label)
            for label in result.vvs.labels
            if label in tree.labels or True
        }
        changes = {}
        for number, (_label, leaves) in enumerate(sorted(groups.items())):
            for leaf in leaves:
                changes[leaf] = 0.5 + 0.1 * (number % 5)
        scenario = Scenario("group-uniform", changes)
        assert scenario.is_supported_by(result.vvs)
        lifted = scenario.lift(result.vvs)
        for raw, compact in zip(provenance, abstracted, strict=True):
            assert lifted.evaluate(compact) == pytest.approx(
                scenario.valuation().evaluate(raw)
            )

    def test_greedy_abstraction_pipeline_on_tpch(self, tiny_tpch):
        provenance = q1_pricing_summary(tiny_tpch)["sum_disc_price"].polynomials
        forest = AbstractionForest([supplier_tree((8,))]).clean(provenance)
        bound = max(1, provenance.num_monomials * 3 // 4)
        result = greedy_vvs(provenance, forest, bound, clean=False)
        abstracted = result.apply(provenance)
        assert abstracted.num_monomials == result.abstracted_size
        # Scenario uniform on each supplier group: exact after abstraction.
        changes = {}
        for label in result.vvs.labels:
            for leaf in result.vvs.group(label):
                changes[leaf] = 1.2
        scenario = Scenario("suppliers-up", changes)
        lifted = scenario.lift(result.vvs)
        for raw, compact in zip(provenance, abstracted, strict=True):
            assert lifted.evaluate(compact) == pytest.approx(
                scenario.valuation().evaluate(raw)
            )


class TestTupleVariableWhatIf:
    """Setting 1 of §2.1: tuple variables + Boolean valuation."""

    def test_deleting_a_customer_via_provenance(self):
        from repro.engine import Relation, aggregate_sum

        rows = Relation.from_rows(
            ["cust", "amount"], [(1, 10.0), (2, 20.0), (3, 30.0)]
        ).with_tuple_variables("t")
        result = aggregate_sum(rows, [], "amount")
        polynomial = result.polynomial(())
        # Deleting tuple t1 (customer 2): set its variable to 0.
        assert polynomial.evaluate({"t1": 0.0}) == pytest.approx(40.0)
        assert polynomial.evaluate({}) == pytest.approx(60.0)
