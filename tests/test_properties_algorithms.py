"""Property-based tests (hypothesis) for the selection algorithms."""

from hypothesis import assume, given, settings, strategies as st

from repro.algorithms.brute_force import brute_force_vvs
from repro.algorithms.decision import exists_precise, precise_pairs
from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs, optimal_vvs_naive
from repro.algorithms.result import InfeasibleBoundError
from repro.core.abstraction import abstract_counts, monomial_loss
from repro.core.forest import AbstractionForest
from repro.workloads.random_polys import random_compatible_instance


@st.composite
def single_tree_instances(draw):
    seed = draw(st.integers(0, 10_000))
    leaves = draw(st.integers(2, 7))
    polys = draw(st.integers(1, 3))
    monomials_per = draw(st.integers(2, 10))
    polynomials, forest = random_compatible_instance(
        seed=seed,
        num_trees=1,
        leaves_per_tree=leaves,
        num_polynomials=polys,
        monomials_per_polynomial=monomials_per,
    )
    assume(len(forest.trees) == 1)
    return polynomials, forest.trees[0]


@st.composite
def forest_instances(draw):
    seed = draw(st.integers(0, 10_000))
    polynomials, forest = random_compatible_instance(
        seed=seed,
        num_trees=draw(st.integers(1, 3)),
        leaves_per_tree=draw(st.integers(2, 5)),
        num_polynomials=draw(st.integers(1, 3)),
        monomials_per_polynomial=draw(st.integers(2, 8)),
    )
    assume(forest.count_cuts() <= 500)
    return polynomials, forest


@st.composite
def bounds(draw):
    return draw(st.integers(1, 60))


class TestOptimalDP:
    @given(single_tree_instances(), bounds())
    @settings(max_examples=50, deadline=None)
    def test_dp_is_optimal(self, instance, bound):
        """Proposition 12: the DP's VL equals exhaustive search's."""
        polys, tree = instance
        bound = min(bound, polys.num_monomials)
        try:
            expected = brute_force_vvs(polys, tree, bound, max_cuts=None)
        except InfeasibleBoundError:
            try:
                optimal_vvs(polys, tree, bound)
                raise AssertionError(
                    "DP found a VVS where none is adequate"
                ) from None
            except InfeasibleBoundError:
                return
        result = optimal_vvs(polys, tree, bound)
        assert result.abstracted_size <= bound
        assert result.variable_loss == expected.variable_loss

    @given(single_tree_instances(), bounds())
    @settings(max_examples=30, deadline=None)
    def test_optimized_equals_naive(self, instance, bound):
        """The §4.1-optimized DP and the literal pseudo-code agree."""
        polys, tree = instance
        bound = min(bound, polys.num_monomials)
        try:
            fast = optimal_vvs(polys, tree, bound)
        except InfeasibleBoundError:
            try:
                optimal_vvs_naive(polys, tree, bound)
                raise AssertionError(
                    "naive found a VVS, optimized did not"
                ) from None
            except InfeasibleBoundError:
                return
        slow = optimal_vvs_naive(polys, tree, bound)
        assert fast.variable_loss == slow.variable_loss
        assert fast.abstracted_size <= bound
        assert slow.abstracted_size <= bound

    @given(single_tree_instances())
    @settings(max_examples=30, deadline=None)
    def test_vl_is_monotone_in_bound(self, instance):
        """Tighter bounds can only lose more variables."""
        polys, tree = instance
        losses = []
        for bound in range(polys.num_monomials, 0, -1):
            try:
                losses.append(optimal_vvs(polys, tree, bound).variable_loss)
            except InfeasibleBoundError:
                break
        assert losses == sorted(losses)


class TestGreedy:
    @given(forest_instances(), bounds())
    @settings(max_examples=50, deadline=None)
    def test_greedy_returns_valid_cut(self, instance, bound):
        polys, forest = instance
        bound = min(bound, max(1, polys.num_monomials))
        result = greedy_vvs(polys, forest, bound)
        assert result.vvs.forest.is_valid_vvs(result.vvs.labels)
        size, granularity = abstract_counts(polys, result.vvs.mapping())
        assert size == result.abstracted_size
        assert granularity == result.abstracted_granularity

    @given(forest_instances(), bounds())
    @settings(max_examples=50, deadline=None)
    def test_greedy_adequate_whenever_possible(self, instance, bound):
        """If the coarsest cut meets the bound, greedy must meet it too."""
        polys, forest = instance
        bound = min(bound, max(1, polys.num_monomials))
        result = greedy_vvs(polys, forest, bound)
        cleaned_forest = result.vvs.forest
        max_loss = monomial_loss(polys, cleaned_forest.root_vvs())
        if max_loss >= polys.num_monomials - bound:
            assert result.abstracted_size <= bound

    @given(forest_instances(), bounds())
    @settings(max_examples=40, deadline=None)
    def test_greedy_never_better_than_brute_force(self, instance, bound):
        polys, forest = instance
        bound = min(bound, max(1, polys.num_monomials))
        greedy = greedy_vvs(polys, forest, bound)
        if greedy.abstracted_size > bound:
            return
        optimal = brute_force_vvs(polys, forest, bound, max_cuts=None)
        assert greedy.variable_loss >= optimal.variable_loss


class TestDecision:
    @given(single_tree_instances())
    @settings(max_examples=40, deadline=None)
    def test_precise_pairs_equal_enumeration(self, instance):
        polys, tree = instance
        forest = AbstractionForest([tree])
        assume(forest.count_cuts() <= 300)
        enumerated = set()
        for vvs in forest.iter_cuts():
            size, granularity = abstract_counts(polys, vvs.mapping())
            enumerated.add(
                (polys.num_monomials - size, polys.num_variables - granularity)
            )
        assert precise_pairs(polys, tree) == enumerated

    @given(single_tree_instances(), st.integers(0, 20), st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_exists_precise_consistent_with_enumeration(
        self, instance, size_delta, granularity_delta
    ):
        polys, tree = instance
        forest = AbstractionForest([tree])
        assume(forest.count_cuts() <= 300)
        size = max(1, polys.num_monomials - size_delta)
        granularity = max(1, polys.num_variables - granularity_delta)
        via_dp = exists_precise(polys, tree, size, granularity)
        via_enumeration = any(
            abstract_counts(polys, vvs.mapping()) == (size, granularity)
            for vvs in forest.iter_cuts()
        )
        assert via_dp == via_enumeration
