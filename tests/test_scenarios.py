"""Tests for scenarios, speedup analysis, and the sampling pipeline."""

import pytest

from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from repro.core.forest import AbstractionForest
from repro.core.parser import parse_set
from repro.core.tree import AbstractionTree
from repro.scenarios import (
    Scenario,
    ScenarioOverlapWarning,
    ScenarioSuite,
    adapt_bound,
    approximate_lift,
    assignment_speedup,
    extrapolate_size,
    online_compress,
    sample_polynomials,
    scenario_error,
)
from repro.workloads.random_polys import random_polynomials
from repro.workloads.trees import layered_tree


@pytest.fixture
def instance():
    polys = parse_set(
        ["2*a*x + 3*b*x + 4*c*y + 5*d*y", "6*a*z + 7*b*z"]
    )
    tree = AbstractionTree.from_nested(
        ("r", [("g1", ["a", "b"]), ("g2", ["c", "d"])])
    )
    return polys, AbstractionForest([tree])


class TestScenario:
    def test_uniform_constructor(self):
        s = Scenario.uniform("up", ["a", "b"], 1.2)
        assert s.changes == {"a": 1.2, "b": 1.2}

    def test_evaluate(self, instance):
        polys, _ = instance
        s = Scenario("halve-a", {"a": 0.5})
        values = s.evaluate(polys)
        assert values[0] == pytest.approx(1 + 3 + 4 + 5)
        assert values[1] == pytest.approx(3 + 7)

    def test_compose_multiplies(self):
        with pytest.warns(ScenarioOverlapWarning, match="both change x"):
            s = Scenario("a", {"x": 0.8}).compose(
                Scenario("b", {"x": 0.5, "y": 2.0})
            )
        assert s.changes == {"x": 0.4, "y": 2.0}

    def test_compose_disjoint_does_not_warn(self, recwarn):
        s = Scenario("a", {"x": 0.8}).compose(Scenario("b", {"y": 2.0}))
        assert s.changes == {"x": 0.8, "y": 2.0}
        assert not [w for w in recwarn.list
                    if issubclass(w.category, ScenarioOverlapWarning)]

    def test_compose_warning_names_every_overlap(self):
        with pytest.warns(ScenarioOverlapWarning, match="x, y"):
            Scenario("a", {"x": 0.8, "y": 1.0}).compose(
                Scenario("b", {"x": 0.5, "y": 2.0})
            )

    def test_supported_by(self, instance):
        _, forest = instance
        vvs = forest.vvs({"g1", "g2"})
        assert Scenario.uniform("u", ["a", "b"], 0.9).is_supported_by(vvs)
        assert not Scenario("nu", {"a": 0.9}).is_supported_by(vvs)

    def test_lift(self, instance):
        _, forest = instance
        vvs = forest.vvs({"g1", "g2"})
        lifted = Scenario.uniform("u", ["a", "b"], 0.9).lift(vvs)
        assert lifted["g1"] == 0.9

    def test_suite_filters_supported(self, instance):
        _, forest = instance
        vvs = forest.vvs({"g1", "g2"})
        suite = ScenarioSuite(
            [
                Scenario.uniform("ok", ["a", "b"], 0.9),
                Scenario("not-ok", {"a": 0.9}),
            ]
        )
        assert [s.name for s in suite.supported_by(vvs)] == ["ok"]

    def test_suite_evaluate(self, instance):
        polys, _ = instance
        suite = ScenarioSuite([Scenario("id", {})])
        values = suite.evaluate(polys)
        assert values["id"][0] == pytest.approx(14)


class TestSpeedupAndAccuracy:
    def test_uniform_scenario_is_exact(self, instance):
        polys, forest = instance
        vvs = forest.vvs({"g1", "g2"})
        abstracted = vvs.apply(polys)
        scenario = Scenario.uniform("u", ["a", "b", "c", "d"], 0.75)
        errors = scenario_error(polys, abstracted, vvs, scenario)
        assert all(e == pytest.approx(0.0) for e in errors)

    def test_non_uniform_scenario_has_bounded_error(self, instance):
        polys, forest = instance
        vvs = forest.vvs({"g1", "g2"})
        abstracted = vvs.apply(polys)
        scenario = Scenario("skew", {"a": 0.5, "b": 1.5})
        errors = scenario_error(polys, abstracted, vvs, scenario)
        assert any(e > 0 for e in errors)
        assert all(e < 1.0 for e in errors)

    def test_approximate_lift_uses_group_mean(self, instance):
        _, forest = instance
        vvs = forest.vvs({"g1", "g2"})
        lifted = approximate_lift(Scenario("skew", {"a": 0.5, "b": 1.5}), vvs)
        assert lifted["g1"] == pytest.approx(1.0)

    def test_speedup_report_fields(self):
        polys = random_polynomials(
            10, 50, [[f"v{i}" for i in range(16)]], seed=3
        )
        tree = layered_tree(
            sorted(polys.variables & {f"v{i}" for i in range(16)}), (1,),
            prefix="all"
        )
        # Use the root cut for maximal compression.
        forest = AbstractionForest([tree])
        vvs = forest.root_vvs()
        abstracted = vvs.apply(polys)
        scenarios = [Scenario.uniform(f"s{k}", list(polys.variables), 0.9)
                     for k in range(3)]
        report = assignment_speedup(polys, abstracted, scenarios, vvs=vvs)
        assert report.raw_size == polys.num_monomials
        assert report.abstracted_size == abstracted.num_monomials
        assert report.abstracted_size <= report.raw_size
        assert report.compression_ratio <= 1.0
        assert report.speedup_percent <= 100.0


class TestSampling:
    def test_sample_is_subset(self, instance):
        polys, _ = instance
        sample = sample_polynomials(polys, 0.5, seed=1)
        assert 1 <= len(sample) <= len(polys)
        for polynomial in sample:
            assert polynomial in polys.polynomials

    def test_sample_fraction_validation(self, instance):
        polys, _ = instance
        with pytest.raises(ValueError):
            sample_polynomials(polys, 0.0)
        with pytest.raises(ValueError):
            sample_polynomials(polys, 1.5)

    def test_adapt_bound(self):
        assert adapt_bound(100, 1000, 100) == 10
        assert adapt_bound(5, 0, 10) == 5
        assert adapt_bound(1, 1000, 1) == 1  # never below 1

    def test_extrapolate_linear(self):
        estimate = extrapolate_size([0.25, 0.5, 0.75], [25, 50, 75])
        assert estimate == pytest.approx(100.0)

    def test_extrapolate_needs_enough_points(self):
        with pytest.raises(ValueError):
            extrapolate_size([0.5], [10], degree=1)

    def test_online_compress_end_to_end(self):
        pool = [f"v{i}" for i in range(16)]
        polys = random_polynomials(20, 12, [pool], seed=7, extra_variables=4)
        tree = layered_tree(pool, (4,), prefix="g")
        forest = AbstractionForest([tree])
        bound = polys.num_monomials // 2
        result = online_compress(polys, forest, bound, fraction=0.4, seed=3)
        assert result.vvs is not None
        assert result.achieved_size <= polys.num_monomials
        assert result.sample_bound <= bound

    def test_online_compress_with_optimal_algorithm(self):
        pool = [f"v{i}" for i in range(8)]
        polys = random_polynomials(10, 10, [pool], seed=9)
        tree = layered_tree(pool, (2,), prefix="g")
        result = online_compress(
            polys, AbstractionForest([tree]), bound=polys.num_monomials // 2,
            fraction=0.5, seed=2, algorithm=optimal_vvs,
        )
        assert result.achieved_size <= polys.num_monomials

    def test_online_vvs_remains_valid_for_full_set(self):
        """The sample may miss variables; the VVS must still apply."""
        pool = [f"v{i}" for i in range(8)]
        polys = random_polynomials(12, 4, [pool], seed=13)
        tree = layered_tree(pool, (2,), prefix="g")
        result = online_compress(
            polys, AbstractionForest([tree]), bound=max(1, polys.num_monomials - 3),
            fraction=0.2, seed=1, algorithm=greedy_vvs,
        )
        abstracted = result.vvs.apply(polys)
        assert abstracted.num_monomials == result.achieved_size
