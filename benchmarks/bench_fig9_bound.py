"""Figure 9: compression time as a function of the bound B.

Paper shape: Opt VVS is insensitive to the bound (the DP always fills
its tables), while the greedy gets *faster* as the bound loosens — it
stops as soon as ML(S) reaches |P|_M − B.
"""

import pytest

from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from benchmarks import common

#: Figure/table benches run minutes at full scale; `-m "not slow"` skips them.
pytestmark = pytest.mark.slow

#: Fractions of the feasible compression range (1.0 = maximal squeeze).
FRACTIONS = [0.9, 0.7, 0.5, 0.3, 0.1]
TREE_FANOUTS = (8,)


def _series(workload):
    provenance = common.workload_provenance(workload)
    tree = common.workload_tree(workload, TREE_FANOUTS).clean(
        provenance.variables
    )
    rows = []
    for fraction in FRACTIONS:
        bound = common.feasible_bound(provenance, tree, fraction)
        opt_seconds, _ = common.timed(
            optimal_vvs, provenance, tree, bound, clean=False
        )
        greedy_seconds, _ = common.timed(
            greedy_vvs, provenance, common.forest_of(tree), bound, clean=False
        )
        rows.append(
            [workload, bound, f"{opt_seconds:.4f}", f"{greedy_seconds:.4f}"]
        )
    return rows


@pytest.mark.parametrize("workload", common.WORKLOADS)
def test_fig9(benchmark, workload):
    rows = benchmark.pedantic(_series, args=(workload,), rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
    common.emit(
        f"fig9_{workload}",
        ["workload", "bound", "opt [s]", "greedy [s]"],
        rows,
        title=f"Figure 9 — {workload}: compression time vs bound",
    )
    # Bounds increase along the series (fractions decrease).
    bounds = [row[1] for row in rows]
    assert bounds == sorted(bounds)
