"""Tests for the session facade and the compression artifact."""

import pytest

from repro.api import Answer, CompressedProvenance, ProvenanceSession, as_forest
from repro.algorithms.result import InfeasibleBoundError
from repro.core import serialize
from repro.core.forest import AbstractionForest
from repro.core.tree import AbstractionTree
from repro.core.valuation import Valuation
from repro.scenarios import Scenario, ScenarioSuite
from repro.workloads.telephony import (
    example13_polynomials,
    figure1_database,
    figure1_plan_variables,
    months_tree,
    plans_tree,
)

REVENUE_SQL = (
    "SELECT Zip, SUM(Calls.Dur * Plans.Price) "
    "FROM Calls, Cust, Plans "
    "WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID "
    "AND Calls.Mo = Plans.Mo GROUP BY Cust.Zip"
)


@pytest.fixture
def session():
    return ProvenanceSession.from_polynomials(
        example13_polynomials(), forest=[plans_tree(), months_tree()]
    )


class TestAsForest:
    def test_none(self):
        assert as_forest(None) is None

    def test_forest_passthrough(self):
        forest = AbstractionForest([AbstractionTree.from_nested(("r", ["x"]))])
        assert as_forest(forest) is forest

    def test_tree_and_nested_and_mixed(self):
        tree = AbstractionTree.from_nested(("r", ["x", "y"]))
        assert as_forest(tree).trees == [tree]
        assert as_forest(("r", ["x", "y"])).trees[0].labels == tree.labels
        mixed = as_forest([tree, ("s", ["z"])])
        assert [t.root.label for t in mixed.trees] == ["r", "s"]


class TestSessionEntryPoints:
    def test_from_strings(self):
        session = ProvenanceSession.from_strings(
            ["2*b1*m1 + 3*b2*m1"], forest=("SB", ["b1", "b2"])
        )
        assert session.polynomials.num_monomials == 2
        assert len(session.forest.trees) == 1

    def test_from_polynomials(self, session):
        assert session.polynomials.num_monomials == 14
        assert session.profile().num_variables == 9

    def test_from_query_matches_example13(self):
        cust, calls, plans = figure1_database()
        plan_vars = figure1_plan_variables()
        session = ProvenanceSession.from_query(
            REVENUE_SQL,
            {"Cust": cust, "Calls": calls, "Plans": plans},
            params=lambda row: [plan_vars[row["Cust.Plan"]],
                                f"m{row['Calls.Mo']}"],
        )
        # Equal up to float epsilon (the engine computes Dur*Price;
        # example13 parses the printed decimals).
        assert session.polynomials.almost_equal(example13_polynomials())

    def test_from_query_non_aggregate(self):
        cust, calls, plans = figure1_database()
        session = ProvenanceSession.from_query(
            "SELECT ID FROM Cust", {"Cust": cust}
        )
        # Unannotated rows carry multiplicity 1 -> constant polynomials.
        assert len(session.polynomials) == 7
        assert all(p.evaluate({}) == 1 for p in session.polynomials)

    def test_with_forest(self, session):
        other = session.with_forest(("SB", ["b1", "b2"]))
        assert other.polynomials is session.polynomials
        assert len(other.forest.trees) == 1

    def test_evaluate_raw(self, session):
        values = session.evaluate({"m1": 0.0})
        assert values == pytest.approx([451.15, 237.65])


class TestCompress:
    def test_auto_picks_greedy_for_forest(self, session):
        artifact = session.compress(bound=6)
        assert artifact.algorithm == "greedy"
        assert artifact.abstracted_size <= 6
        assert artifact.bound == 6
        assert artifact.original_size == 14

    def test_auto_picks_optimal_for_single_tree(self, session):
        artifact = session.with_forest(plans_tree()).compress(bound=9)
        assert artifact.algorithm == "optimal"
        assert artifact.abstracted_size == 8

    def test_auto_optimal_after_cleaning_multi_tree_forest(self, session):
        # The policy judges the *cleaned* forest: the second tree's
        # leaves never occur, so auto must run the DP, not crash on the
        # raw two-tree forest.
        artifact = session.with_forest(
            [plans_tree(), ("ZZ", ["z1", "z2"])]
        ).compress(bound=9)
        assert artifact.algorithm == "optimal"
        assert artifact.abstracted_size == 8

    def test_explicit_algorithm(self, session):
        artifact = session.compress(bound=6, algorithm="brute-force")
        assert artifact.algorithm == "brute-force"
        assert artifact.abstracted_size <= 6

    def test_optimal_rejects_forest(self, session):
        with pytest.raises(ValueError, match="NP-hard"):
            session.compress(bound=6, algorithm="optimal")

    def test_infeasible_bound_propagates(self, session):
        with pytest.raises(InfeasibleBoundError):
            session.with_forest(plans_tree()).compress(bound=1)

    def test_missing_forest(self):
        with pytest.raises(ValueError, match="no abstraction forest"):
            ProvenanceSession.from_strings(["x + y"]).compress(bound=1)

    def test_solver_options_forwarded(self, session):
        artifact = session.compress(bound=6, algorithm="greedy",
                                    ml_tie_break=False)
        assert artifact.abstracted_size <= 6

    def test_backend_knob_yields_identical_artifacts(self, session):
        artifacts = [
            session.compress(bound=6, backend=backend)
            for backend in ("object", "columnar", "auto")
        ]
        assert artifacts[0] == artifacts[1] == artifacts[2]

    def test_legacy_solver_without_backend_parameter_still_works(self, session):
        """The backend knob is only forwarded to solvers that take it."""
        from repro.algorithms import registry
        from repro.algorithms.greedy import greedy_vvs

        @registry.register("test-legacy")
        def legacy(polynomials, forest, bound, *, clean=True):
            return greedy_vvs(polynomials, forest, bound, clean=clean)

        try:
            artifact = session.compress(bound=6, algorithm="test-legacy")
            assert artifact.algorithm == "test-legacy"
            assert artifact.abstracted_size <= 6
        finally:
            registry._REGISTRY.pop("test-legacy")


class TestAsk:
    @pytest.fixture
    def artifact(self, session):
        return session.compress(bound=6)

    def test_exact_iff_uniform_on_cut(self, artifact):
        uniform = Scenario.uniform("q1", ["m1", "m2", "m3"], 0.8)
        non_uniform = Scenario("jan", {"m1": 0.8})
        assert uniform.is_supported_by(artifact.vvs)
        assert artifact.ask(uniform).exact
        assert not non_uniform.is_supported_by(artifact.vvs)
        assert not artifact.ask(non_uniform).exact

    def test_exact_answer_matches_raw(self, session, artifact):
        scenario = Scenario.uniform("q1", ["m1", "m2", "m3"], 0.8)
        raw = scenario.evaluate(session.polynomials)
        answer = artifact.ask(scenario)
        assert list(answer.values) == pytest.approx(list(raw))

    def test_ask_accepts_valuation_and_mapping(self, artifact):
        from_mapping = artifact.ask({"m1": 0.8, "m2": 0.8, "m3": 0.8})
        from_valuation = artifact.ask(
            Valuation({"m1": 0.8, "m2": 0.8, "m3": 0.8})
        )
        assert from_mapping.values == from_valuation.values
        assert from_mapping.exact and from_valuation.exact

    def test_ask_many_suite(self, artifact):
        suite = ScenarioSuite([
            Scenario.uniform("q1", ["m1", "m2", "m3"], 0.8),
            Scenario("jan", {"m1": 0.8}),
        ])
        answers = artifact.ask_many(suite)
        assert [a.name for a in answers] == ["q1", "jan"]
        assert [a.exact for a in answers] == [True, False]
        assert all(len(a) == 2 for a in answers)

    def test_ask_many_empty(self, artifact):
        assert artifact.ask_many([]) == []

    def test_anonymous_scenarios_get_names(self, artifact):
        answers = artifact.ask_many([{"m1": 1.0}, {"m2": 1.0}])
        assert [a.name for a in answers] == ["scenario-0", "scenario-1"]

    def test_supports(self, artifact):
        assert artifact.supports({"m1": 0.8, "m2": 0.8, "m3": 0.8})
        assert not artifact.supports({"m1": 0.8})


class TestArtifactRoundTrip:
    @pytest.fixture
    def artifact(self, session):
        return session.compress(bound=6)

    def test_envelope_byte_identical(self, artifact):
        text = serialize.dumps(artifact)
        assert serialize.dumps(serialize.loads(text)) == text

    def test_reload_preserves_everything(self, artifact):
        reloaded = serialize.loads(serialize.dumps(artifact))
        assert isinstance(reloaded, CompressedProvenance)
        assert reloaded == artifact
        assert reloaded.vvs.labels == artifact.vvs.labels
        assert reloaded.algorithm == artifact.algorithm
        assert reloaded.monomial_loss == artifact.monomial_loss
        assert reloaded.variable_loss == artifact.variable_loss

    def test_reload_returns_identical_answers(self, artifact):
        suite = [
            Scenario.uniform("q1", ["m1", "m2", "m3"], 0.8),
            Scenario("jan", {"m1": 0.8}),
            Scenario("biz", {"b1": 1.3, "b2": 1.3, "e": 1.3}),
        ]
        reloaded = serialize.loads(serialize.dumps(artifact))
        assert reloaded.ask_many(suite) == artifact.ask_many(suite)

    def test_save_load_file(self, artifact, tmp_path):
        path = str(tmp_path / "artifact.json")
        artifact.save(path)
        assert CompressedProvenance.load(path) == artifact

    def test_load_rejects_other_kinds(self, session, tmp_path):
        path = tmp_path / "polys.json"
        path.write_text(serialize.dumps(session.polynomials))
        with pytest.raises(TypeError, match="expected a CompressedProvenance"):
            CompressedProvenance.load(str(path))


class TestEndToEnd:
    def test_query_compress_ask(self):
        """The acceptance flow: from_query -> compress -> ask."""
        cust, calls, plans = figure1_database()
        plan_vars = figure1_plan_variables()
        artifact = ProvenanceSession.from_query(
            REVENUE_SQL,
            {"Cust": cust, "Calls": calls, "Plans": plans},
            params=lambda row: [plan_vars[row["Cust.Plan"]],
                                f"m{row['Calls.Mo']}"],
            forest=[plans_tree(), months_tree()],
        ).compress(bound=6)
        answer = artifact.ask(
            Scenario.uniform("q1 -20%", ["m1", "m2", "m3"], 0.8)
        )
        assert isinstance(answer, Answer)
        assert answer.exact
        # Exact means: equal to valuating the *raw* provenance.
        raw = Valuation({"m1": 0.8, "m2": 0.8, "m3": 0.8}).evaluate(
            example13_polynomials()
        )
        assert list(answer.values) == pytest.approx(list(raw))
