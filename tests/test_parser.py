"""Unit tests for the polynomial parser."""

import pytest

from repro.core.parser import ParseError, parse, parse_set
from repro.core.polynomial import Monomial, Polynomial


class TestBasicForms:
    def test_single_variable(self):
        assert parse("x") == Polynomial.variable("x")

    def test_constant_int(self):
        assert parse("7") == Polynomial.constant(7)

    def test_constant_float(self):
        assert parse("2.5").coefficient(Monomial.ONE) == 2.5

    def test_product(self):
        assert parse("2*x*y") == Polynomial({Monomial.of("x", "y"): 2})

    def test_exponent(self):
        assert parse("x^3") == Polynomial({Monomial.of(("x", 3)): 1})

    def test_repeated_variable_multiplies(self):
        assert parse("x*x") == parse("x^2")

    def test_sum_and_difference(self):
        p = parse("2*x - y + 3")
        assert p.coefficient(Monomial.of("y")) == -1
        assert p.coefficient(Monomial.ONE) == 3

    def test_leading_minus(self):
        assert parse("-x + 1").coefficient(Monomial.of("x")) == -1

    def test_whitespace_insensitive(self):
        assert parse(" 2 * x + y ") == parse("2*x+y")

    def test_numbers_multiply_into_coefficient(self):
        assert parse("2*3*x") == parse("6*x")

    def test_like_terms_combine(self):
        assert parse("x + x") == parse("2*x")

    def test_underscore_and_digit_names(self):
        p = parse("x(1)" .replace("(", "_").replace(")", "") + " + m3")
        assert "x_1" in p.variables and "m3" in p.variables


class TestPaperPolynomials:
    def test_example2_polynomial(self):
        p = parse(
            "220.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + "
            "75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3"
        )
        assert p.num_monomials == 8
        assert p.coefficient(Monomial.of("p1", "m1")) == 220.8

    def test_example2_abstracted_polynomial(self):
        p = parse("460.8*p1*q1 + 241.85*f1*q1 + 148.4*y1*q1 + 66.2*v*q1")
        assert p.num_monomials == 4
        assert p.num_variables == 5


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        ["x", "2*x + 3*y", "x^2*y + 4", "0.5*a*b^3 - 2*c", "1 + x + x^2"],
    )
    def test_str_then_parse_is_identity(self, text):
        p = parse(text)
        assert parse(str(p)) == p


class TestErrors:
    def test_rejects_garbage_character(self):
        with pytest.raises(ParseError):
            parse("x $ y")

    def test_rejects_trailing_operator(self):
        with pytest.raises(ParseError):
            parse("x +")

    def test_rejects_empty_input(self):
        with pytest.raises(ParseError):
            parse("")

    def test_rejects_float_exponent(self):
        with pytest.raises(ParseError):
            parse("x^2.5")

    def test_rejects_double_operator(self):
        with pytest.raises(ParseError):
            parse("x ++ y")


class TestParseSet:
    def test_parses_each_string(self):
        ps = parse_set(["x + y", "z"])
        assert len(ps) == 2
        assert ps.num_variables == 3
