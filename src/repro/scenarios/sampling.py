"""Online compression via sampling — the §6 future-work pipeline.

The paper's proposal: instead of computing full provenance and then
compressing, (1) generate provenance for a *sample*, (2) choose a VVS on
the sample with an *adapted bound*, (3) generate/compress the full
provenance directly over the chosen meta-variables. Two gaps are called
out in §6 and implemented here with the paper's suggested heuristics:

* **bound adaptation** — scale the bound by the sample-to-full
  provenance size ratio ("the first multiplied by the second");
* **full-size estimation** — extrapolate the full provenance size from
  samples of increasing size (the paper cites extrapolation methods
  [14]; we fit a low-degree polynomial with numpy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy

from repro.core.abstraction import abstract_counts, ensure_set
from repro.core.forest import AbstractionForest, ValidVariableSet
from repro.core.polynomial import PolynomialSet
from repro.core.tree import AbstractionTree
from repro.algorithms.greedy import greedy_vvs
from repro.util.rng import derive_rng

__all__ = [
    "sample_polynomials",
    "adapt_bound",
    "extrapolate_size",
    "online_compress",
    "OnlineCompressionResult",
]


def sample_polynomials(polynomials, fraction, seed=0):
    """A uniform sample of the polynomial multiset (at least one).

    Uniform sampling of *output* polynomials corresponds to the §6
    heuristic of sampling the relation holding the grouping attributes
    (each group's polynomial is kept or dropped wholesale).
    """
    polynomials = ensure_set(polynomials)
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = derive_rng(seed, "sample_polynomials")
    count = max(1, round(len(polynomials) * fraction))
    indices = sorted(rng.sample(range(len(polynomials)), count))
    return PolynomialSet([polynomials[i] for i in indices])


def adapt_bound(bound, full_size, sample_size):
    """§6's bound heuristic: scale by the sample/full size ratio."""
    if full_size <= 0:
        return bound
    scaled = round(bound * sample_size / full_size)
    return max(1, scaled)


def extrapolate_size(fractions, sizes, degree=1):
    """Estimate the full provenance size from sampled sizes.

    Fits ``size ≈ poly(fraction)`` of the given degree and evaluates at
    ``fraction = 1`` — the paper's "perform multiple samples of
    increasing sizes … and extrapolate" heuristic.

    >>> round(extrapolate_size([0.1, 0.2, 0.4], [11, 19, 42]))
    104
    """
    if len(fractions) < degree + 1:
        raise ValueError(
            f"need at least {degree + 1} samples for degree {degree}"
        )
    coefficients = numpy.polyfit(fractions, sizes, degree)
    return float(numpy.polyval(coefficients, 1.0))


@dataclass
class OnlineCompressionResult:
    """Outcome of the sample-then-abstract pipeline.

    ``scenario_support`` / ``scenario_rmse`` are populated only when a
    scenario suite was handed to :func:`online_compress`: the fraction
    of scenarios the chosen VVS answers exactly, and the RMS relative
    error of the abstracted answers on the sample.
    """

    vvs: ValidVariableSet
    sample_fraction: float
    sample_bound: int
    requested_bound: int
    achieved_size: int
    achieved_granularity: int
    scenario_support: float | None = None
    scenario_rmse: float | None = None

    @property
    def within_bound(self):
        return self.achieved_size <= self.requested_bound


def _scenario_preview(sample, vvs, scenarios):
    """(support fraction, RMS relative error) of a suite on the sample.

    Both sides valuate through the compiled batch evaluator — the whole
    suite per matrix product — so previewing hundreds of anticipated
    scenarios before committing to a VVS is cheap.
    """
    from repro.scenarios.analysis import approximate_lift

    scenarios = list(scenarios)
    if not scenarios:
        return None, None
    supported = 0
    lifted = []
    for scenario in scenarios:
        if scenario.is_supported_by(vvs):
            supported += 1
            lifted.append(scenario.lift(vvs))
        else:
            lifted.append(approximate_lift(scenario, vvs))
    exact = sample.evaluate_batch([s.valuation() for s in scenarios])
    approx = vvs.apply(sample).evaluate_batch(lifted)
    relative = numpy.abs(approx - exact) / numpy.maximum(1.0, numpy.abs(exact))
    return supported / len(scenarios), float(
        numpy.sqrt(numpy.mean(numpy.square(relative)))
    )


def online_compress(
    polynomials,
    forest,
    bound,
    fraction=0.1,
    seed=0,
    algorithm=greedy_vvs,
    scenarios=None,
):
    """Choose a VVS on a sample; apply it to the full provenance.

    ``algorithm`` is any ``(polynomials, forest, bound) → result`` — the
    greedy by default (works for forests); pass
    :func:`repro.algorithms.optimal.optimal_vvs` for single trees.

    The returned VVS is chosen *without ever compressing the full set*,
    which is the online pipeline's entire point; ``achieved_size``
    reports how well the sample's choice transfers. When the analyst's
    anticipated ``scenarios`` are known, they are batch-valuated on the
    sample (raw vs abstracted) to report how accurately the chosen VVS
    would answer them — see :class:`OnlineCompressionResult`.
    """
    polynomials = ensure_set(polynomials)
    if isinstance(forest, AbstractionTree):
        forest = AbstractionForest([forest])
    sample = sample_polynomials(polynomials, fraction, seed)
    sample_bound = adapt_bound(
        bound, polynomials.num_monomials, sample.num_monomials
    )
    # Clean against the FULL variable set so the sample's VVS remains
    # valid for the full provenance (the sample may miss variables).
    cleaned = forest.clean(polynomials)
    result = algorithm(sample, cleaned, sample_bound, clean=False)
    size, granularity = abstract_counts(polynomials, result.vvs.mapping())
    support, rmse = (
        _scenario_preview(sample, result.vvs, scenarios)
        if scenarios is not None
        else (None, None)
    )
    return OnlineCompressionResult(
        vvs=result.vvs,
        sample_fraction=fraction,
        sample_bound=sample_bound,
        requested_bound=bound,
        achieved_size=size,
        achieved_granularity=granularity,
        scenario_support=support,
        scenario_rmse=rmse,
    )
