"""Command-line interface: compress, inspect, and valuate provenance files.

The paper's deployment story (§1, "Offline vs. Online Compression") is
file-shaped: provenance is computed once, compressed, then shipped to
analysts. This CLI is that pipeline::

    python -m repro inspect  provenance.json
    python -m repro compress provenance.json forest.json \
        --bound 500 --algorithm greedy --output compressed.json \
        --vvs-output cut.json --artifact artifact.json
    python -m repro ask      artifact.json --set m1=0.8
    python -m repro extend   artifact.json --added delta.json \
        --provenance provenance.json --output artifact2.rpb
    python -m repro sweep    artifact.json --oaat all \
        --multipliers 0.8,1.2 --workers 4 --top-k 5 --sensitivity
    python -m repro valuate  compressed.json --set q1=0.8 --set Business=1.1
    python -m repro decide   provenance.json forest.json --size 4 --granularity 5
    python -m repro bench    --smoke --check BENCH_core.json
    python -m repro lint     src tests

Files are the JSON produced by :mod:`repro.core.serialize` (tagged
``polynomial_set`` / ``forest`` / ``compressed_provenance`` payloads).
Algorithms come from :mod:`repro.algorithms.registry` — ``--algorithm
auto`` picks the optimal DP for single-tree forests and the greedy
otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.algorithms import registry
from repro.algorithms.result import InfeasibleBoundError
from repro.algorithms.decision import exists_precise
from repro.api.artifact import CompressedProvenance
from repro.api.session import ProvenanceSession
from repro.core import serialize
from repro.core.forest import AbstractionForest
from repro.core.polynomial import PolynomialSet
from repro.core.valuation import Valuation
from repro.lint import cli as lint_cli
from repro.options import EvalOptions
from repro.scenarios.scenario import Scenario, ScenarioSuite

__all__ = ["main"]


def _load(path, expected):
    try:
        payload = serialize.load_path(path)
    except serialize.SerializeError as error:
        raise SystemExit(f"{path}: {error}") from None
    if not isinstance(payload, expected):
        raise SystemExit(
            f"{path}: expected a {expected.__name__}, "
            f"got {type(payload).__name__}"
        )
    return payload


def _cmd_inspect(args):
    from repro.core.statistics import profile

    provenance = _load(args.provenance, PolynomialSet)
    report = profile(provenance)
    print(f"polynomials:        {report.num_polynomials}")
    print(f"monomials (|P|_M):  {report.num_monomials}")
    print(f"variables (|P|_V):  {report.num_variables}")
    if report.num_polynomials:
        print(f"largest polynomial: {report.max_polynomial_size} monomials")
        print(f"smallest polynomial:{report.min_polynomial_size:>5} monomials")
        print(f"average size:       {report.mean_polynomial_size:.2f} monomials")
        print(f"max degree:         {report.max_monomial_degree}")
        print(f"workload shape:     {report.shape}")
        top = ", ".join(
            f"{name} ({count})" for name, count in report.top_variables(5)
        )
        print(f"top variables:      {top}")
    print(f"serialized bytes:   {serialize.serialized_size(provenance)}")
    return 0


def _cmd_compress(args):
    provenance = _load(args.provenance, PolynomialSet)
    forest = _load(args.forest, AbstractionForest)
    session = ProvenanceSession(provenance, forest)
    try:
        artifact = session.compress(args.bound, algorithm=args.algorithm,
                                    options=EvalOptions(backend=args.backend))
    except InfeasibleBoundError as error:
        raise SystemExit(f"infeasible: {error}") from None
    except ValueError as error:
        # e.g. optimal requested on a multi-tree forest (NP-hard).
        raise SystemExit(str(error)) from None
    print(f"algorithm:     {artifact.algorithm}")
    print(f"selected VVS:  {sorted(artifact.vvs.labels)}")
    print(f"size:          {artifact.original_size} -> {artifact.abstracted_size}")
    print(f"granularity:   {artifact.original_granularity} -> "
          f"{artifact.abstracted_granularity}")
    if artifact.abstracted_size > args.bound:
        print(f"WARNING: bound {args.bound} not reached "
              "(no adequate VVS exists; returned the best cut found)")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(serialize.dumps(artifact.polynomials))
        print(f"wrote compressed provenance to {args.output}")
    if args.vvs_output:
        with open(args.vvs_output, "w") as handle:
            json.dump(serialize.vvs_to_dict(artifact.vvs), handle, sort_keys=True)
        print(f"wrote VVS to {args.vvs_output}")
    if args.artifact:
        artifact.save(args.artifact, format=args.format)
        print(f"wrote compression artifact to {args.artifact}")
    return 0


def _cmd_extend(args):
    """Append provenance to an artifact incrementally (`repro extend`)."""
    from repro.errors import CompressionError

    artifact = CompressedProvenance.load(args.artifact, mmap=False)
    added = _load(args.added, PolynomialSet)
    options = EvalOptions(backend=args.backend)
    try:
        if args.provenance:
            # With the originals on hand the drift fallback can run an
            # exact recompression; the artifact file carries the forest.
            provenance = _load(args.provenance, PolynomialSet)
            session = ProvenanceSession(provenance, artifact.forest)
            result = session.extend(
                added, artifact,
                drift_limit=args.drift_limit, options=options,
            )
        else:
            result = artifact.refresh(
                added, drift_limit=args.drift_limit, options=options,
            )
    except CompressionError as error:
        raise SystemExit(str(error)) from None
    extended = result.artifact
    print(f"path:          {result.path}")
    print(f"drift:         {result.drift:.4f} (limit {result.drift_limit})")
    print(f"appended:      {result.added_polynomials} polynomials, "
          f"{result.added_monomials} monomials")
    print(f"revision:      {result.revision}")
    print(f"size:          {extended.original_size} -> "
          f"{extended.abstracted_size}")
    print(f"granularity:   {extended.original_granularity} -> "
          f"{extended.abstracted_granularity}")
    if args.output:
        extended.save(args.output, format=args.format)
        print(f"wrote extended artifact to {args.output}")
    return 0


def _parse_assignment(settings):
    assignment = {}
    for setting in settings:
        if "=" not in setting:
            raise SystemExit(f"--set expects name=value, got {setting!r}")
        name, _, value = setting.partition("=")
        try:
            assignment[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"value of {name!r} is not a number: {value!r}"
            ) from None
    return assignment


def _cmd_valuate(args):
    provenance = _load(args.provenance, PolynomialSet)
    valuation = Valuation.coerce(_parse_assignment(args.set))
    for index, value in enumerate(valuation.evaluate(provenance)):
        print(f"polynomial[{index}] = {value}")
    return 0


def _load_suite(path):
    """Read a scenario suite: ``{"scenarios": [{name, changes}, ...]}``.

    A bare JSON list of scenario objects is accepted too.
    """
    with open(path) as handle:
        payload = json.load(handle)
    entries = payload.get("scenarios") if isinstance(payload, dict) else payload
    if not isinstance(entries, list):
        raise SystemExit(
            f"{path}: expected a list of scenarios or "
            '{"scenarios": [...]}'
        )
    suite = ScenarioSuite()
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict) or not isinstance(
            entry.get("changes"), dict
        ):
            raise SystemExit(
                f"{path}: scenario #{index} must be an object with a "
                '"changes" mapping (and an optional "name")'
            )
        suite.add(Scenario(entry.get("name", f"scenario-{index}"),
                           entry["changes"]))
    return suite


def _cmd_ask(args):
    artifact = _load(args.artifact, CompressedProvenance)
    suite = _load_suite(args.suite) if args.suite else ScenarioSuite()
    if args.set:
        suite.add(Scenario(args.name, _parse_assignment(args.set)))
    if not len(suite):
        raise SystemExit("nothing to ask: pass --set VAR=VALUE and/or --suite")
    for answer in artifact.ask_many(suite):
        mode = "exact" if answer.exact else "approximate"
        print(f"{answer.name} ({mode}):")
        for index, value in enumerate(answer.values):
            print(f"  polynomial[{index}] = {value}")
    return 0


def _split_csv(text, flag):
    values = [item.strip() for item in text.split(",")]
    values = [item for item in values if item]
    if not values:
        raise SystemExit(f"{flag} expects a comma-separated list, got {text!r}")
    return values


def _parse_multipliers(args, flag="--multipliers"):
    if not args.multipliers:
        raise SystemExit(f"{args.mode_flag} requires {flag} M1,M2,...")
    out = []
    for item in _split_csv(args.multipliers, flag):
        try:
            out.append(float(item))
        except ValueError:
            raise SystemExit(f"{flag}: not a number: {item!r}") from None
    return out


def _build_sweep(args, variables):
    """Construct the Sweep described by --grid/--oaat/--random flags."""
    from repro.scenarios.sweep import Sweep

    if args.grid:
        args.mode_flag = "--grid"
        groups = {}
        for spec in args.grid:
            name, eq, members = spec.partition("=")
            if not eq or not name:
                raise SystemExit(
                    f"--grid expects GROUP=var1,var2,..., got {spec!r}"
                )
            groups[name] = _split_csv(members, "--grid")
        return Sweep.grid(groups, _parse_multipliers(args))
    if args.oaat is not None:
        args.mode_flag = "--oaat"
        swept = (
            sorted(variables) if args.oaat == "all"
            else _split_csv(args.oaat, "--oaat")
        )
        return Sweep.one_at_a_time(swept, _parse_multipliers(args))
    args.mode_flag = "--random"
    pool = (
        _split_csv(args.variables, "--variables") if args.variables
        else sorted(variables)
    )
    return Sweep.random(
        pool, args.random, low=args.low, high=args.high,
        changes=args.changes, seed=args.seed,
    )


def _cmd_sweep(args):
    """Evaluate a scenario sweep; print top-k and (optionally) sensitivity."""
    import time

    from repro.scenarios.analysis import sensitivity, top_k

    try:
        payload = serialize.load_path(args.target)
    except serialize.SerializeError as error:
        raise SystemExit(f"{args.target}: {error}") from None
    if isinstance(payload, CompressedProvenance):
        polynomials, transform = payload.polynomials, payload.lift
    elif isinstance(payload, PolynomialSet):
        polynomials, transform = payload, None
    else:
        raise SystemExit(
            f"{args.target}: expected a PolynomialSet or CompressedProvenance, "
            f"got {type(payload).__name__}"
        )
    sweep = _build_sweep(args, polynomials.variables)
    print(f"sweep:       {sweep.kind}, {len(sweep)} scenarios")
    if sweep.kind == "random":
        # Reproducibility from the report alone: echo the seed even
        # when it was defaulted rather than passed explicitly.
        print(f"seed:        {args.seed}")
    print(f"target:      {len(polynomials)} polynomials"
          + (" (compressed artifact)" if transform else ""))
    resolved = polynomials.compiled().resolve_engine(
        args.engine, mean_changes=sweep.mean_changes()
    )
    print(f"engine:      {resolved}"
          + (" (auto)" if args.engine == "auto" else ""))
    if args.workers:
        print(f"workers:     {args.workers}")

    started = time.perf_counter()
    options = EvalOptions(engine=args.engine, workers=args.workers or None)
    ranked = top_k(
        polynomials, sweep, k=args.top_k, transform=transform,
        options=options,
    )
    elapsed = time.perf_counter() - started
    print(f"evaluated:   {len(sweep)} scenarios in {elapsed:.3f}s")
    print(f"top {len(ranked)} by total value:")
    for entry in ranked:
        mode = ""
        if transform is not None:
            exact = payload.supports(sweep[entry.index])
            mode = "  (exact)" if exact else "  (approximate)"
        print(f"  {entry.rank:>2}. {entry.name}  score={entry.score:g}{mode}")
    if args.sensitivity:
        report = sensitivity(
            polynomials, sweep, transform=transform, options=options,
        )
        print("sensitivity (mean |Δ| per changed variable):")
        for item in report[:args.top_k]:
            print(f"  {item.variable:<12} {item.mean_delta:g} "
                  f"(max {item.max_delta:g}, {item.scenarios} scenarios)")
    return 0


def _cmd_bench(args):
    """Run the perf regression benchmark (benchmarks/bench_regression.py).

    The bench lives with the experiment harness at the repository root
    rather than inside the installed package; it is loaded by path so
    ``python -m repro bench`` works from any checkout.
    """
    import importlib.util
    import os

    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    script = os.path.join(root, "benchmarks", "bench_regression.py")
    if not os.path.exists(script):
        raise SystemExit(
            "benchmarks/bench_regression.py not found — `repro bench` "
            "needs a source checkout (the benchmark harness is not "
            "part of the installed package)"
        )
    spec = importlib.util.spec_from_file_location("bench_regression", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    argv = []
    if args.smoke:
        argv.append("--smoke")
    if args.tiny:
        argv.append("--tiny")
    if args.repeat is not None:
        argv.extend(["--repeat", str(args.repeat)])
    if args.output:
        argv.extend(["--output", args.output])
    if args.quiet:
        argv.append("--quiet")
    if args.check:
        argv.extend(["--check", args.check])
    if args.tolerance is not None:
        argv.extend(["--tolerance", str(args.tolerance)])
    for stage in args.stage or ():
        argv.extend(["--stage", stage])
    return module.main(argv)


def _cmd_serve(args):
    """Run the what-if HTTP service until interrupted."""
    import asyncio

    from repro.service.app import start_service

    if args.deadline < 0:
        raise SystemExit("--deadline must be >= 0 (0 disables)")
    if args.max_pending < 0:
        raise SystemExit("--max-pending must be >= 0 (0 disables)")

    async def run():
        server = await start_service(
            args.spool_dir,
            host=args.host,
            port=args.port,
            capacity=args.cache_size,
            window=args.window,
            max_batch=args.max_batch,
            deadline=args.deadline if args.deadline > 0 else None,
            max_pending=args.max_pending if args.max_pending > 0 else None,
        )
        print(f"serving on http://{args.host}:{server.port} "
              f"(spool: {args.spool_dir}, cache: {args.cache_size}, "
              f"window: {args.window * 1000:g}ms, "
              f"deadline: {args.deadline:g}s, "
              f"max-pending: {args.max_pending})")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.aclose()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_decide(args):
    provenance = _load(args.provenance, PolynomialSet)
    forest = _load(args.forest, AbstractionForest)
    answer = exists_precise(
        provenance, forest, args.size, args.granularity
    )
    print("precise abstraction exists" if answer
          else "no precise abstraction")
    return 0 if answer else 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Provenance abstraction toolkit (SIGMOD'19 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    inspect = commands.add_parser("inspect", help="report provenance measures")
    inspect.add_argument("provenance")
    inspect.set_defaults(run=_cmd_inspect)

    compress = commands.add_parser("compress", help="select and apply a VVS")
    compress.add_argument("provenance")
    compress.add_argument("forest")
    compress.add_argument("--bound", type=int, required=True,
                          help="maximum number of monomials B")
    compress.add_argument("--algorithm", choices=registry.available(),
                          default="greedy",
                          help="a registered solver, or 'auto' to pick "
                               "one from the input (default: greedy)")
    compress.add_argument("--backend", choices=["object", "columnar", "auto"],
                          default="auto",
                          help="compression engine: object walks interned "
                               "tuples, columnar runs the vectorized "
                               "flat-array core, auto picks by input size "
                               "(identical cuts and losses; default: auto)")
    compress.add_argument("--output", help="write P↓S here (JSON)")
    compress.add_argument("--vvs-output", help="write the chosen cut here")
    compress.add_argument("--artifact",
                          help="write the full compression artifact here "
                               "(answerable with `repro ask`)")
    compress.add_argument("--format", choices=["json", "bin", "auto"],
                          default="auto",
                          help="artifact encoding: json (portable tagged "
                               "envelope), bin (zero-copy mmap container), "
                               "auto picks bin for .rpb/.bin paths "
                               "(default: auto; `ask`/`sweep` detect "
                               "either by magic bytes)")
    compress.set_defaults(run=_cmd_compress)

    extend = commands.add_parser(
        "extend",
        help="append provenance to an artifact incrementally",
    )
    extend.add_argument("artifact",
                        help="a compression artifact, JSON envelope or "
                             "binary .rpb container")
    extend.add_argument("--added", required=True,
                        help="polynomial_set JSON with the appended "
                             "(original, unabstracted) provenance")
    extend.add_argument("--provenance",
                        help="the full original provenance the artifact "
                             "was compressed from; enables the exact "
                             "recompress fallback when drift exceeds "
                             "the limit (without it, overflow fails)")
    extend.add_argument("--drift-limit", type=float, default=None,
                        dest="drift_limit",
                        help="bound-overshoot fraction tolerated before "
                             "falling back to recompression "
                             "(default 0.25)")
    extend.add_argument("--backend", choices=["object", "columnar", "auto"],
                        default="auto",
                        help="delta abstraction engine (default: auto)")
    extend.add_argument("--output",
                        help="write the extended artifact here")
    extend.add_argument("--format", choices=["json", "bin", "auto"],
                        default="auto",
                        help="artifact encoding for --output "
                             "(default: auto by suffix)")
    extend.set_defaults(run=_cmd_extend)

    ask = commands.add_parser(
        "ask", help="answer scenarios against a compression artifact"
    )
    ask.add_argument("artifact",
                     help="a compression artifact, JSON envelope or "
                          "binary .rpb container "
                          "(from `repro compress --artifact`)")
    ask.add_argument("--set", action="append", default=[],
                     metavar="VAR=VALUE",
                     help="ad-hoc scenario assignment (repeatable)")
    ask.add_argument("--name", default="adhoc",
                     help="name for the --set scenario (default: adhoc)")
    ask.add_argument("--suite",
                     help="JSON file with a scenario suite "
                          '({"scenarios": [{"name", "changes"}, ...]})')
    ask.set_defaults(run=_cmd_ask)

    sweep = commands.add_parser(
        "sweep",
        help="evaluate a scenario sweep (grid/oaat/random) with analytics",
    )
    sweep.add_argument("target",
                       help="a polynomial_set or compressed_provenance "
                            "JSON envelope")
    mode = sweep.add_mutually_exclusive_group(required=True)
    mode.add_argument("--grid", action="append", metavar="GROUP=V1,V2,...",
                      help="a grid group (repeatable); scenarios take the "
                           "cartesian product of --multipliers over groups")
    mode.add_argument("--oaat", metavar="V1,V2,...|all",
                      help="one-at-a-time sweep over these variables "
                           "('all' = every variable of the target)")
    mode.add_argument("--random", type=int, metavar="N",
                      help="N seeded Monte-Carlo scenarios")
    sweep.add_argument("--multipliers", metavar="M1,M2,...",
                       help="candidate multipliers for --grid/--oaat")
    sweep.add_argument("--variables", metavar="V1,V2,...",
                       help="alphabet for --random (default: all variables)")
    sweep.add_argument("--low", type=float, default=0.5,
                       help="--random multiplier range lower bound")
    sweep.add_argument("--high", type=float, default=1.5,
                       help="--random multiplier range upper bound")
    sweep.add_argument("--changes", type=int, default=None,
                       help="variables perturbed per --random scenario "
                            "(default: all)")
    sweep.add_argument("--seed", type=int, default=0,
                       help="--random seed (sweeps are reproducible)")
    sweep.add_argument("--engine", choices=["dense", "delta", "auto"],
                       default="auto",
                       help="batch evaluation engine: dense recomputes "
                            "every monomial per scenario, delta patches "
                            "only changed ones around a baseline, auto "
                            "picks by scenario density (bit-identical "
                            "answers; default: auto)")
    sweep.add_argument("--workers", type=int, default=None,
                       help="shard evaluation across N worker processes")
    sweep.add_argument("--top-k", type=int, default=10, dest="top_k",
                       help="how many top scenarios to report (default 10)")
    sweep.add_argument("--sensitivity", action="store_true",
                       help="also rank variables by induced output delta")
    sweep.set_defaults(run=_cmd_sweep)

    valuate = commands.add_parser("valuate", help="apply a what-if scenario")
    valuate.add_argument("provenance")
    valuate.add_argument("--set", action="append", default=[],
                         metavar="VAR=VALUE",
                         help="assign a value (repeatable; default 1.0)")
    valuate.set_defaults(run=_cmd_valuate)

    decide = commands.add_parser(
        "decide", help="Definition 10: does a precise VVS exist?"
    )
    decide.add_argument("provenance")
    decide.add_argument("forest")
    decide.add_argument("--size", type=int, required=True)
    decide.add_argument("--granularity", type=int, required=True)
    decide.set_defaults(run=_cmd_decide)

    serve = commands.add_parser(
        "serve", help="run the what-if HTTP service"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8317,
                       help="bind port; 0 picks a free one (default 8317)")
    serve.add_argument("--spool-dir", default="artifacts",
                       dest="spool_dir",
                       help="directory for the .rpb artifact spool "
                            "(default: ./artifacts)")
    serve.add_argument("--cache-size", type=int, default=8,
                       dest="cache_size",
                       help="resident (mmap-backed) artifacts kept warm; "
                            "older ones re-map on demand (default 8)")
    serve.add_argument("--window", type=float, default=0.002,
                       help="micro-batch coalescing window in seconds; "
                            "0 disables coalescing (default 0.002)")
    serve.add_argument("--max-batch", type=int, default=64,
                       dest="max_batch",
                       help="flush a coalesced batch early at this size "
                            "(default 64)")
    serve.add_argument("--deadline", type=float, default=30.0,
                       help="per-request deadline budget in seconds; "
                            "expired requests answer 504; 0 disables "
                            "(default 30)")
    serve.add_argument("--max-pending", type=int, default=256,
                       dest="max_pending",
                       help="bounded admission: past this many in-flight "
                            "requests new ones shed with 503 + "
                            "Retry-After; 0 disables (default 256)")
    serve.set_defaults(run=_cmd_serve)

    bench = commands.add_parser(
        "bench", help="time the hot paths; write BENCH_core.json"
    )
    scale = bench.add_mutually_exclusive_group()
    scale.add_argument("--smoke", action="store_true",
                       help="reduced scale, finishes in well under 30 s")
    scale.add_argument("--tiny", action="store_true",
                       help="smallest scale (used by the test suite)")
    bench.add_argument("--repeat", type=int, default=None,
                       help="timing repeats (default 3)")
    bench.add_argument("--output",
                       help="where to write the JSON "
                            "(default: BENCH_core.json at the repo root)")
    bench.add_argument("--quiet", action="store_true",
                       help="suppress progress output")
    bench.add_argument("--check", metavar="BASELINE",
                       help="compare speedup/error fields against this "
                            "baseline JSON and fail on regression")
    bench.add_argument("--tolerance", type=float, default=None,
                       help="allowed relative regression for --check "
                            "(default 0.35)")
    bench.add_argument("--stage", action="append", metavar="NAME",
                       help="run only this stage (repeatable; e.g. "
                            "--stage greedy --stage compress_scale). "
                            "Partial runs merge into the output's "
                            "existing results and --check gates only "
                            "the stages that ran")
    bench.set_defaults(run=_cmd_bench)

    lint = commands.add_parser(
        "lint", help="AST-based invariant checks (see INVARIANTS.md)"
    )
    lint_cli.configure_parser(lint)

    return parser


def main(argv=None):
    """Entry point: parse ``argv`` and dispatch to a subcommand."""
    args = build_parser().parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
