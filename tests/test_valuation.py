"""Unit tests for valuations and the group-uniform lifting invariant."""

import pytest

from repro.core.forest import AbstractionForest
from repro.core.parser import parse, parse_set
from repro.core.tree import AbstractionTree
from repro.core.valuation import NonUniformError, Valuation


@pytest.fixture
def forest():
    tree = AbstractionTree.from_nested(("G", [("H", ["a", "b"]), "c"]))
    return AbstractionForest([tree])


class TestBasics:
    def test_lookup_with_default(self):
        v = Valuation({"x": 0.8})
        assert v["x"] == 0.8
        assert v["y"] == 1.0

    def test_custom_default(self):
        v = Valuation({}, default=0.0)
        assert v["anything"] == 0.0

    def test_uniform_constructor(self):
        v = Valuation.uniform(["a", "b"], 1.2)
        assert v["a"] == v["b"] == 1.2

    def test_set_is_chainable(self):
        v = Valuation().set("x", 2.0).set("y", 3.0)
        assert v["x"] == 2.0 and v["y"] == 3.0

    def test_contains(self):
        v = Valuation({"x": 1.5})
        assert "x" in v and "y" not in v

    def test_evaluate_polynomial(self):
        v = Valuation({"x": 2.0})
        assert v.evaluate(parse("3*x + 1")) == 7.0

    def test_evaluate_set(self):
        v = Valuation({"x": 2.0})
        assert v.evaluate(parse_set(["x", "2*x"])) == [2.0, 4.0]

    def test_evaluate_type_error(self):
        with pytest.raises(TypeError):
            Valuation().evaluate("x + y")


class TestUniformityAndLifting:
    def test_is_uniform_when_group_agrees(self, forest):
        vvs = forest.vvs({"H", "c"})
        assert Valuation({"a": 0.8, "b": 0.8}).is_uniform_on(vvs)

    def test_not_uniform_when_group_disagrees(self, forest):
        vvs = forest.vvs({"H", "c"})
        assert not Valuation({"a": 0.8, "b": 0.9}).is_uniform_on(vvs)

    def test_unassigned_leaves_use_default(self, forest):
        vvs = forest.vvs({"H", "c"})
        # a=1.0 (explicit) and b -> default 1.0: uniform.
        assert Valuation({"a": 1.0}).is_uniform_on(vvs)
        assert not Valuation({"a": 0.8}).is_uniform_on(vvs)

    def test_lift_moves_value_to_metavariable(self, forest):
        vvs = forest.vvs({"H", "c"})
        lifted = Valuation({"a": 0.8, "b": 0.8, "c": 1.1}).lift(vvs)
        assert lifted["H"] == 0.8
        assert lifted["c"] == 1.1
        assert "a" not in lifted

    def test_lift_rejects_non_uniform(self, forest):
        vvs = forest.vvs({"H", "c"})
        with pytest.raises(NonUniformError):
            Valuation({"a": 0.8, "b": 0.9}).lift(vvs)

    def test_lift_of_default_values_stays_sparse(self, forest):
        vvs = forest.vvs({"H", "c"})
        lifted = Valuation({}).lift(vvs)
        assert "H" not in lifted.assignment

    def test_lifting_invariant_on_example(self, forest):
        """eval(P↓S, lift(σ)) == eval(P, σ) for group-uniform σ."""
        polys = parse_set(["2*a*x + 3*b*x + 5*c*y"])
        vvs = forest.vvs({"H", "c"})
        scenario = Valuation({"a": 0.7, "b": 0.7, "c": 1.3, "x": 2.0})
        abstracted = vvs.apply(polys)
        assert abstracted.evaluate(scenario.lift(vvs).assignment) == pytest.approx(
            polys.evaluate(scenario.assignment)
        )

    def test_root_group_lifting(self, forest):
        polys = parse_set(["a + b + c"])
        vvs = forest.vvs({"G"})
        scenario = Valuation.uniform(["a", "b", "c"], 0.5)
        abstracted = vvs.apply(polys)
        assert abstracted.evaluate(scenario.lift(vvs).assignment) == pytest.approx(
            polys.evaluate(scenario.assignment)
        )


class TestCoerce:
    def test_valuation_passthrough(self):
        v = Valuation({"m1": 0.8}, default=2.0)
        assert Valuation.coerce(v) is v

    def test_mapping(self):
        v = Valuation.coerce({"m1": 0.8}, default=0.5)
        assert v["m1"] == 0.8 and v.default == 0.5

    def test_scenario_like(self):
        class ScenarioLike:
            def valuation(self, default=1.0):
                return Valuation({"m1": 0.8}, default=default)

        v = Valuation.coerce(ScenarioLike(), default=0.5)
        assert v["m1"] == 0.8 and v.default == 0.5

    def test_valuation_shaped_duck_type(self):
        """Objects with assignment/default attributes keep working (the
        contract evaluate_batch documents)."""
        class Shaped:
            assignment = {"m1": 0.8}
            default = 3.0

        v = Valuation.coerce(Shaped())
        assert v["m1"] == 0.8 and v.default == 3.0
        assert v["unassigned"] == 3.0
