"""Declarative scenario sweeps: grids, knockouts, Monte-Carlo — lazily.

The paper's premise is *repeated* hypothetical evaluation: an analyst
re-valuates (abstracted) provenance under many alternative scenarios,
and compression pays off precisely because the scenario volume is high
(§1, Figure 10). Hand-writing :class:`~repro.scenarios.scenario.Scenario`
objects caps that volume at whatever fits in a Python list; a
:class:`Sweep` instead *describes* a family of scenarios and
materializes each one on demand:

* :meth:`Sweep.grid` — the cartesian product of per-group multiplier
  choices ("every combination of plan discount × month surcharge");
* :meth:`Sweep.one_at_a_time` — per-variable knockout/boost sweeps
  ("each supplier ±20%, one at a time");
* :meth:`Sweep.random` — seeded Monte-Carlo over multiplier ranges.

A sweep is an indexable, re-iterable, picklable sequence of scenarios:
``sweep[i]`` is a pure function of the spec, so a million-scenario
sweep occupies a few hundred bytes, two iterations yield identical
scenarios, and worker processes regenerate their shard from
``(sweep, start, stop)`` without the parent ever building a list of
dicts (see :mod:`repro.scenarios.parallel`). ``Sweep.random`` derives
an independent RNG per index from SHA-256 (:func:`repro.util.rng`), so
scenario ``i`` is the same whatever order, process or chunk produces
it.
"""

from __future__ import annotations

from repro.scenarios.scenario import Scenario, ScenarioSuite
from repro.util.rng import derive_rng

__all__ = ["Sweep"]

#: Default chunk size for :meth:`Sweep.chunks` and the parallel engine.
DEFAULT_CHUNK_SIZE = 1024


def _format_multiplier(value):
    """Compact scenario-name rendering of a multiplier."""
    text = f"{float(value):g}"
    return text


class Sweep:
    """A lazy, indexable family of scenarios (see the module docstring).

    Build one with :meth:`grid`, :meth:`one_at_a_time` or
    :meth:`random`; consume it anywhere a scenario iterable is accepted
    (:func:`~repro.scenarios.analysis.evaluate_scenarios`,
    :func:`~repro.scenarios.analysis.top_k`,
    :meth:`ProvenanceSession.ask_many
    <repro.api.session.ProvenanceSession.ask_many>`, the CLI ``sweep``
    subcommand).

    >>> sweep = Sweep.grid({"g": ["a", "b"]}, [0.8, 1.2])
    >>> len(sweep)
    2
    >>> [s.changes for s in sweep]
    [{'a': 0.8, 'b': 0.8}, {'a': 1.2, 'b': 1.2}]
    """

    __slots__ = ("kind", "name", "_spec", "_length")

    def __init__(self, kind, name, spec, length):
        self.kind = str(kind)
        self.name = str(name)
        self._spec = spec
        self._length = int(length)

    # ------------------------------------------------------------- factories

    @classmethod
    def grid(cls, var_groups, multipliers, name="grid"):
        """The cartesian product of per-group multiplier choices.

        :param var_groups: which variables move together — a mapping
            ``{group_name: [variables]}``, an iterable of variable
            lists (auto-named ``g0, g1, …``), or an iterable of single
            variable names (each its own group).
        :param multipliers: the candidate multipliers — one iterable
            applied to every group, or a ``{group_name: [values]}``
            mapping / aligned list of iterables for per-group choices.
        :returns: a sweep of ``∏ len(multipliers_g)`` scenarios; the
            scenario at mixed-radix index ``i`` assigns each group's
            chosen multiplier to all of the group's variables.

        >>> sweep = Sweep.grid({"p": ["a"], "q": ["b"]}, [0.5, 2.0])
        >>> len(sweep)
        4
        >>> sweep[3].changes
        {'a': 2.0, 'b': 2.0}
        """
        if hasattr(var_groups, "items"):
            groups = [
                (str(label), tuple(str(v) for v in variables))
                for label, variables in var_groups.items()
            ]
        else:
            groups = []
            for index, entry in enumerate(var_groups):
                if isinstance(entry, str):
                    groups.append((entry, (entry,)))
                else:
                    variables = tuple(str(v) for v in entry)
                    groups.append((f"g{index}", variables))
        if not groups:
            raise ValueError("grid sweep needs at least one variable group")
        for label, variables in groups:
            if not variables:
                raise ValueError(f"group {label!r} has no variables")

        if hasattr(multipliers, "items"):
            per_group = []
            for label, _ in groups:
                if label not in multipliers:
                    raise ValueError(f"no multipliers for group {label!r}")
                per_group.append(tuple(float(m) for m in multipliers[label]))
        else:
            choices = list(multipliers)
            if choices and not isinstance(choices[0], (int, float)):
                if len(choices) != len(groups):
                    raise ValueError(
                        f"{len(groups)} groups but {len(choices)} "
                        "multiplier lists"
                    )
                per_group = [tuple(float(m) for m in c) for c in choices]
            else:
                shared = tuple(float(m) for m in choices)
                per_group = [shared for _ in groups]
        length = 1
        for label_choices in per_group:
            if not label_choices:
                raise ValueError("every group needs at least one multiplier")
            length *= len(label_choices)
        spec = (tuple(groups), tuple(per_group))
        return cls("grid", name, spec, length)

    @classmethod
    def one_at_a_time(cls, variables, multipliers, baseline=None, name="oaat"):
        """Per-variable knockout/boost sweeps: move one variable at a time.

        :param variables: the variables to sweep.
        :param multipliers: the values each variable is tried at (e.g.
            ``[0.0]`` for knockouts, ``[0.8, 1.2]`` for ±20%).
        :param baseline: optional changes applied under every scenario
            (a :class:`Scenario` or a plain mapping); the swept
            variable's multiplier replaces any baseline change for that
            variable.
        :returns: a sweep of ``len(variables) · len(multipliers)``
            scenarios ordered variable-major.

        >>> sweep = Sweep.one_at_a_time(["a", "b"], [0.0])
        >>> [s.changes for s in sweep]
        [{'a': 0.0}, {'b': 0.0}]
        """
        swept = tuple(str(v) for v in variables)
        values = tuple(float(m) for m in multipliers)
        if not swept:
            raise ValueError("one_at_a_time sweep needs at least one variable")
        if not values:
            raise ValueError("one_at_a_time sweep needs at least one multiplier")
        base_changes = getattr(baseline, "changes", baseline)
        base = (
            tuple(sorted((str(v), float(m)) for v, m in base_changes.items()))
            if base_changes
            else ()
        )
        spec = (swept, values, base)
        return cls("oaat", name, spec, len(swept) * len(values))

    @classmethod
    def random(cls, variables, count, low=0.5, high=1.5, changes=None,
               seed=0, name="random"):
        """Seeded Monte-Carlo scenarios over a multiplier range.

        :param variables: the alphabet scenarios draw from.
        :param count: how many scenarios.
        :param low: lower bound of the uniform multiplier range.
        :param high: upper bound of the uniform multiplier range.
        :param changes: how many variables each scenario perturbs
            (default: all of them).
        :param seed: the sweep's seed. Scenario ``i`` is generated from
            an RNG derived from ``(seed, name, i)`` alone, so the sweep
            is reproducible across runs, processes and iteration
            orders — chunked parallel evaluation sees exactly the
            scenarios a serial pass would.

        >>> a = Sweep.random(["x", "y"], 3, seed=7)
        >>> b = Sweep.random(["x", "y"], 3, seed=7)
        >>> [s.changes for s in a] == [s.changes for s in b]
        True
        """
        pool = tuple(str(v) for v in variables)
        if not pool:
            raise ValueError("random sweep needs at least one variable")
        count = int(count)
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if changes is None:
            changes = len(pool)
        changes = int(changes)
        if not 1 <= changes <= len(pool):
            raise ValueError(
                f"changes must be in [1, {len(pool)}], got {changes}"
            )
        low, high = float(low), float(high)
        if high < low:
            raise ValueError(f"empty multiplier range [{low}, {high}]")
        spec = (pool, low, high, changes, int(seed))
        return cls("random", name, spec, count)

    # ----------------------------------------------------------- realization

    def scenario(self, index):
        """Materialize the scenario at ``index`` (a pure function).

        >>> Sweep.one_at_a_time(["a", "b"], [0.5]).scenario(1).changes
        {'b': 0.5}
        """
        index = self._check_index(index)
        if self.kind == "grid":
            return self._grid_scenario(index)
        if self.kind == "oaat":
            return self._oaat_scenario(index)
        return self._random_scenario(index)

    def changes_at(self, index):
        """The bare changes mapping of the scenario at ``index``.

        The sweep's native *sparse-delta* form: exactly
        ``scenario(index).changes``, but without constructing a
        :class:`Scenario` or formatting its name — what the delta
        evaluation engine consumes (scenario values do not depend on
        names). Workers regenerating shards for
        ``engine="delta"`` call this per index, so only the sweep spec
        and ``(start, stop)`` ranges ever cross the process boundary.

        >>> Sweep.one_at_a_time(["a", "b"], [0.5]).changes_at(1)
        {'b': 0.5}
        """
        index = self._check_index(index)
        if self.kind == "grid":
            return self._grid_changes(self._grid_choices(index))
        if self.kind == "oaat":
            return self._oaat_changes(index)
        return self._random_changes(index)

    def iter_changes(self, start=0, stop=None):
        """Generate the ``[start, stop)`` changes mappings lazily.

        The shard-shaped counterpart of :meth:`materialize` for
        evaluation paths that never need scenario names.
        """
        if stop is None:
            stop = self._length
        for index in range(start, stop):
            yield self.changes_at(index)

    def mean_changes(self):
        """Mean changed-variable count per scenario (a spec property).

        Sweeps know which axes vary, so the density that drives the
        ``engine="auto"`` dense-vs-delta choice (see
        :func:`repro.core.batch.choose_engine`) is computed from the
        spec in O(spec) — no scenario is materialized.

        >>> Sweep.one_at_a_time(["a", "b", "c"], [0.5]).mean_changes()
        1.0
        """
        if self.kind == "grid":
            groups, _ = self._spec
            return float(len({
                variable for _, variables in groups for variable in variables
            }))
        if self.kind == "oaat":
            swept, _, base = self._spec
            base_variables = {variable for variable, _ in base}
            fresh = sum(
                1 for variable in swept if variable not in base_variables
            )
            return len(base_variables) + fresh / len(swept)
        _, _, _, changes, _ = self._spec
        return float(changes)

    def _check_index(self, index):
        index = int(index)
        if not 0 <= index < self._length:
            raise IndexError(
                f"sweep index {index} out of range [0, {self._length})"
            )
        return index

    def _grid_choices(self, index):
        """Mixed-radix decode, last group fastest (itertools.product order)."""
        _, per_group = self._spec
        chosen = [None] * len(per_group)
        remaining = index
        for position in range(len(per_group) - 1, -1, -1):
            choices = per_group[position]
            chosen[position] = choices[remaining % len(choices)]
            remaining //= len(choices)
        return chosen

    def _grid_changes(self, chosen):
        groups, _ = self._spec
        changes = {}
        for (_, variables), choice in zip(groups, chosen, strict=True):
            for variable in variables:
                changes[variable] = choice
        return changes

    def _grid_scenario(self, index):
        groups, _ = self._spec
        chosen = self._grid_choices(index)
        labels = [
            f"{label}={_format_multiplier(choice)}"
            for (label, _), choice in zip(groups, chosen, strict=True)
        ]
        return Scenario(
            f"{self.name}[{','.join(labels)}]", self._grid_changes(chosen)
        )

    def _oaat_changes(self, index):
        swept, values, base = self._spec
        changes = dict(base)
        changes[swept[index // len(values)]] = values[index % len(values)]
        return changes

    def _oaat_scenario(self, index):
        swept, values, _ = self._spec
        variable = swept[index // len(values)]
        value = values[index % len(values)]
        return Scenario(
            f"{self.name}[{variable}={_format_multiplier(value)}]",
            self._oaat_changes(index),
        )

    def _random_changes(self, index):
        pool, low, high, changes, seed = self._spec
        rng = derive_rng(seed, f"sweep.random:{self.name}:{index}")
        if changes == len(pool):
            chosen = pool
        else:
            chosen = rng.sample(pool, changes)
        return {variable: rng.uniform(low, high) for variable in chosen}

    def _random_scenario(self, index):
        return Scenario(f"{self.name}[{index}]", self._random_changes(index))

    # ------------------------------------------------------------- sequence

    def __len__(self):
        return self._length

    def __getitem__(self, index):
        """``sweep[i]`` — the scenario at ``i`` (negative indexes work)."""
        if isinstance(index, slice):
            return [self.scenario(i) for i in range(*index.indices(self._length))]
        if index < 0:
            index += self._length
        return self.scenario(index)

    def __iter__(self):
        """Generate the scenarios in index order (re-iterable)."""
        for index in range(self._length):
            yield self.scenario(index)

    def chunks(self, size=DEFAULT_CHUNK_SIZE):
        """Yield ``(start, stop)`` index ranges covering the sweep.

        >>> list(Sweep.random(["x"], 5, seed=1).chunks(2))
        [(0, 2), (2, 4), (4, 5)]
        """
        if size < 1:
            raise ValueError(f"chunk size must be >= 1, got {size}")
        for start in range(0, self._length, size):
            yield start, min(start + size, self._length)

    def materialize(self, start=0, stop=None):
        """The scenarios of ``[start, stop)`` as a list (a shard)."""
        if stop is None:
            stop = self._length
        return [self.scenario(i) for i in range(start, stop)]

    def suite(self):
        """An eager :class:`~repro.scenarios.scenario.ScenarioSuite`.

        Materializes every scenario — meant for sweeps small enough to
        hold; large sweeps should be consumed lazily (iteration,
        :func:`~repro.scenarios.analysis.evaluate_scenarios`,
        :func:`~repro.scenarios.analysis.top_k`).
        """
        return ScenarioSuite(self)

    # -------------------------------------------------------------- pickling

    def __getstate__(self):
        """Plain-tuple state (sweeps ship to worker processes)."""
        return (self.kind, self.name, self._spec, self._length)

    def __setstate__(self, state):
        """Restore from :meth:`__getstate__`'s tuple."""
        self.kind, self.name, self._spec, self._length = state

    def __repr__(self):
        return f"Sweep({self.kind!r}, {self.name!r}, {self._length} scenarios)"
