"""Algorithm 2 — greedy valid variable selection for forests (§3.2).

The multi-tree optimization problem is NP-hard (Proposition 11 /
Appendix A), so the paper proposes a greedy heuristic: start from the
identity cut (all leaves), and repeatedly replace a set of sibling nodes
by their parent, always choosing the *candidate* parent (a node all of
whose children are currently chosen) that entails the minimal variable
loss, until the provenance is small enough or no candidate remains.

A subtlety the paper's Example 15 exposes: with multiple trees the
cumulative monomial loss is **not** the sum of per-tree losses — merges
compose across trees (after months collapse into a quarter, the two
business plans sit in *one* monomial pair instead of two). The
implementation therefore maintains a *working state*: the polynomials
abstracted by the current cut, with an inverted variable→monomial index,
and applies each chosen candidate incrementally. This also matches the
paper's complexity claim of ``O(n · |P|_M)`` work per candidate
application.

Tie-breaking: candidates are compared by (minimal incremental VL,
maximal incremental ML, label) — the ML tie-break reproduces Example 15,
where ``q1`` (VL 1, ML 7) is preferred over ``SB`` (VL 1, ML 2).

Candidate ranking is *incremental*. Two structural facts make ranks
cheap to maintain exactly (for compatible inputs, §2.2):

* a candidate's ΔVL is **constant** from the moment it becomes a
  candidate: merges elsewhere rewrite monomials but never erase a
  selected variable's last occurrence (a rewritten monomial keeps every
  non-member variable, and a collision survivor holds the same ones);
* a candidate's ΔML equals ``n − d``, where ``n`` counts the monomials
  holding one of its children and ``d`` counts the distinct *collision
  classes* ``(polynomial, exponent, residue)`` — two monomials merge
  under the candidate exactly when the member variable carries the same
  exponent and the rest of the key (the residue) is identical. Both
  are plain counters, updated in O(1) per monomial rewrite.

:func:`greedy_vvs` keeps ``(ΔVL, −ΔML, label)`` ranks in a priority
queue, updates the counters of exactly the candidates whose children
occur in the monomials a merge touches, and re-ranks those — the same
cuts as the full per-round rescan, without re-simulating any candidate.
The literal rescan survives as :func:`_reference_greedy`; property
tests assert the two produce byte-identical results, and
``benchmarks/bench_regression.py`` measures the gap.
"""

from __future__ import annotations

import heapq

from repro.core.abstraction import ensure_set
from repro.core.forest import AbstractionForest, ValidVariableSet
from repro.core.interning import VARIABLES
from repro.core.tree import AbstractionTree
from repro.algorithms.result import AbstractionResult

__all__ = ["greedy_vvs", "GreedyStep"]


class GreedyStep:
    """One iteration of the greedy loop (kept in ``result.trace``)."""

    __slots__ = ("chosen", "delta_ml", "delta_vl", "cumulative_ml", "cumulative_vl")

    def __init__(self, chosen, delta_ml, delta_vl, cumulative_ml, cumulative_vl):
        self.chosen = chosen
        self.delta_ml = delta_ml
        self.delta_vl = delta_vl
        self.cumulative_ml = cumulative_ml
        self.cumulative_vl = cumulative_vl

    def __repr__(self):
        return (
            f"GreedyStep({self.chosen!r}, dML={self.delta_ml}, "
            f"dVL={self.delta_vl}, ML={self.cumulative_ml}, VL={self.cumulative_vl})"
        )


class _WorkingState:
    """The polynomials under the current cut, updatable in place.

    * ``polys`` — one ``set`` of monomial keys per polynomial, where a
      key is a tuple of ``(var_id, exponent)`` pairs (sorted by interned
      id) with leaf variables replaced by their current group
      representative;
    * ``index`` — representative/variable id → set of ``(poly, key)``
      pairs for every monomial the variable occurs in.

    Merging sibling groups into a parent rewrites exactly the indexed
    monomials; identical rewrites collapse, which is the monomial loss.
    """

    __slots__ = ("polys", "index")

    def __init__(self, polynomials):
        self.polys = []
        self.index = {}
        for poly_number, polynomial in enumerate(polynomials):
            keys = set()
            for monomial in polynomial.monomials:
                key = monomial.key
                keys.add(key)
                for vid, _ in key:
                    self.index.setdefault(vid, set()).add((poly_number, key))
            self.polys.append(keys)

    @property
    def size(self):
        """``|P↓S|_M`` under the current cut."""
        return sum(len(keys) for keys in self.polys)

    @property
    def granularity(self):
        """``|P↓S|_V`` under the current cut."""
        return sum(1 for entries in self.index.values() if entries)

    def present(self, variable):
        """Does ``variable`` occur in the current abstracted polynomials?"""
        vid = VARIABLES.lookup(variable)
        return vid is not None and bool(self.index.get(vid))

    def present_id(self, vid):
        """Id-addressed :meth:`present` (the greedy's hot path)."""
        return bool(self.index.get(vid))

    def _rewrites(self, group_ids, parent_id):
        """Yield ``(poly, old_key, new_key)`` for merging the group.

        Forest compatibility guarantees a monomial holds at most one
        variable of the tree, hence exactly one member of the group.
        """
        members = set(group_ids)
        seen = set()
        for member in group_ids:
            for entry in self.index.get(member, ()):
                if entry in seen:
                    continue
                seen.add(entry)
                poly_number, key = entry
                new_key = tuple(
                    sorted(
                        (parent_id if vid in members else vid, exp)
                        for vid, exp in key
                    )
                )
                yield poly_number, key, new_key

    def simulate_merge(self, group_ids, parent_id):
        """Incremental ML of merging the group (no mutation)."""
        per_poly_old = {}
        per_poly_new = {}
        for poly_number, _, new_key in self._rewrites(group_ids, parent_id):
            per_poly_old[poly_number] = per_poly_old.get(poly_number, 0) + 1
            per_poly_new.setdefault(poly_number, set()).add(new_key)
        loss = 0
        for poly_number, count in per_poly_old.items():
            survivors = per_poly_new[poly_number]
            # A rewrite may also collide with an untouched monomial that
            # already equals the new key (possible only if parent == an
            # existing variable, which compatibility rules out) — so the
            # survivor count is just the distinct rewritten keys.
            loss += count - len(survivors)
        return loss

    def apply_merge(self, group_ids, parent_id):
        """Merge the group into the parent; return ``(loss, rewrites)``.

        ``rewrites`` lists ``(poly, old_key, new_key, survived)`` for
        every touched monomial — ``survived`` is False when the rewrite
        collided with an already-rewritten sibling (the monomial loss).
        The caller can replay the list to update derived structures
        (the greedy's candidate rank counters).
        """
        rewrites = []
        loss = 0
        for poly_number, old_key, new_key in list(
            self._rewrites(group_ids, parent_id)
        ):
            keys = self.polys[poly_number]
            keys.discard(old_key)
            if new_key in keys:
                loss += 1
                survived = False
            else:
                keys.add(new_key)
                survived = True
            rewrites.append((poly_number, old_key, new_key, survived))
            # Re-index every variable of the rewritten monomial.
            for vid, _ in old_key:
                entries = self.index.get(vid)
                if entries is not None:
                    entries.discard((poly_number, old_key))
            for vid, _ in new_key:
                self.index.setdefault(vid, set()).add((poly_number, new_key))
        for member in set(group_ids):
            if member != parent_id:
                self.index.pop(member, None)
        return loss, rewrites


class _Candidate:
    """A candidate parent with its incrementally-maintained rank.

    ``delta_vl`` is fixed at creation (see the module docstring);
    ``delta_ml == n - d`` is kept exact by counting the collision
    classes of the monomials holding one of the candidate's children:
    ``counts`` maps ``(poly, exponent, residue)`` — the member's
    exponent and the key with the member's pair removed — to its
    multiplicity, ``n`` sums the multiplicities and ``d`` counts the
    distinct classes.
    """

    __slots__ = ("label", "children_ids", "delta_vl", "n", "d", "counts")

    def __init__(self, label, children_ids, delta_vl):
        self.label = label
        self.children_ids = children_ids
        self.delta_vl = delta_vl
        self.n = 0
        self.d = 0
        self.counts = {}

    def rank(self):
        return (self.delta_vl, self.d - self.n, self.label)

    def add_entry(self, poly_number, key, member):
        self._bump(poly_number, key, member, 1)

    def remove_entry(self, poly_number, key, member):
        self._bump(poly_number, key, member, -1)

    def _bump(self, poly_number, key, member, sign):
        for position, (vid, exp) in enumerate(key):
            if vid == member:
                cls = (poly_number, exp, key[:position] + key[position + 1:])
                break
        else:  # pragma: no cover - index invariant: member occurs in key
            raise AssertionError("indexed monomial lost its member variable")
        counts = self.counts
        if sign > 0:
            updated = counts.get(cls, 0) + 1
            counts[cls] = updated
            self.n += 1
            if updated == 1:
                self.d += 1
        else:
            updated = counts[cls] - 1
            if updated:
                counts[cls] = updated
            else:
                del counts[cls]
                self.d -= 1
            self.n -= 1


def _prepare(polynomials, forest, bound, clean):
    """Shared setup of both greedy variants."""
    polynomials = ensure_set(polynomials)
    if isinstance(forest, AbstractionTree):
        forest = AbstractionForest([forest])
    if bound < 1:
        raise ValueError(f"bound must be >= 1, got {bound}")
    if clean:
        forest = forest.clean(polynomials)

    state = _WorkingState(polynomials)
    selected = set(forest.leaf_labels)
    trees = {}
    candidates = set()
    for tree in forest:
        for label in tree.labels:
            trees[label] = tree
            node = tree.node(label)
            if node.children and all(
                child.label in selected for child in node.children
            ):
                candidates.add(label)
    return polynomials, forest, state, selected, trees, candidates


def _finish(polynomials, forest, state, selected, trace):
    vvs = ValidVariableSet(forest, frozenset(selected), _validated=True)
    size = state.size
    granularity = state.granularity
    return AbstractionResult(
        vvs=vvs,
        monomial_loss=polynomials.num_monomials - size,
        variable_loss=polynomials.num_variables - granularity,
        abstracted_size=size,
        abstracted_granularity=granularity,
        trace=trace,
    )


def greedy_vvs(polynomials, forest, bound, *, clean=True, ml_tie_break=True):
    """Greedy multi-tree abstraction (Algorithm 2), incremental ranking.

    :param polynomials: a :class:`Polynomial` or :class:`PolynomialSet`.
    :param forest: an :class:`AbstractionForest` (a single
        :class:`AbstractionTree` is accepted and wrapped).
    :param bound: desired maximum number of monomials ``B``.
    :param clean: apply footnote 1 before running.
    :param ml_tie_break: break VL ties by each tied candidate's monomial
        loss, preferring the largest (the Example 15 behaviour).
        Disabling it breaks ties by label only — no ML bookkeeping at
        all, possibly more rounds and worse cuts; the ablation benchmark
        quantifies the trade.

    Unlike :func:`repro.algorithms.optimal.optimal_vvs`, the greedy
    never raises for an unreachable bound — it abstracts as far as the
    forest allows and returns the final cut (check
    ``result.abstracted_size`` against your bound), mirroring the
    paper's "while ML(S) < k and C ≠ ∅" loop, which simply terminates
    when candidates run out.

    Candidate ranks are maintained incrementally (see the module
    docstring): applying a merge updates the collision counters of
    exactly the candidates whose children occur in the rewritten
    monomials, each in O(1) per monomial. The selected cuts, traces and
    losses are byte-identical to :func:`_reference_greedy` on compatible
    inputs (§2.2 — at most one variable of a tree per monomial).

    >>> from repro.core.parser import parse_set
    >>> polys = parse_set(["2*b1*m1 + 3*b1*m3 + 4*b2*m1 + 5*b2*m3"])
    >>> tree = AbstractionTree.from_nested(("SB", ["b1", "b2"]))
    >>> result = greedy_vvs(polys, tree, bound=2)
    >>> sorted(result.vvs.labels), result.abstracted_size
    (['SB'], 2)
    """
    polynomials, forest, state, selected, trees, initial = _prepare(
        polynomials, forest, bound, clean
    )
    k = polynomials.num_monomials - bound
    trace = []
    intern = VARIABLES.intern

    candidates = {}  # label -> _Candidate
    watchers = {}  # child var id -> the (unique) _Candidate watching it
    ranks = {}  # label -> rank tuple currently in force
    heap = []

    def add_candidate(label):
        ids = tuple(intern(child) for child in trees[label].children(label))
        present = sum(1 for vid in ids if state.present_id(vid))
        candidate = _Candidate(label, ids, max(0, present - 1))
        if ml_tie_break:
            for vid in ids:
                for poly_number, key in state.index.get(vid, ()):
                    candidate.add_entry(poly_number, key, vid)
        for vid in ids:
            watchers[vid] = candidate
        candidates[label] = candidate
        rank = candidate.rank()
        ranks[label] = rank
        heapq.heappush(heap, rank)

    for label in sorted(initial):
        add_candidate(label)

    cumulative_ml = 0
    cumulative_vl = 0
    while cumulative_ml < k and candidates:
        # Pop until the top entry is in force (stale entries are left
        # behind whenever a touched candidate was re-ranked).
        while True:
            rank = heapq.heappop(heap)
            label = rank[2]
            if ranks.get(label) == rank and label in candidates:
                break
        delta_vl, _, chosen = rank

        candidate = candidates.pop(chosen)
        ranks.pop(chosen, None)
        for vid in candidate.children_ids:
            watchers.pop(vid, None)
        loss, rewrites = state.apply_merge(
            candidate.children_ids, intern(chosen)
        )

        # Update the collision counters of every candidate watching a
        # variable of a touched monomial (at most one per tree per
        # monomial — the parent of the variable the monomial holds).
        touched = set()
        if ml_tie_break:
            for poly_number, old_key, new_key, survived in rewrites:
                for vid, _ in old_key:
                    watcher = watchers.get(vid)
                    if watcher is not None:
                        watcher.remove_entry(poly_number, old_key, vid)
                        touched.add(watcher)
                if survived:
                    for vid, _ in new_key:
                        watcher = watchers.get(vid)
                        if watcher is not None:
                            watcher.add_entry(poly_number, new_key, vid)
                            touched.add(watcher)

        children = trees[chosen].children(chosen)
        selected.difference_update(children)
        selected.add(chosen)
        cumulative_ml += loss
        cumulative_vl += delta_vl
        trace.append(
            GreedyStep(chosen, loss, delta_vl, cumulative_ml, cumulative_vl)
        )

        for watcher in touched:
            rank = watcher.rank()
            if rank != ranks[watcher.label]:
                ranks[watcher.label] = rank
                heapq.heappush(heap, rank)

        tree = trees[chosen]
        parent = tree.parent(chosen)
        if parent is not None and all(
            child in selected for child in tree.children(parent)
        ):
            add_candidate(parent)

    return _finish(polynomials, forest, state, selected, trace)


def _reference_greedy(polynomials, forest, bound, *, clean=True, ml_tie_break=True):
    """The per-round full-rescan greedy (Algorithm 2 as first written).

    Re-ranks and re-simulates *every* candidate each round —
    O(rounds · |C| · |P|_M). Kept as an executable specification:
    property tests assert :func:`greedy_vvs` matches it exactly, and the
    regression benchmark reports the speedup of the incremental version.
    """
    polynomials, forest, state, selected, trees, candidates = _prepare(
        polynomials, forest, bound, clean
    )
    k = polynomials.num_monomials - bound
    trace = []
    intern = VARIABLES.intern

    cumulative_ml = 0
    cumulative_vl = 0
    while cumulative_ml < k and candidates:
        # rank = (delta_vl, -delta_ml, label): minimal variable loss
        # first, then maximal monomial loss (Example 15), then label for
        # determinism ("ties are broken arbitrarily" in the paper).
        best = None
        for label in sorted(candidates):
            children = trees[label].children(label)
            child_ids = [intern(child) for child in children]
            present = sum(1 for vid in child_ids if state.present_id(vid))
            delta_vl = max(0, present - 1)
            if best is not None and delta_vl > best[0]:
                continue
            if ml_tie_break:
                delta_ml = state.simulate_merge(child_ids, intern(label))
            else:
                delta_ml = 0
            rank = (delta_vl, -delta_ml, label)
            if best is None or rank < best:
                best = rank
        delta_vl, _, chosen = best
        tree = trees[chosen]
        children = tree.children(chosen)
        loss, _ = state.apply_merge(
            [intern(child) for child in children], intern(chosen)
        )
        candidates.discard(chosen)
        selected.difference_update(children)
        selected.add(chosen)
        cumulative_ml += loss
        cumulative_vl += delta_vl
        trace.append(
            GreedyStep(chosen, loss, delta_vl, cumulative_ml, cumulative_vl)
        )
        parent = tree.parent(chosen)
        if parent is not None and all(
            child in selected for child in tree.children(parent)
        ):
            candidates.add(parent)

    return _finish(polynomials, forest, state, selected, trace)
