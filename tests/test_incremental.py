"""Incremental artifact maintenance: extend/refresh and MutationResult.

The contract under test (see :mod:`repro.api.mutation`): extending an
artifact repairs every derived structure in place — columnar CSR
arrays, the compiled batch matrix, the delta-engine index — and the
result is *bit-for-bit identical* to abstracting the full extended
provenance under the same cut from scratch. The Hypothesis suite pins
that across float, Fraction and big-int coefficient families; the
deterministic tests cover the drift-triggered recompress fallback, the
copy-on-extend route for mmap-backed artifacts, revision plumbing
through both serialization formats, and the unified MutationResult
shape (including its deprecated tuple access).
"""

import warnings
from fractions import Fraction

import numpy
import pytest
from hypothesis import given, settings, strategies as st

import repro.api.mutation as mutation
from repro.api.artifact import CompressedProvenance
from repro.api.mutation import MutationResult, extend_artifact
from repro.api.session import ProvenanceSession
from repro.core import serialize
from repro.core.abstraction import abstract
from repro.core.forest import AbstractionForest, CompatibilityError
from repro.core.polynomial import Monomial, Polynomial, PolynomialSet
from repro.core.tree import AbstractionTree
from repro.errors import CompressionError
from repro.options import EvalOptions

# ---------------------------------------------------------------------------
# Fixtures and strategies
# ---------------------------------------------------------------------------

B_LEAVES = [f"b{i}" for i in range(1, 5)]
M_LEAVES = [f"m{i}" for i in range(1, 4)]
FREE = [f"f{i}" for i in range(3)]
NEW = [f"n{i}" for i in range(3)]


def make_forest():
    return AbstractionForest([
        AbstractionTree.from_nested(
            ("SB", [("SB1", B_LEAVES[:2]), ("SB2", B_LEAVES[2:])])
        ),
        AbstractionTree.from_nested(("SM", M_LEAVES)),
    ])


def anchor_polynomial():
    """One polynomial mentioning every leaf, so the forest stays clean-
    compatible whatever Hypothesis draws for the rest."""
    terms = {Monomial([(b, 1), (m, 1)]): 1
             for b, m in zip(B_LEAVES, M_LEAVES * 2)}
    return Polynomial(terms)


float_coeffs = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6,
).filter(lambda value: value != 0)
fraction_coeffs = st.fractions(
    min_value=-1000, max_value=1000, max_denominator=997,
).filter(lambda value: value != 0)
bigint_coeffs = st.integers(
    min_value=-(10 ** 30), max_value=10 ** 30,
).filter(lambda value: value != 0)

COEFF_FAMILIES = {
    "float": float_coeffs,
    "fraction": fraction_coeffs,
    "bigint": bigint_coeffs,
}


@st.composite
def compatible_monomials(draw, extra_pool):
    """At most one leaf per tree (the VVS compatibility constraint),
    plus free/new variables."""
    pairs = []
    b = draw(st.sampled_from(B_LEAVES + [None]))
    if b is not None:
        pairs.append((b, draw(st.integers(1, 3))))
    m = draw(st.sampled_from(M_LEAVES + [None]))
    if m is not None:
        pairs.append((m, draw(st.integers(1, 3))))
    for name, exp in draw(
        st.dictionaries(st.sampled_from(extra_pool), st.integers(1, 2),
                        max_size=2)
    ).items():
        pairs.append((name, exp))
    return Monomial(pairs)


@st.composite
def polynomial_sets(draw, coeffs, extra_pool, min_polys=0, max_polys=3):
    polys = draw(st.lists(
        st.dictionaries(compatible_monomials(extra_pool), coeffs,
                        min_size=1, max_size=5),
        min_size=min_polys, max_size=max_polys,
    ))
    return PolynomialSet(Polynomial(terms) for terms in polys)


def compress_base(base):
    session = ProvenanceSession(base, make_forest())
    bound = max(1, base.num_monomials // 2)
    artifact = session.compress(bound, algorithm="greedy",
                                options=EvalOptions(backend="object"))
    return session, artifact


SCENARIOS = [
    {"m1": 0.5},
    {"b1": 0.0, "m2": 2.0},
    {"b1": 0.5, "b2": 0.5, "b3": 0.5, "b4": 0.5},  # uniform on SB groups
    {"f0": 3.0, "n0": 0.25},
]


def answers_of(artifact):
    return [answer.values for answer in artifact.ask_many(SCENARIOS)]


def rebuilt_same_cut(artifact, originals):
    """A from-scratch artifact over ``originals`` with the *same* cut —
    the reference the repaired artifact must match bit-for-bit."""
    return CompressedProvenance(
        abstract(originals, artifact.vvs, backend="object"),
        artifact.forest,
        artifact.vvs,
        algorithm=artifact.algorithm,
        bound=artifact.bound,
        original_size=originals.num_monomials,
        original_granularity=originals.num_variables,
        monomial_loss=artifact.monomial_loss,
        variable_loss=artifact.variable_loss,
    )


# ---------------------------------------------------------------------------
# The bit-identity property, per coefficient family
# ---------------------------------------------------------------------------


class TestExtendMatchesFromScratch:
    @pytest.mark.parametrize("family", sorted(COEFF_FAMILIES))
    def test_extend_equals_rebuild(self, family):
        coeffs = COEFF_FAMILIES[family]

        @settings(max_examples=25, deadline=None)
        @given(
            base=polynomial_sets(coeffs, FREE, min_polys=0, max_polys=3),
            delta=polynomial_sets(coeffs, FREE + NEW, min_polys=0,
                                  max_polys=3),
        )
        def run(base, delta):
            base = PolynomialSet([anchor_polynomial(), *base.polynomials])
            session, artifact = compress_base(base)
            baseline = answers_of(artifact)  # warms compiled + delta index
            assert baseline == answers_of(rebuilt_same_cut(artifact, base))

            result = session.extend(
                delta, artifact, drift_limit=float("inf"),
                options=EvalOptions(backend="object"),
            )
            assert result.path == "repaired"
            assert result.revision == 1
            extended = result.artifact

            reference = rebuilt_same_cut(extended, session.polynomials)
            # Exact structural identity: same monomials, same coefficient
            # objects (Fraction stays Fraction, floats bit-equal).
            assert extended.polynomials == reference.polynomials
            # And identical answers through the repaired compiled matrix.
            assert answers_of(extended) == answers_of(reference)
            # The loss accounting stays exact without re-deriving it.
            assert extended.original_size == session.polynomials.num_monomials
            assert (extended.original_granularity
                    == session.polynomials.num_variables)
            assert (extended.monomial_loss
                    == extended.original_size - extended.abstracted_size)
            assert (extended.variable_loss
                    == extended.original_granularity
                    - extended.abstracted_granularity)

        run()

    @settings(max_examples=15, deadline=None)
    @given(
        base=polynomial_sets(float_coeffs, FREE, min_polys=1, max_polys=3),
        delta=polynomial_sets(float_coeffs, FREE + NEW, min_polys=1,
                              max_polys=3),
    )
    def test_refresh_accounting_matches_session(self, base, delta):
        """Bare refresh (no originals) reconstructs the same granularity
        accounting the session computes by direct count."""
        base = PolynomialSet([anchor_polynomial(), *base.polynomials])
        session, artifact = compress_base(base)
        twin = rebuilt_same_cut(artifact, base)

        via_session = session.extend(
            delta, artifact, drift_limit=float("inf"),
            options=EvalOptions(backend="object"),
        ).artifact
        via_refresh = twin.refresh(
            delta, drift_limit=float("inf"),
            options=EvalOptions(backend="object"),
        ).artifact
        assert via_refresh == via_session
        assert (via_refresh.original_granularity
                == via_session.original_granularity)
        assert via_refresh.original_size == via_session.original_size

    def test_extended_delta_and_dense_engines_agree(self):
        base = PolynomialSet([
            anchor_polynomial(),
            Polynomial({Monomial([("b1", 1), ("f0", 2)]): 3.5,
                        Monomial([("m2", 1)]): -2.0}),
        ])
        session, artifact = compress_base(base)
        answers_of(artifact)  # warm compiled, delta index and baselines
        result = session.extend(
            PolynomialSet([Polynomial({
                Monomial([("b3", 2), ("n0", 1)]): 4.0,
                Monomial([("f1", 1)]): 1.5,
            })]),
            artifact, drift_limit=float("inf"),
        )
        extended = result.artifact
        dense = [a.values for a in extended.ask_many(
            SCENARIOS, options=EvalOptions(engine="dense"))]
        delta = [a.values for a in extended.ask_many(
            SCENARIOS, options=EvalOptions(engine="delta"))]
        assert dense == delta
        assert dense == answers_of(rebuilt_same_cut(
            extended, session.polynomials))


class TestColumnarExtend:
    @settings(max_examples=20, deadline=None)
    @given(
        base=polynomial_sets(float_coeffs, FREE, min_polys=1, max_polys=3),
        delta=polynomial_sets(float_coeffs, FREE + NEW, min_polys=0,
                              max_polys=3),
    )
    def test_extend_is_array_identical_to_fresh_build(self, base, delta):
        extended = base.columnar()
        extended.extend(delta.polynomials)
        fresh = PolynomialSet(
            base.polynomials + delta.polynomials
        ).columnar()
        assert extended.num_polynomials == fresh.num_polynomials
        assert extended.num_monomials == fresh.num_monomials
        numpy.testing.assert_array_equal(extended.vids, fresh.vids)
        numpy.testing.assert_array_equal(extended.exps, fresh.exps)
        numpy.testing.assert_array_equal(extended.row_starts,
                                         fresh.row_starts)
        numpy.testing.assert_array_equal(extended.row_poly, fresh.row_poly)
        numpy.testing.assert_array_equal(extended.poly_starts,
                                         fresh.poly_starts)
        assert extended.coeffs == fresh.coeffs


# ---------------------------------------------------------------------------
# Drift fallback
# ---------------------------------------------------------------------------


class TestDriftFallback:
    def setup_artifact(self):
        base = PolynomialSet([anchor_polynomial()])
        return compress_base(base)

    def test_boundary_repairs_at_limit_recompresses_past_it(self):
        session, artifact = self.setup_artifact()
        delta = serialize_free_delta()
        size = (artifact.abstracted_size
                + abstract(delta, artifact.vvs).num_monomials)
        drift = (size - artifact.bound) / artifact.bound
        assert drift > 0
        at_limit = session.extend(delta, artifact, drift_limit=drift)
        assert at_limit.path == "repaired"
        assert at_limit.drift == pytest.approx(drift)

        session2, artifact2 = self.setup_artifact()
        below = session2.extend(
            delta, artifact2, drift_limit=drift * 0.999,
        )
        assert below.path == "recompressed"
        # The fallback is a true from-scratch compression of the full
        # extended provenance (modulo the lineage counter).
        fresh = ProvenanceSession(
            session2.polynomials, make_forest()
        ).compress(artifact2.bound, algorithm="greedy")
        assert below.artifact == fresh
        assert below.artifact.revision == 1
        assert below.revision == 1

    def test_refresh_raises_without_originals(self):
        _, artifact = self.setup_artifact()
        with pytest.raises(CompressionError, match="ProvenanceSession"):
            artifact.refresh(serialize_free_delta(), drift_limit=0.0)

    def test_negative_drift_limit_rejected(self):
        session, artifact = self.setup_artifact()
        with pytest.raises(ValueError, match="drift_limit"):
            session.extend(PolynomialSet([]), artifact, drift_limit=-0.5)

    def test_internal_forest_labels_rejected(self):
        session, artifact = self.setup_artifact()
        meta = PolynomialSet([Polynomial({Monomial([("SB1", 1)]): 1})])
        with pytest.raises(CompatibilityError, match="SB1"):
            session.extend(meta, artifact)


def serialize_free_delta():
    """Free-variable-only polynomials: nothing abstracts away, so every
    appended monomial drifts the abstracted size."""
    return PolynomialSet([
        Polynomial({Monomial([(f"z{i}", 1)]): 1 for i in range(4)}),
        Polynomial({Monomial([(f"w{i}", 1)]): 2 for i in range(4)}),
    ])


# ---------------------------------------------------------------------------
# Copy-on-extend for mmap-backed artifacts
# ---------------------------------------------------------------------------


class TestCopyOnExtend:
    def test_mmap_artifact_extends_via_copy_with_one_warning(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(mutation, "_WARNED_COPY_ON_EXTEND", False)
        base = PolynomialSet([anchor_polynomial()])
        session, artifact = compress_base(base)
        path = tmp_path / "artifact.rpb"
        artifact.save(path, format="bin")

        loaded = CompressedProvenance.load(path, mmap=True)
        assert loaded.mmap_active
        delta = PolynomialSet([Polynomial({
            Monomial([("b1", 1), ("f0", 1)]): 2,
        })])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = loaded.refresh(delta, drift_limit=float("inf"))
        advisories = [w for w in caught
                      if "copies its polynomials" in str(w.message)]
        assert len(advisories) == 1
        assert first.path == "repaired"
        assert not first.artifact.mmap_active  # the copy is writable

        combined = PolynomialSet(base.polynomials + delta.polynomials)
        assert first.artifact.polynomials == abstract(
            combined, artifact.vvs, backend="object")

        # One-time: a second mmap-backed refresh stays silent.
        again = CompressedProvenance.load(path, mmap=True)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            again.refresh(delta, drift_limit=float("inf"))
        assert not [w for w in caught
                    if "copies its polynomials" in str(w.message)]

        # The spooled container is untouched by either mutation.
        assert CompressedProvenance.load(path, mmap=False) == artifact


# ---------------------------------------------------------------------------
# MutationResult: the unified shape
# ---------------------------------------------------------------------------


class TestMutationResult:
    def make_result(self):
        base = PolynomialSet([anchor_polynomial()])
        session, artifact = compress_base(base)
        return session.extend(
            PolynomialSet([Polynomial({Monomial([("f0", 1)]): 1})]),
            artifact, drift_limit=float("inf"),
        )

    def test_named_fields_and_stats(self):
        result = self.make_result()
        assert result.path == "repaired"
        assert result.added_polynomials == 1
        assert result.added_monomials == 1
        assert result.revision == result.artifact.revision == 1
        assert result.artifact_id is None
        stats = result.stats()
        assert stats["path"] == "repaired"
        assert stats["revision"] == 1
        assert stats["artifact"] == result.artifact.stats()
        assert "id" not in stats
        tagged = result.with_id("a" * 64)
        assert tagged.artifact_id == "a" * 64
        assert tagged.stats()["id"] == "a" * 64
        assert result.artifact_id is None  # with_id copies

    def test_tuple_access_is_deprecated(self):
        result = self.make_result()
        with pytest.warns(DeprecationWarning, match="tuple-style"):
            artifact, path, drift = result
        assert (artifact, path, drift) == (
            result.artifact, result.path, result.drift)
        with pytest.warns(DeprecationWarning, match="tuple-style"):
            assert result[1] == result.path


# ---------------------------------------------------------------------------
# Revision plumbing through both formats
# ---------------------------------------------------------------------------


class TestRevisionRoundTrip:
    def make_extended(self):
        base = PolynomialSet([anchor_polynomial()])
        session, artifact = compress_base(base)
        result = session.extend(
            PolynomialSet([Polynomial({Monomial([("f0", 1)]): 1})]),
            artifact, drift_limit=float("inf"),
        )
        return session.extend(
            PolynomialSet([Polynomial({Monomial([("f1", 1)]): 2})]),
            result.artifact, drift_limit=float("inf"),
        ).artifact

    @pytest.mark.parametrize("format", ["json", "bin"])
    def test_revision_survives_save_load(self, tmp_path, format):
        extended = self.make_extended()
        assert extended.revision == 2
        path = tmp_path / f"artifact.{format}"
        extended.save(path, format=format)
        loaded = CompressedProvenance.load(path, mmap=False)
        assert loaded.revision == 2
        assert loaded == extended

    def test_legacy_payload_defaults_to_revision_zero(self):
        extended = self.make_extended()
        payload = serialize.artifact_to_dict(extended)
        assert payload["stats"]["revision"] == 2
        del payload["stats"]["revision"]
        assert serialize.artifact_from_dict(payload).revision == 0

    def test_revision_changes_content_hash(self, tmp_path):
        """Equal-content artifacts at different revisions serialize to
        different container bytes — the store assigns a fresh id."""
        from repro.service.store import ArtifactStore

        extended = self.make_extended()
        twin = serialize.loads(extended.dumps())
        twin.revision = extended.revision + 1
        store = ArtifactStore(tmp_path / "spool")
        assert store.put(extended) != store.put(twin)

    def test_revision_not_part_of_equality(self):
        extended = self.make_extended()
        twin = serialize.loads(extended.dumps())
        twin.revision = 99
        assert twin == extended


# ---------------------------------------------------------------------------
# Store integration: warm lift index carried over
# ---------------------------------------------------------------------------


class TestWarmRepair:
    def test_put_warm_from_reuses_lift_index(self, tmp_path):
        from repro.service.store import ArtifactStore

        base = PolynomialSet([anchor_polynomial()])
        _, artifact = compress_base(base)
        store = ArtifactStore(tmp_path / "spool")
        first_id = store.put(artifact)
        warm = store.get(first_id)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            result = warm.artifact.refresh(
                PolynomialSet([Polynomial({Monomial([("f0", 1)]): 1})]),
                drift_limit=float("inf"),
            )
        new_id = store.put(result.artifact, warm_from=warm)
        assert new_id != first_id
        repaired = store.get(new_id)
        assert repaired._groups is warm._groups
        assert repaired._leaf_to_label is warm._leaf_to_label
        # Answers through the carried-over index match the plain facade.
        expected = [a.values for a in repaired.artifact.ask_many(SCENARIOS)]
        assert [a.values for a in repaired.ask_many(SCENARIOS)] == expected


# ---------------------------------------------------------------------------
# CLI: python -m repro extend
# ---------------------------------------------------------------------------


class TestCliExtend:
    def test_extend_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        base = PolynomialSet([anchor_polynomial()])
        session, artifact = compress_base(base)
        artifact_path = tmp_path / "artifact.json"
        artifact.save(artifact_path, format="json")
        provenance_path = tmp_path / "provenance.json"
        provenance_path.write_text(serialize.dumps(base))
        delta_path = tmp_path / "delta.json"
        delta_path.write_text(serialize.dumps(PolynomialSet([
            Polynomial({Monomial([("b2", 1), ("f0", 1)]): 3}),
        ])))
        out_path = tmp_path / "extended.json"

        code = main([
            "extend", str(artifact_path),
            "--added", str(delta_path),
            "--provenance", str(provenance_path),
            "--drift-limit", "1e9",
            "--output", str(out_path),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "path:          repaired" in printed
        assert "revision:      1" in printed
        loaded = CompressedProvenance.load(out_path, mmap=False)
        assert loaded.revision == 1
        assert loaded.original_size == base.num_monomials + 1

    def test_overflow_without_provenance_exits(self, tmp_path):
        from repro.cli import main

        base = PolynomialSet([anchor_polynomial()])
        _, artifact = compress_base(base)
        artifact_path = tmp_path / "artifact.json"
        artifact.save(artifact_path, format="json")
        delta_path = tmp_path / "delta.json"
        delta_path.write_text(serialize.dumps(serialize_free_delta()))
        with pytest.raises(SystemExit, match="drift|bound"):
            main([
                "extend", str(artifact_path),
                "--added", str(delta_path),
                "--drift-limit", "0.0",
            ])


# ---------------------------------------------------------------------------
# Public surface
# ---------------------------------------------------------------------------


class TestPublicSurface:
    def test_mutation_result_exported(self):
        import repro

        assert repro.MutationResult is MutationResult
        assert "MutationResult" in repro.__all__

    def test_extend_artifact_importable_from_api(self):
        from repro.api import MutationResult as exported, extend_artifact

        assert exported is MutationResult
        assert callable(extend_artifact)
