"""The paper's running example, end to end.

Generates a telephony database (§4.2), runs the revenue-per-zip query
with plan/month parameterization through the provenance-aware engine,
compresses the provenance, and compares what-if answers and timings on
raw vs compressed provenance.

Run:  python examples/telephony_whatif.py
"""

from repro.algorithms import greedy_vvs
from repro.core import AbstractionForest
from repro.scenarios import Scenario, assignment_speedup
from repro.workloads.telephony import TelephonyBenchmark


def main():
    bench = TelephonyBenchmark(
        customers=400, num_plans=32, months=12, zip_pool=40, seed=7
    )
    cust, calls, plans = bench.relations()
    print(f"database: {len(cust)} customers, {len(calls)} call records, "
          f"{len(plans)} plan prices")

    provenance = bench.provenance()
    print(f"provenance: {len(provenance)} polynomials "
          f"({provenance.num_monomials} monomials, "
          f"{provenance.num_variables} variables)")

    # Abstraction: plans in 8 groups, months in quarters.
    forest = AbstractionForest(
        [bench.plans_abstraction_tree((8,)), bench.months_abstraction_tree()]
    )
    bound = provenance.num_monomials // 2
    result = greedy_vvs(provenance, forest, bound)
    print(f"\ngreedy abstraction to bound {bound}: "
          f"{result.abstracted_size} monomials "
          f"({result.variable_loss} variables lost, "
          f"{result.abstracted_granularity} kept)")

    compact = result.apply(provenance)

    # Scenarios an analyst might run (all quarter/group-uniform ones are
    # answered EXACTLY by the compressed provenance).
    quarter_cut = Scenario.uniform("Q1 prices -20%", ["m1", "m2", "m3"], 0.8)
    if quarter_cut.is_supported_by(result.vvs):
        exact = "exactly"
    else:
        exact = "approximately"
    raw_answers = quarter_cut.evaluate(provenance)
    lifted = quarter_cut.lift(result.vvs) if exact == "exactly" else None
    print(f"\nscenario '{quarter_cut.name}' is answered {exact} "
          "after compression")
    if lifted is not None:
        compact_answers = lifted.evaluate(compact)
        worst = max(
            abs(a - b) for a, b in zip(raw_answers, compact_answers)
        )
        print(f"  max discrepancy across {len(raw_answers)} zips: {worst:.2e}")

    # Figure 10's measurement: how much faster do suites of scenarios run?
    suite = [
        Scenario.uniform(f"scenario-{i}", [f"m{m}" for m in range(1, 13)],
                         1.0 - 0.05 * i)
        for i in range(10)
    ]
    report = assignment_speedup(provenance, compact, suite, vvs=result.vvs)
    print(f"\nassignment time: raw {report.raw_seconds * 1e3:.2f} ms vs "
          f"compressed {report.abstracted_seconds * 1e3:.2f} ms "
          f"(speedup {report.speedup_percent:.1f}%, "
          f"size ratio {report.compression_ratio:.2f})")


if __name__ == "__main__":
    main()
