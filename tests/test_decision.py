"""Tests for the precise-abstraction decision problem (Definition 10)."""

import pytest

from repro.algorithms.decision import exists_precise, precise_pairs
from repro.core.abstraction import abstract_counts
from repro.core.forest import AbstractionForest
from repro.core.parser import parse_set
from repro.core.tree import AbstractionTree
from repro.workloads.random_polys import random_compatible_instance


@pytest.fixture
def instance():
    polys = parse_set(["2*a*x + 3*b*x + 4*c*x"])
    tree = AbstractionTree.from_nested(("r", [("g", ["a", "b"]), "c"]))
    return polys, tree


class TestSingleTreeDP:
    def test_precise_pairs_match_enumeration(self, instance):
        polys, tree = instance
        forest = AbstractionForest([tree])
        enumerated = set()
        for vvs in forest.iter_cuts():
            size, granularity = abstract_counts(polys, vvs.mapping())
            enumerated.add(
                (polys.num_monomials - size, polys.num_variables - granularity)
            )
        assert precise_pairs(polys, tree) == enumerated

    def test_exists_precise_positive(self, instance):
        polys, tree = instance
        # Cut {g, c}: size 2 (a,b merge), granularity 3 (g, c, x).
        assert exists_precise(polys, tree, size=2, granularity=3)

    def test_exists_precise_negative(self, instance):
        polys, tree = instance
        # Size 2 with full granularity 4 is impossible.
        assert not exists_precise(polys, tree, size=2, granularity=4)

    def test_identity_is_always_precise(self, instance):
        polys, tree = instance
        assert exists_precise(
            polys, tree, size=polys.num_monomials, granularity=polys.num_variables
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_dp_matches_enumeration_on_random_single_trees(self, seed):
        polys, forest = random_compatible_instance(seed=seed, num_trees=1)
        if len(forest.trees) != 1:
            pytest.skip("tree vanished")
        tree = forest.trees[0]
        pairs = precise_pairs(polys, tree)
        enumerated = set()
        for vvs in forest.iter_cuts():
            size, granularity = abstract_counts(polys, vvs.mapping())
            enumerated.add(
                (polys.num_monomials - size, polys.num_variables - granularity)
            )
        assert pairs == enumerated


class TestForestFallback:
    def test_forest_enumeration(self, ex13_polys, paper_forest):
        cleaned = paper_forest.clean(ex13_polys)
        # The Example 15 optimum: ML 10, VL 4 -> size 4, granularity 5.
        assert exists_precise(ex13_polys, cleaned, size=4, granularity=5)

    def test_forest_negative(self, ex13_polys, paper_forest):
        cleaned = paper_forest.clean(ex13_polys)
        assert not exists_precise(ex13_polys, cleaned, size=1, granularity=9)

    def test_single_tree_forest_uses_dp(self, instance):
        polys, tree = instance
        forest = AbstractionForest([tree])
        assert exists_precise(polys, forest, size=2, granularity=3)
