"""Unit tests for forests, compatibility, and valid variable sets."""

import pytest

from repro.core.forest import AbstractionForest, CompatibilityError
from repro.core.parser import parse_set
from repro.core.tree import AbstractionTree


@pytest.fixture
def forest():
    plans = AbstractionTree.from_nested(("P", [("SB", ["b1", "b2"]), "e"]))
    months = AbstractionTree.from_nested(("Y", [("q1", ["m1", "m3"])]))
    return AbstractionForest([plans, months])


class TestForestConstruction:
    def test_disjointness_enforced(self):
        t1 = AbstractionTree.from_nested(("A", ["x", "y"]))
        t2 = AbstractionTree.from_nested(("B", ["x", "z"]))
        with pytest.raises(ValueError, match="disjoint"):
            AbstractionForest([t1, t2])

    def test_labels_union(self, forest):
        assert {"P", "SB", "b1", "Y", "q1", "m1"} <= forest.labels

    def test_leaf_labels(self, forest):
        assert forest.leaf_labels == {"b1", "b2", "e", "m1", "m3"}

    def test_tree_of(self, forest):
        assert forest.tree_of("b1").root.label == "P"
        assert forest.tree_of("m3").root.label == "Y"

    def test_is_descendant_cross_tree_false(self, forest):
        assert not forest.is_descendant("b1", "Y")

    def test_count_cuts_is_product(self, forest):
        # Plans side: SB->2, so P = 1 + 2*1 = 3; months: q1->2, Y = 3.
        assert forest.count_cuts() == 9

    def test_iter_cuts_yields_valid_sets(self, forest):
        cuts = list(forest.iter_cuts())
        assert len(cuts) == 9
        for cut in cuts:
            assert forest.is_valid_vvs(cut.labels)


class TestCompatibility:
    def test_compatible_instance(self, forest):
        polys = parse_set(["2*b1*m1 + 3*e*m3", "b2*m1"])
        forest.check_compatible(polys)

    def test_missing_leaf_rejected(self, forest):
        polys = parse_set(["b1*m1"])  # b2, e, m3 absent
        with pytest.raises(CompatibilityError, match="do not occur"):
            forest.check_compatible(polys)

    def test_metavariable_in_polynomial_rejected(self, forest):
        polys = parse_set(["2*b1*m1 + 3*e*m3 + b2*SB + q1*m1"])
        with pytest.raises(CompatibilityError):
            forest.check_compatible(polys)

    def test_two_tree_nodes_in_one_monomial_rejected(self, forest):
        polys = parse_set(["b1*b2*m1 + e*m3 + b2*m1 + b1*m3"])
        with pytest.raises(CompatibilityError, match="more than one node"):
            forest.check_compatible(polys)

    def test_is_compatible_boolean_form(self, forest):
        assert not forest.is_compatible(parse_set(["b1*b2"]))

    def test_clean_drops_empty_trees(self, forest):
        polys = parse_set(["b1*x + b2*x"])  # months tree fully absent
        cleaned = forest.clean(polys)
        assert len(cleaned) == 1
        assert cleaned.trees[0].leaf_labels == {"b1", "b2"}


class TestValidVariableSet:
    def test_example5_valid_sets(self, paper_forest, figure2_tree):
        """All five sets of Example 5 are valid cuts of Figure 2."""
        forest = AbstractionForest([figure2_tree.copy()])
        for labels in [
            {"Business", "Special", "Standard"},
            {"SB", "e", "f1", "f2", "Y", "v", "Standard"},
            {"b1", "b2", "e", "Special", "Standard"},
            {"SB", "e", "F", "Y", "v", "p1", "p2"},
            {"Plans"},
        ]:
            assert forest.is_valid_vvs(labels), labels

    def test_uncovered_leaf_rejected(self, forest):
        with pytest.raises(ValueError, match="not covered"):
            forest.vvs({"SB", "Y"})  # 'e' uncovered

    def test_double_cover_rejected(self, forest):
        with pytest.raises(ValueError, match="antichain|covered twice"):
            forest.vvs({"P", "SB", "e", "Y"})

    def test_unknown_label_rejected(self, forest):
        with pytest.raises(ValueError, match="not in the forest"):
            forest.vvs({"nope", "P", "Y"})

    def test_intermediate_node_choice_is_valid(self, forest):
        assert forest.is_valid_vvs({"SB", "e", "q1"})
        assert not forest.is_valid_vvs({"SB", "e", "q1", "Y"})  # double cover

    def test_mapping_contents(self, forest):
        vvs = forest.vvs({"SB", "e", "Y"})
        assert vvs.mapping() == {"b1": "SB", "b2": "SB", "m1": "Y", "m3": "Y"}
        assert vvs.representative("b1") == "SB"
        assert vvs.representative("e") == "e"
        assert vvs.representative("outside") == "outside"

    def test_group(self, forest):
        vvs = forest.vvs({"SB", "e", "Y"})
        assert set(vvs.group("SB")) == {"b1", "b2"}
        assert vvs.group("e") == ["e"]

    def test_apply(self, forest):
        polys = parse_set(["2*b1*m1 + 3*b2*m1"])
        vvs = forest.vvs({"SB", "e", "q1"})
        assert vvs.apply(polys)[0] == parse_set(["5*SB*q1"])[0]

    def test_identity_and_root_cuts(self, forest):
        assert forest.leaf_vvs().mapping() == {}
        root = forest.root_vvs()
        assert root.labels == frozenset({"P", "Y"})

    def test_equality_and_hash(self, forest):
        a = forest.vvs({"SB", "e", "Y"})
        b = forest.vvs({"SB", "e", "Y"})
        assert a == b
        assert hash(a) == hash(b)

    def test_leaf_choice_means_no_abstraction(self, forest):
        vvs = forest.vvs({"b1", "b2", "e", "m1", "m3"})
        assert vvs.mapping() == {}
