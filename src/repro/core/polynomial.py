"""Provenance polynomials (§2.1 of the paper).

A *provenance polynomial* is a sum of monomials; each monomial is a
product of a numeric coefficient and indeterminates ("variables"), each
raised to a positive integer exponent. Polynomials arise here in two
settings (both supported, see ``repro.engine``):

1. semiring annotations of SPJU query results over tuple variables
   (Green et al.'s ``N[X]``), and
2. parameterized aggregate values, where the plus of the polynomial is
   the aggregate and variables scale chosen cells (the paper's running
   example).

The paper measures a polynomial ``P`` by

* its *size* ``|P|_M`` — the number of monomials, and
* its *granularity* ``|P|_V`` — the number of distinct variables,

and lifts both point-wise to (multi)sets of polynomials. This module
implements :class:`Monomial`, :class:`Polynomial`, and
:class:`PolynomialSet` with exactly those measures, plus the variable
substitution primitive that provenance abstraction is built on.
"""

from __future__ import annotations

__all__ = ["Monomial", "Polynomial", "PolynomialSet"]


class Monomial:
    """An immutable product of variables raised to positive exponents.

    The coefficient is *not* part of the monomial — polynomials map
    monomials to coefficients, mirroring the paper's implementation note
    (§4.1: "Python's dictionaries for the polynomials").

    ``powers`` is a sorted tuple of ``(variable, exponent)`` pairs with
    ``exponent >= 1``; variables are strings.

    >>> m = Monomial.of(("x", 2), "y")
    >>> str(m)
    'x^2*y'
    >>> m.degree
    3
    >>> m.exponent("x")
    2
    """

    __slots__ = ("powers", "_hash")

    #: The empty monomial (the constant term's monomial).
    ONE: "Monomial"

    def __init__(self, powers=()):
        items = tuple(sorted((str(v), int(e)) for v, e in powers))
        for var, exp in items:
            if exp < 1:
                raise ValueError(f"exponent of {var!r} must be >= 1, got {exp}")
        seen = set()
        for var, _ in items:
            if var in seen:
                raise ValueError(f"duplicate variable {var!r}; use Monomial.of")
            seen.add(var)
        object.__setattr__(self, "powers", items)
        object.__setattr__(self, "_hash", hash(items))

    def __setattr__(self, name, value):
        raise AttributeError("Monomial is immutable")

    @classmethod
    def of(cls, *factors):
        """Build a monomial from variables and ``(variable, exponent)`` pairs.

        Repeated variables multiply (exponents add):

        >>> str(Monomial.of("x", "y", "x"))
        'x^2*y'
        """
        acc = {}
        for factor in factors:
            if isinstance(factor, tuple):
                var, exp = factor
            else:
                var, exp = factor, 1
            acc[str(var)] = acc.get(str(var), 0) + int(exp)
        return cls(acc.items())

    @property
    def variables(self):
        """The set of variables occurring in this monomial."""
        return frozenset(var for var, _ in self.powers)

    @property
    def degree(self):
        """Total degree (sum of exponents)."""
        return sum(exp for _, exp in self.powers)

    def exponent(self, variable):
        """The exponent of ``variable`` (0 if absent)."""
        for var, exp in self.powers:
            if var == variable:
                return exp
        return 0

    def __contains__(self, variable):
        return any(var == variable for var, _ in self.powers)

    def __iter__(self):
        """Iterate over ``(variable, exponent)`` pairs in sorted order."""
        return iter(self.powers)

    def __len__(self):
        return len(self.powers)

    def __mul__(self, other):
        if not isinstance(other, Monomial):
            return NotImplemented
        acc = dict(self.powers)
        for var, exp in other.powers:
            acc[var] = acc.get(var, 0) + exp
        return Monomial(acc.items())

    def substitute(self, mapping):
        """Rename variables via ``mapping``; unmapped variables stay intact.

        If two variables map to the same target their exponents combine:

        >>> str(Monomial.of("a", "b").substitute({"a": "g", "b": "g"}))
        'g^2'
        """
        acc = {}
        for var, exp in self.powers:
            target = mapping.get(var, var)
            acc[target] = acc.get(target, 0) + exp
        return Monomial(acc.items())

    def evaluate(self, assignment, default=1.0):
        """The numeric value of the monomial under ``assignment``.

        Variables absent from ``assignment`` take ``default`` — the
        neutral "scenario leaves this parameter unchanged" semantics.
        """
        value = 1.0
        for var, exp in self.powers:
            value *= assignment.get(var, default) ** exp
        return value

    def __eq__(self, other):
        return isinstance(other, Monomial) and self.powers == other.powers

    def __lt__(self, other):
        if not isinstance(other, Monomial):
            return NotImplemented
        return self.powers < other.powers

    def __hash__(self):
        return self._hash

    def __str__(self):
        if not self.powers:
            return "1"
        parts = []
        for var, exp in self.powers:
            parts.append(var if exp == 1 else f"{var}^{exp}")
        return "*".join(parts)

    def __repr__(self):
        return f"Monomial({self.powers!r})"


Monomial.ONE = Monomial()


class Polynomial:
    """A provenance polynomial: a finite map from monomials to coefficients.

    Coefficients may be ``int``, ``float`` or ``fractions.Fraction``.
    Zero-coefficient terms are dropped on construction, so ``|P|_M`` is
    always the count of *surviving* monomials.

    >>> p = Polynomial({Monomial.of("x"): 2, Monomial.of("y"): 3})
    >>> p.num_monomials, p.num_variables
    (2, 2)
    """

    __slots__ = ("terms",)

    def __init__(self, terms=None):
        acc = {}
        if terms:
            items = terms.items() if isinstance(terms, dict) else terms
            for monomial, coeff in items:
                if not isinstance(monomial, Monomial):
                    raise TypeError(f"expected Monomial, got {type(monomial).__name__}")
                if coeff == 0:
                    continue
                new = acc.get(monomial, 0) + coeff
                if new == 0:
                    acc.pop(monomial, None)
                else:
                    acc[monomial] = new
        self.terms = acc

    @classmethod
    def zero(cls):
        """The empty polynomial (0)."""
        return cls()

    @classmethod
    def constant(cls, value):
        """A constant polynomial ``value``."""
        return cls({Monomial.ONE: value})

    @classmethod
    def variable(cls, name, coefficient=1):
        """The polynomial ``coefficient * name``."""
        return cls({Monomial.of(name): coefficient})

    @classmethod
    def from_terms(cls, terms):
        """Build from an iterable of ``(coefficient, Monomial)`` pairs."""
        return cls((monomial, coeff) for coeff, monomial in terms)

    # ---------------------------------------------------------------- sizes

    @property
    def monomials(self):
        """``M(P)`` — the monomials of this polynomial (a view)."""
        return self.terms.keys()

    @property
    def num_monomials(self):
        """``|P|_M`` — the number of monomials."""
        return len(self.terms)

    @property
    def variables(self):
        """``V(P)`` — the set of variables occurring in ``P``."""
        out = set()
        for monomial in self.terms:
            out.update(monomial.variables)
        return out

    @property
    def num_variables(self):
        """``|P|_V`` — the granularity (number of distinct variables)."""
        return len(self.variables)

    def coefficient(self, monomial):
        """The coefficient of ``monomial`` (0 if absent)."""
        return self.terms.get(monomial, 0)

    # ----------------------------------------------------------- arithmetic

    def __add__(self, other):
        if isinstance(other, (int, float)):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        acc = dict(self.terms)
        for monomial, coeff in other.terms.items():
            new = acc.get(monomial, 0) + coeff
            if new == 0:
                acc.pop(monomial, None)
            else:
                acc[monomial] = new
        result = Polynomial.zero()
        result.terms = acc
        return result

    __radd__ = __add__

    def __neg__(self):
        result = Polynomial.zero()
        result.terms = {m: -c for m, c in self.terms.items()}
        return result

    def __sub__(self, other):
        if isinstance(other, (int, float)):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self + (-other)

    def __mul__(self, other):
        if isinstance(other, (int, float)):
            if other == 0:
                return Polynomial.zero()
            result = Polynomial.zero()
            result.terms = {m: c * other for m, c in self.terms.items()}
            return result
        if isinstance(other, Monomial):
            result = Polynomial.zero()
            result.terms = {m * other: c for m, c in self.terms.items()}
            return result
        if isinstance(other, Polynomial):
            acc = {}
            for m1, c1 in self.terms.items():
                for m2, c2 in other.terms.items():
                    m = m1 * m2
                    new = acc.get(m, 0) + c1 * c2
                    if new == 0:
                        acc.pop(m, None)
                    else:
                        acc[m] = new
            result = Polynomial.zero()
            result.terms = acc
            return result
        return NotImplemented

    __rmul__ = __mul__

    # --------------------------------------------------------- provenance ops

    def substitute(self, mapping):
        """``P↓S`` workhorse: rename variables, merging equal monomials.

        Coefficients of monomials that become identical are summed —
        this is exactly how abstraction shrinks ``|P|_M``.

        >>> p = Polynomial.from_terms(
        ...     [(2, Monomial.of("m1", "x")), (3, Monomial.of("m3", "x"))])
        >>> str(p.substitute({"m1": "q1", "m3": "q1"}))
        '5*q1*x'
        """
        acc = {}
        for monomial, coeff in self.terms.items():
            new_monomial = monomial.substitute(mapping)
            new = acc.get(new_monomial, 0) + coeff
            if new == 0:
                acc.pop(new_monomial, None)
            else:
                acc[new_monomial] = new
        result = Polynomial.zero()
        result.terms = acc
        return result

    def evaluate(self, assignment, default=1.0):
        """Value of ``P`` under a (hypothetical-scenario) assignment.

        Unassigned variables default to ``default`` (1.0 = "unchanged").
        """
        total = 0.0
        for monomial, coeff in self.terms.items():
            total += coeff * monomial.evaluate(assignment, default)
        return total

    def restricted_to(self, variables):
        """The sub-polynomial of monomials that only use ``variables``."""
        variables = set(variables)
        return Polynomial(
            (m, c) for m, c in self.terms.items() if m.variables <= variables
        )

    # ------------------------------------------------------------- equality

    def __eq__(self, other):
        return isinstance(other, Polynomial) and self.terms == other.terms

    def __hash__(self):
        return hash(frozenset(self.terms.items()))

    def almost_equal(self, other, tolerance=1e-9):
        """Structural equality with per-coefficient float ``tolerance``."""
        if set(self.terms) != set(other.terms):
            return False
        return all(
            abs(self.terms[m] - other.terms[m]) <= tolerance for m in self.terms
        )

    def __iter__(self):
        """Iterate over ``(coefficient, Monomial)`` pairs, sorted by monomial."""
        for monomial in sorted(self.terms):
            yield self.terms[monomial], monomial

    def __len__(self):
        return len(self.terms)

    def __bool__(self):
        return bool(self.terms)

    def __str__(self):
        if not self.terms:
            return "0"
        chunks = []
        for coeff, monomial in self:
            sign = "-" if coeff < 0 else "+"
            magnitude = abs(coeff)
            if not monomial.powers:
                body = f"{magnitude}"
            elif magnitude == 1:
                body = str(monomial)
            else:
                body = f"{magnitude}*{monomial}"
            if not chunks:
                chunks.append(body if sign == "+" else f"-{body}")
            else:
                chunks.append(f"{sign} {body}")
        return " ".join(chunks)

    def __repr__(self):
        return f"Polynomial.parse({str(self)!r})"


class PolynomialSet:
    """A multiset of polynomials — the provenance of a whole query result.

    The paper's measures lift point-wise: ``|P|_M`` sums monomial counts
    and ``V(P)`` / ``|P|_V`` union variables.

    >>> ps = PolynomialSet([Polynomial.variable("x"), Polynomial.variable("x")])
    >>> ps.num_monomials, ps.num_variables
    (2, 1)
    """

    __slots__ = ("polynomials",)

    def __init__(self, polynomials=None):
        self.polynomials = list(polynomials) if polynomials else []
        for p in self.polynomials:
            if not isinstance(p, Polynomial):
                raise TypeError(f"expected Polynomial, got {type(p).__name__}")

    def append(self, polynomial):
        """Add one polynomial to the multiset."""
        if not isinstance(polynomial, Polynomial):
            raise TypeError(f"expected Polynomial, got {type(polynomial).__name__}")
        self.polynomials.append(polynomial)

    @property
    def num_monomials(self):
        """``|P|_M`` summed over the multiset."""
        return sum(p.num_monomials for p in self.polynomials)

    @property
    def variables(self):
        """``V(P)`` — union of per-polynomial variable sets."""
        out = set()
        for p in self.polynomials:
            out.update(p.variables)
        return out

    @property
    def num_variables(self):
        """``|P|_V`` — number of distinct variables across the multiset."""
        return len(self.variables)

    def substitute(self, mapping):
        """Point-wise substitution (``P↓S`` lifted to the multiset)."""
        return PolynomialSet(p.substitute(mapping) for p in self.polynomials)

    def evaluate(self, assignment, default=1.0):
        """Point-wise valuation; returns one value per polynomial."""
        return [p.evaluate(assignment, default) for p in self.polynomials]

    def __iter__(self):
        return iter(self.polynomials)

    def __len__(self):
        return len(self.polynomials)

    def __getitem__(self, index):
        return self.polynomials[index]

    def __eq__(self, other):
        return (
            isinstance(other, PolynomialSet)
            and self.polynomials == other.polynomials
        )

    def almost_equal(self, other, tolerance=1e-9):
        """Point-wise :meth:`Polynomial.almost_equal`."""
        if len(self) != len(other):
            return False
        return all(
            a.almost_equal(b, tolerance) for a, b in zip(self, other)
        )

    def __repr__(self):
        return f"PolynomialSet({self.polynomials!r})"
