"""Tests for Algorithm 1 (optimal single-tree DP), both implementations."""

import pytest

from repro.algorithms.optimal import optimal_vvs, optimal_vvs_naive
from repro.algorithms.brute_force import brute_force_vvs
from repro.algorithms.result import InfeasibleBoundError
from repro.core.abstraction import abstract, losses, monomial_loss, variable_loss
from repro.core.forest import AbstractionForest
from repro.core.parser import parse_set
from repro.core.tree import AbstractionTree
from repro.workloads.random_polys import random_polynomials
from repro.workloads.trees import layered_tree, random_tree


@pytest.fixture
def simple():
    polys = parse_set(
        ["2*b1*m1 + 3*b1*m3 + 4*b2*m1 + 5*b2*m3 + 6*e*m1 + 7*e*m3"]
    )
    tree = AbstractionTree.from_nested(("B", [("SB", ["b1", "b2"]), "e"]))
    return polys, tree


class TestBasics:
    def test_loose_bound_returns_identity(self, simple):
        polys, tree = simple
        result = optimal_vvs(polys, tree, bound=polys.num_monomials)
        assert result.monomial_loss == 0
        assert result.variable_loss == 0
        assert result.abstracted_size == polys.num_monomials

    def test_bound_larger_than_size_is_identity(self, simple):
        polys, tree = simple
        result = optimal_vvs(polys, tree, bound=999)
        assert result.monomial_loss == 0

    def test_bound_four_uses_sb(self, simple):
        polys, tree = simple
        result = optimal_vvs(polys, tree, bound=4)
        assert result.vvs.labels == frozenset({"SB", "e"})
        assert result.abstracted_size == 4
        assert result.variable_loss == 1

    def test_bound_two_needs_root(self, simple):
        polys, tree = simple
        result = optimal_vvs(polys, tree, bound=2)
        assert result.vvs.labels == frozenset({"B"})
        assert result.abstracted_size == 2
        assert result.variable_loss == 2

    def test_bound_three_still_needs_root(self, simple):
        # ML must be >= 3; SB alone gives 2, so the root (ML 4) is forced.
        polys, tree = simple
        result = optimal_vvs(polys, tree, bound=3)
        assert result.abstracted_size == 2

    def test_infeasible_bound_raises(self, simple):
        polys, tree = simple
        with pytest.raises(InfeasibleBoundError) as excinfo:
            optimal_vvs(polys, tree, bound=1)
        assert excinfo.value.min_achievable_size == 2

    def test_invalid_bound_rejected(self, simple):
        polys, tree = simple
        with pytest.raises(ValueError):
            optimal_vvs(polys, tree, bound=0)

    def test_multi_tree_forest_rejected(self, simple):
        polys, tree = simple
        other = AbstractionTree.from_nested(("Q", ["m1", "m3"]))
        with pytest.raises(ValueError, match="NP-hard|one abstraction tree"):
            optimal_vvs(polys, AbstractionForest([tree, other]), bound=4)

    def test_single_tree_forest_accepted(self, simple):
        polys, tree = simple
        result = optimal_vvs(polys, AbstractionForest([tree]), bound=4)
        assert result.abstracted_size == 4

    def test_result_counts_are_consistent(self, simple):
        polys, tree = simple
        result = optimal_vvs(polys, tree, bound=4)
        materialized = abstract(polys, result.vvs)
        assert materialized.num_monomials == result.abstracted_size
        assert materialized.num_variables == result.abstracted_granularity
        # Both measures in one counting pass (and each standalone).
        assert (result.monomial_loss, result.variable_loss) == losses(
            polys, result.vvs
        )
        assert result.monomial_loss == monomial_loss(polys, result.vvs)
        assert result.variable_loss == variable_loss(polys, result.vvs)


class TestExample13:
    def test_paper_answer(self, ex13_polys, figure2_tree):
        result = optimal_vvs(ex13_polys, figure2_tree, bound=9)
        assert result.vvs.labels == frozenset({"SB", "Special", "e", "p1"})
        assert result.monomial_loss == 6
        assert result.variable_loss == 3

    def test_naive_agrees_on_paper_answer(self, ex13_polys, figure2_tree):
        result = optimal_vvs_naive(ex13_polys, figure2_tree, bound=9)
        assert result.vvs.labels == frozenset({"SB", "Special", "e", "p1"})

    def test_all_bounds_match_brute_force(self, ex13_polys, figure2_tree):
        """DP optimality: for every feasible bound, VL equals brute force."""
        for bound in range(1, ex13_polys.num_monomials + 1):
            try:
                expected = brute_force_vvs(ex13_polys, figure2_tree, bound)
            except InfeasibleBoundError:
                with pytest.raises(InfeasibleBoundError):
                    optimal_vvs(ex13_polys, figure2_tree, bound)
                continue
            result = optimal_vvs(ex13_polys, figure2_tree, bound)
            assert result.variable_loss == expected.variable_loss, bound
            assert result.abstracted_size <= bound


class TestOptimalityRandomized:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_on_random_instances(self, seed):
        pool = [f"v{i}" for i in range(9)]
        polys = random_polynomials(3, 10, [pool], seed=seed, extra_variables=3)
        present = sorted(v for v in pool if v in polys.variables)
        if len(present) < 2:
            pytest.skip("degenerate draw")
        tree = random_tree(present, seed=seed, max_fanout=3)
        for bound in {1, 2, polys.num_monomials // 2, polys.num_monomials}:
            if bound < 1:
                continue
            try:
                expected = brute_force_vvs(polys, tree, bound)
            except InfeasibleBoundError:
                with pytest.raises(InfeasibleBoundError):
                    optimal_vvs(polys, tree, bound)
                continue
            result = optimal_vvs(polys, tree, bound)
            assert result.abstracted_size <= bound
            assert result.variable_loss == expected.variable_loss

    @pytest.mark.parametrize("seed", range(4))
    def test_naive_and_optimized_agree(self, seed):
        pool = [f"v{i}" for i in range(8)]
        polys = random_polynomials(2, 8, [pool], seed=100 + seed, extra_variables=2)
        present = sorted(v for v in pool if v in polys.variables)
        if len(present) < 2:
            pytest.skip("degenerate draw")
        tree = random_tree(present, seed=seed, max_fanout=3)
        for bound in range(1, polys.num_monomials + 1):
            try:
                fast = optimal_vvs(polys, tree, bound)
            except InfeasibleBoundError:
                with pytest.raises(InfeasibleBoundError):
                    optimal_vvs_naive(polys, tree, bound)
                continue
            slow = optimal_vvs_naive(polys, tree, bound)
            assert fast.variable_loss == slow.variable_loss
            assert fast.monomial_loss >= polys.num_monomials - bound
            assert slow.monomial_loss >= polys.num_monomials - bound


class TestLayeredTrees:
    def test_layered_instance(self):
        leaves = [f"s{i}" for i in range(16)]
        polys = random_polynomials(4, 20, [leaves], seed=5, extra_variables=4)
        tree = layered_tree(
            [v for v in leaves if v in polys.variables], (2, 2), prefix="sp"
        ) if all(v in polys.variables for v in leaves) else None
        if tree is None:
            polys = random_polynomials(8, 40, [leaves], seed=5, extra_variables=4)
            assert all(v in polys.variables for v in leaves)
            tree = layered_tree(leaves, (2, 2), prefix="sp")
        bound = polys.num_monomials // 2
        result = optimal_vvs(polys, tree, bound)
        assert result.abstracted_size <= bound
        expected = brute_force_vvs(polys, tree, bound)
        assert result.variable_loss == expected.variable_loss
