"""`repro.faults`: deterministic, seeded fault injection.

The contract: a :class:`FaultPlan` is a *schedule*. The same plan
against the same call sequence fires the same faults — in-process
(exact per-site call counts), and across a process tree (environment
propagation plus atomic once-tokens).
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import faults
from repro.faults import (
    CRASH_STATUS,
    ENV_VAR,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    inject,
    installed,
)

SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(autouse=True)
def _disarmed():
    """No plan survives into (or out of) any test in this module."""
    faults.uninstall()
    yield
    faults.uninstall()


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("worker.start", "meteor")

    def test_unknown_site_rejected_unless_dotted(self):
        with pytest.raises(ValueError, match="site"):
            FaultSpec("workerstart", "crash")
        assert FaultSpec("test.adhoc", "exception").site == "test.adhoc"

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("worker.start", "crash", at=0)
        with pytest.raises(ValueError):
            FaultSpec("worker.start", "crash", count=0)


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            [
                FaultSpec("worker.start", "crash", once=True),
                FaultSpec("store.spool_write", "corrupt", at=2, offset=7,
                          seed=3),
            ],
            token_dir=tmp_path,
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.specs == plan.specs
        assert clone.token_dir == str(tmp_path)

    def test_once_requires_token_dir(self):
        with pytest.raises(ValueError, match="token_dir"):
            FaultPlan([FaultSpec("worker.start", "crash", once=True)])

    def test_fires_on_exact_call_count(self):
        plan = FaultPlan([FaultSpec("test.site", "exception", at=3)])
        with installed(plan):
            inject("test.site")
            inject("test.site")
            with pytest.raises(InjectedFault):
                inject("test.site")
            inject("test.site")
        assert plan.counts() == {"test.site": 4}

    def test_count_widens_the_firing_window(self):
        plan = FaultPlan([FaultSpec("test.site", "exception", at=2, count=2)])
        with installed(plan):
            inject("test.site")
            with pytest.raises(InjectedFault):
                inject("test.site")
            with pytest.raises(InjectedFault):
                inject("test.site")
            inject("test.site")

    def test_delay_kind_sleeps(self):
        plan = FaultPlan([FaultSpec("test.site", "delay", delay=0.15)])
        with installed(plan):
            began = time.monotonic()
            inject("test.site")
            assert time.monotonic() - began >= 0.14

    def test_corrupt_flips_exactly_one_bit_deterministically(self, tmp_path):
        original = bytes(range(64))
        first, second = tmp_path / "a.bin", tmp_path / "b.bin"
        first.write_bytes(original)
        second.write_bytes(original)
        spec = FaultSpec("store.spool_write", "corrupt", seed=7)
        with installed(FaultPlan([spec])):
            inject("store.spool_write", path=first)
        with installed(FaultPlan([spec])):
            inject("store.spool_write", path=second)
        mutated = first.read_bytes()
        assert mutated == second.read_bytes()  # same seed, same flip
        assert mutated != original
        flipped = sum(
            bin(x ^ y).count("1") for x, y in zip(mutated, original)
        )
        assert flipped == 1

    def test_corrupt_offset_pins_the_byte(self, tmp_path):
        target = tmp_path / "pinned.bin"
        target.write_bytes(bytes(32))
        spec = FaultSpec("store.spool_write", "corrupt", offset=0)
        with installed(FaultPlan([spec])):
            inject("store.spool_write", path=target)
        mutated = target.read_bytes()
        assert mutated[0] != 0
        assert mutated[1:] == bytes(31)

    def test_corrupt_without_path_context_raises(self):
        plan = FaultPlan([FaultSpec("test.site", "corrupt")])
        with installed(plan):
            with pytest.raises(ValueError, match="path"):
                inject("test.site")

    def test_once_fires_exactly_once_across_plan_instances(self, tmp_path):
        spec = FaultSpec("test.site", "exception", once=True)
        with installed(FaultPlan([spec], token_dir=tmp_path)):
            with pytest.raises(InjectedFault):
                inject("test.site")
        # A fresh plan instance (fresh counters — a respawned worker)
        # sees the claimed token and stays quiet.
        with installed(FaultPlan([spec], token_dir=tmp_path)):
            inject("test.site")


class TestInstallation:
    def test_inject_without_plan_is_a_noop(self):
        inject("worker.start")
        inject("not.wired", path="ignored")
        assert active_plan() is None

    def test_installed_sets_and_clears_plan_and_env(self):
        plan = FaultPlan([FaultSpec("test.site", "delay", delay=0.0)])
        with installed(plan, env=True):
            assert active_plan() is plan
            assert FaultPlan.from_json(os.environ[ENV_VAR]).specs == plan.specs
        assert active_plan() is None
        assert ENV_VAR not in os.environ

    def test_env_plan_loads_lazily_on_first_inject(self, monkeypatch):
        plan = FaultPlan([FaultSpec("test.lazy", "exception")])
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        assert active_plan() is None
        with pytest.raises(InjectedFault):
            inject("test.lazy")
        assert active_plan() is not None

    def test_crash_kind_exits_with_the_crash_status(self):
        plan = FaultPlan([FaultSpec("test.crash", "crash")])
        env = dict(os.environ)
        env[ENV_VAR] = plan.to_json()
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "from repro.faults import inject\n"
            "inject('test.crash')\n"
            "raise SystemExit(99)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True
        )
        assert proc.returncode == CRASH_STATUS


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
