"""Extension bench: exact branch-and-bound vs brute force vs greedy.

Not a paper figure — the paper's only exact multi-tree method is the
flat cut-product scan. The branch-and-bound of
:mod:`repro.algorithms.exact` prunes by tree-additive VL and by the
all-roots feasibility bound; this bench shows how much further into the
Figure 11 sweep exactness stays affordable, and what the greedy's
quality gap against the true optimum looks like.
"""

import pytest

from repro.algorithms.brute_force import brute_force_vvs
from repro.algorithms.exact import exact_forest_vvs
from repro.algorithms.greedy import greedy_vvs
from repro.core.forest import AbstractionForest
from repro.workloads.trees import layered_tree
from benchmarks import common

#: Figure/table benches run minutes at full scale; `-m "not slow"` skips them.
pytestmark = pytest.mark.slow

BRUTE_CAP = 1_000
EXACT_NODE_LIMIT = 200_000


def _series():
    provenance = common.workload_provenance("telephony")
    alphabet = sorted(v for v in provenance.variables if v.startswith("p"))
    chunk = 8
    trees = [
        layered_tree(alphabet[start : start + chunk], (2, 2),
                     prefix=f"part{start // chunk}")
        for start in range(0, len(alphabet) - chunk + 1, chunk)
    ]
    rows = []
    for count in range(2, min(3, len(trees)) + 1):
        forest = AbstractionForest([t.copy() for t in trees[:count]])
        cleaned = forest.clean(provenance)
        bound = common.feasible_bound(provenance, cleaned)
        cuts = cleaned.count_cuts()

        exact_seconds, exact = common.timed(
            exact_forest_vvs, provenance, cleaned, bound, clean=False,
            node_limit=EXACT_NODE_LIMIT,
        )
        greedy_seconds, greedy = common.timed(
            greedy_vvs, provenance, cleaned, bound, clean=False
        )
        if cuts <= BRUTE_CAP:
            brute_seconds, brute = common.timed(
                brute_force_vvs, provenance, cleaned, bound, clean=False
            )
            assert brute.variable_loss == exact.variable_loss
            brute_cell = f"{brute_seconds:.3f}"
        else:
            brute_cell = "-"
        rows.append(
            [count, cuts, f"{exact_seconds:.3f}", exact.variable_loss,
             f"{greedy_seconds:.3f}", greedy.variable_loss, brute_cell]
        )
    return rows


def test_exact_solver_extension(benchmark):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
    common.emit(
        "extension_exact_solver",
        ["#trees", "#cuts", "exact [s]", "VL exact", "greedy [s]",
         "VL greedy", "brute [s]"],
        rows,
        title="Extension — exact B&B vs greedy vs brute force (telephony)",
    )
    for row in rows:
        # The optimum can never lose more variables than the greedy.
        assert row[3] <= row[5]
