"""JSON serialization for provenance artifacts.

The paper's use case ships pre-computed provenance from a capture site
to analysts (§1, "Offline vs. Online Compression"); serialized size is
the communication/storage cost that abstraction reduces. This module
provides a stable JSON round-trip for polynomials, trees, forests and
VVSs, plus byte-size accounting used by the experiment harness.
"""

from __future__ import annotations

import json

from repro.core.forest import AbstractionForest, ValidVariableSet
from repro.core.polynomial import Monomial, Polynomial, PolynomialSet
from repro.core.tree import AbstractionTree

__all__ = [
    "polynomial_to_dict",
    "polynomial_from_dict",
    "polynomial_set_to_dict",
    "polynomial_set_from_dict",
    "tree_to_dict",
    "tree_from_dict",
    "forest_to_dict",
    "forest_from_dict",
    "vvs_to_dict",
    "vvs_from_dict",
    "dumps",
    "loads",
    "serialized_size",
]


def polynomial_to_dict(polynomial):
    """``{"terms": [[coeff, [[var, exp], ...]], ...]}`` (sorted, stable)."""
    return {
        "terms": [
            [coeff, [[var, exp] for var, exp in monomial.powers]]
            for coeff, monomial in polynomial
        ]
    }


def polynomial_from_dict(data):
    """Inverse of :func:`polynomial_to_dict`."""

    return Polynomial(
        (Monomial(powers), coeff) for coeff, powers in data["terms"]
    )


def polynomial_set_to_dict(polynomials):
    """``{"polynomials": [...]}`` — one entry per polynomial."""

    return {"polynomials": [polynomial_to_dict(p) for p in polynomials]}


def polynomial_set_from_dict(data):
    """Inverse of :func:`polynomial_set_to_dict`."""

    return PolynomialSet(polynomial_from_dict(d) for d in data["polynomials"])


def tree_to_dict(tree):
    """Nested ``{"label": ..., "children": [...]}`` (leaves omit children)."""

    def build(node):
        if node.is_leaf:
            return {"label": node.label}
        return {"label": node.label, "children": [build(c) for c in node.children]}

    return build(tree.root)


def tree_from_dict(data):
    """Inverse of :func:`tree_to_dict`."""

    def build(spec):
        if "children" not in spec:
            return spec["label"]
        return (spec["label"], [build(c) for c in spec["children"]])

    return AbstractionTree.from_nested(build(data))


def forest_to_dict(forest):
    """``{"trees": [...]}`` — one nested dict per tree."""

    return {"trees": [tree_to_dict(t) for t in forest]}


def forest_from_dict(data):
    """Inverse of :func:`forest_to_dict`."""

    return AbstractionForest([tree_from_dict(t) for t in data["trees"]])


def vvs_to_dict(vvs):
    """``{"labels": [...]}`` — the cut's chosen labels, sorted."""

    return {"labels": sorted(vvs.labels)}


def vvs_from_dict(data, forest):
    """Rebuild (and re-validate) a VVS against ``forest``."""

    return ValidVariableSet(forest, frozenset(data["labels"]))


_TO_DICT = {
    Polynomial: ("polynomial", polynomial_to_dict),
    PolynomialSet: ("polynomial_set", polynomial_set_to_dict),
    AbstractionTree: ("tree", tree_to_dict),
    AbstractionForest: ("forest", forest_to_dict),
}

_FROM_DICT = {
    "polynomial": polynomial_from_dict,
    "polynomial_set": polynomial_set_from_dict,
    "tree": tree_from_dict,
    "forest": forest_from_dict,
}


def dumps(obj):
    """Serialize a provenance artifact to a tagged JSON string.

    >>> loads(dumps(Polynomial.variable("x"))) == Polynomial.variable("x")
    True
    """
    for cls, (tag, encode) in _TO_DICT.items():
        if isinstance(obj, cls):
            return json.dumps({"kind": tag, "data": encode(obj)}, sort_keys=True)
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def loads(text):
    """Inverse of :func:`dumps`."""
    envelope = json.loads(text)
    kind = envelope.get("kind")
    if kind not in _FROM_DICT:
        raise ValueError(f"unknown payload kind {kind!r}")
    return _FROM_DICT[kind](envelope["data"])


def serialized_size(obj):
    """Size in bytes of the JSON form — the paper's storage/shipping cost."""
    return len(dumps(obj).encode("utf-8"))
