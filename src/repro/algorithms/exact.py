"""Exact multi-tree optimization via branch-and-bound (extension).

The paper solves the NP-hard multi-tree problem either exhaustively
(the Figure 5/11 brute force — a flat scan of the cut product) or
greedily (Algorithm 2, no quality guarantee). This module adds a third
point the paper leaves open: an *exact* solver that is usually far
cheaper than the flat scan, built on two structural facts:

1. **Variable loss is additive across trees.** A variable belongs to
   exactly one tree, and abstraction never empties a monomial
   (Claim 25), so a group's meta-variable is present iff any of its
   leaves was — independent of the other trees' choices. Hence
   ``VL(S) = Σ_t VL_t(S ∩ T_t)``, computable per tree by the
   :class:`~repro.core.abstraction.LossIndex`.
2. **Monomial loss is monotone under coarsening.** Coarsening any one
   tree's cut (fixing the others) only merges more, so the maximal
   achievable loss for a partial choice is obtained by collapsing every
   undecided tree to its root.

The search therefore branches over per-tree cuts in ascending-VL order,
prunes a branch when its VL already matches the incumbent (remaining
trees can only add VL ≥ 0), and prunes infeasible branches via the
all-roots completion bound. Objective-value correctness is guaranteed;
only runtime is heuristic — ``node_limit`` guards pathological cases.
"""

from __future__ import annotations

from repro.core.abstraction import LossIndex, abstract_counts, ensure_set
from repro.core.forest import AbstractionForest, ValidVariableSet
from repro.core.tree import AbstractionTree
from repro.algorithms.result import AbstractionResult, InfeasibleBoundError

__all__ = ["exact_forest_vvs", "SearchBudgetExceededError"]


class SearchBudgetExceededError(RuntimeError):
    """The branch-and-bound visited more nodes than ``node_limit``."""

    def __init__(self, node_limit):
        self.node_limit = node_limit
        super().__init__(
            f"branch-and-bound exceeded {node_limit} nodes; raise node_limit "
            "or fall back to greedy_vvs"
        )


def _tree_cuts_by_vl(polynomials, tree):
    """All cuts of ``tree`` with their (additive) VL, ascending.

    Each entry is ``(vl, labels, mapping)`` where ``mapping`` sends each
    leaf to its representative under the cut.
    """
    index = LossIndex(polynomials, tree)
    entries = []
    for labels in tree.iter_cuts():
        mapping = {}
        for label in labels:
            for leaf in tree.leaves_under(label):
                if leaf != label:
                    mapping[leaf] = label
        entries.append((index.vl_of_cut(labels), labels, mapping))
    entries.sort(key=lambda entry: (entry[0], sorted(entry[1])))
    return entries


def exact_forest_vvs(polynomials, forest, bound, *, clean=True,
                     node_limit=1_000_000):
    """The optimal VVS for a *forest*, by pruned exhaustive search.

    Same contract as :func:`repro.algorithms.brute_force.brute_force_vvs`
    (and tested equivalent to it), but typically visits a small fraction
    of the cut product: branches are cut as soon as their tree-additive
    VL cannot beat the incumbent or their best-case compression (all
    remaining trees collapsed to roots) misses the bound.

    :raises InfeasibleBoundError: when no cut is adequate.
    :raises SearchBudgetExceededError: after ``node_limit`` nodes.
    """
    polynomials = ensure_set(polynomials)
    if isinstance(forest, AbstractionTree):
        forest = AbstractionForest([forest])
    if bound < 1:
        raise ValueError(f"bound must be >= 1, got {bound}")
    if clean:
        forest = forest.clean(polynomials)

    total = polynomials.num_monomials
    if bound >= total or not forest.trees:
        return _result(polynomials, forest, forest.leaf_vvs())

    # Feasibility of the whole instance: the coarsest cut.
    coarsest_mapping = forest.root_vvs().mapping()
    min_size, _ = abstract_counts(polynomials, coarsest_mapping)
    if min_size > bound:
        raise InfeasibleBoundError(bound, min_size)

    trees = forest.trees
    per_tree = [_tree_cuts_by_vl(polynomials, tree) for tree in trees]
    # Root mappings used for the best-case completion of a partial choice.
    root_mappings = []
    for tree in trees:
        root = tree.root.label
        root_mappings.append(
            {leaf: root for leaf in tree.leaf_labels if leaf != root}
        )

    best = {"vl": None, "labels": None}
    visited = {"nodes": 0}

    def completion_mapping(depth, mapping):
        completed = dict(mapping)
        for remaining in range(depth, len(trees)):
            completed.update(root_mappings[remaining])
        return completed

    def search(depth, current_vl, mapping, chosen_labels):
        visited["nodes"] += 1
        if visited["nodes"] > node_limit:
            raise SearchBudgetExceededError(node_limit)
        if best["vl"] is not None and current_vl >= best["vl"]:
            return  # remaining trees only add VL
        if depth == len(trees):
            size, _ = abstract_counts(polynomials, mapping)
            if size <= bound:
                best["vl"] = current_vl
                best["labels"] = frozenset(chosen_labels)
            return
        for vl, labels, cut_mapping in per_tree[depth]:
            if best["vl"] is not None and current_vl + vl >= best["vl"]:
                break  # cuts are VL-ascending: nothing better follows
            branch_mapping = dict(mapping)
            branch_mapping.update(cut_mapping)
            # Best case for this branch: collapse all undecided trees.
            size, _ = abstract_counts(
                polynomials, completion_mapping(depth + 1, branch_mapping)
            )
            if size > bound:
                continue  # even maximal further coarsening misses B
            search(
                depth + 1,
                current_vl + vl,
                branch_mapping,
                chosen_labels | labels,
            )

    search(0, 0, {}, frozenset())
    if best["labels"] is None:
        # Unreachable given the coarsest-cut feasibility check, but be
        # defensive about it rather than return None.
        raise InfeasibleBoundError(bound, min_size)
    vvs = ValidVariableSet(forest, best["labels"], _validated=True)
    return _result(polynomials, forest, vvs)


def _result(polynomials, forest, vvs):
    size, granularity = abstract_counts(polynomials, vvs.mapping())
    return AbstractionResult(
        vvs=vvs,
        monomial_loss=polynomials.num_monomials - size,
        variable_loss=polynomials.num_variables - granularity,
        abstracted_size=size,
        abstracted_granularity=granularity,
    )
