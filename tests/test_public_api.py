"""Meta-tests on the public API surface: exports exist and are documented."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.polynomial",
    "repro.core.parser",
    "repro.core.tree",
    "repro.core.forest",
    "repro.core.abstraction",
    "repro.core.valuation",
    "repro.core.serialize",
    "repro.core.statistics",
    "repro.algorithms",
    "repro.algorithms.optimal",
    "repro.algorithms.greedy",
    "repro.algorithms.brute_force",
    "repro.algorithms.exact",
    "repro.algorithms.competitor",
    "repro.algorithms.decision",
    "repro.algorithms.registry",
    "repro.api",
    "repro.api.session",
    "repro.api.artifact",
    "repro.errors",
    "repro.options",
    "repro.service",
    "repro.service.app",
    "repro.service.store",
    "repro.service.warm",
    "repro.service.batcher",
    "repro.service.http",
    "repro.semiring",
    "repro.engine",
    "repro.engine.sql",
    "repro.scenarios",
    "repro.workloads",
    "repro.workloads.tpch",
    "repro.workloads.induction",
    "repro.hardness",
    "repro.util",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert getattr(module, name, None) is not None, f"{module_name}.{name}"


def test_lazy_exports_are_discoverable():
    """dir(repro) advertises every lazy name, and each one resolves."""
    import repro

    listed = dir(repro)
    for name in ["optimal_vvs", "greedy_vvs", "brute_force_vvs",
                 "Scenario", "ScenarioSuite", "evaluate_scenarios",
                 "serialize", "ProvenanceSession", "CompressedProvenance",
                 "Answer"]:
        assert name in listed, name
        assert name in repro.__all__, name
        assert getattr(repro, name) is not None, name


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_callables_are_documented(module_name):
    """Every exported class and function carries a docstring."""
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        member = getattr(module, name)
        if inspect.isclass(member) or inspect.isfunction(member):
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{module_name}: {undocumented}"


def test_public_methods_are_documented():
    """Public methods of the core classes carry docstrings too."""
    from repro.core import (
        AbstractionForest,
        AbstractionTree,
        Monomial,
        Polynomial,
        PolynomialSet,
        ValidVariableSet,
        Valuation,
    )

    undocumented = []
    for cls in [Monomial, Polynomial, PolynomialSet, AbstractionTree,
                AbstractionForest, ValidVariableSet, Valuation]:
        for name, member in vars(cls).items():
            if name.startswith("_"):
                continue
            if callable(member) or isinstance(member, property):
                target = member.fget if isinstance(member, property) else member
                if not (getattr(target, "__doc__", None) or "").strip():
                    undocumented.append(f"{cls.__name__}.{name}")
    assert not undocumented, undocumented
