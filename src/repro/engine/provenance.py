"""Provenance parameterization policies.

Where variables get placed decides which hypothetical scenarios the
stored provenance can answer (§2.1 lists the two settings):

1. *tuple variables* — one fresh variable per base tuple
   (:meth:`repro.engine.table.Relation.with_tuple_variables`); Boolean
   valuations answer existence what-ifs;
2. *cell parameters* — variables multiplied onto aggregated cells; real
   valuations answer quantitative what-ifs (price changes etc.).

The helpers here build the ``params`` callables the aggregate operator
accepts, including the paper's TPC-H policy ("we used the variable
``si`` if the supplier key ``k mod 128 = i``, and similarly for the
parts variable ``pj``").
"""

from __future__ import annotations

__all__ = ["bucket_variable", "column_variable", "combine_params"]


def bucket_variable(column, prefix, buckets):
    """``row → f"{prefix}{row[column] % buckets}"`` (the TPC-H policy).

    >>> fn = bucket_variable("SUPPKEY", "s", 128)
    >>> fn({"SUPPKEY": 130})
    's2'
    """

    def param(row):
        return f"{prefix}{row[column] % buckets}"

    return param


def column_variable(column, prefix=""):
    """``row → f"{prefix}{row[column]}"`` — one variable per value.

    The running example's month variables are ``column_variable("Mo",
    "m")``: month 3 contributes through ``m3``.
    """

    def param(row):
        return f"{prefix}{row[column]}"

    return param


def combine_params(*parts):
    """Combine per-variable policies into one ``params`` callable.

    Each part is a ``row → variable-name`` callable; the combination
    returns the list the aggregate expects.

    >>> params = combine_params(column_variable("Plan", "plan_"),
    ...                         column_variable("Mo", "m"))
    >>> params({"Plan": "A", "Mo": 3})
    ['plan_A', 'm3']
    """

    def params(row):
        return [part(row) for part in parts]

    return params
