"""Figure 12: Opt VVS vs the Ainy-et-al. competitor, time vs bound.

Paper shape: the competitor ("Prox") slows down sharply as the bound
tightens (each merge re-scans monomial pairs through the oracle), while
Opt VVS is flat; on the two large workloads the competitor did not
finish within 24 hours — reproduced here as a hard skip above a size
cap. Quality-wise the competitor converges close to (but not at) the
optimum.
"""

import pytest

from repro.algorithms.competitor import summarize
from repro.algorithms.optimal import optimal_vvs
from benchmarks import common

#: Figure/table benches run minutes at full scale; `-m "not slow"` skips them.
pytestmark = pytest.mark.slow

FRACTIONS = [0.9, 0.7, 0.5, 0.3]
TREE_FANOUTS = (8,)

#: The paper's 24-hour wall clock, scaled: above this many monomials the
#: pairwise rescans are hopeless and the run is reported as DNF.
COMPETITOR_SIZE_CAP = 2_000


def _series(workload):
    provenance = common.workload_provenance(workload)
    tree = common.workload_tree(workload, TREE_FANOUTS).clean(
        provenance.variables
    )
    rows = []
    for fraction in FRACTIONS:
        bound = common.feasible_bound(provenance, tree, fraction)
        opt_seconds, opt = common.timed(
            optimal_vvs, provenance, tree, bound, clean=False
        )
        if provenance.num_monomials <= COMPETITOR_SIZE_CAP:
            prox_seconds, prox = common.timed(
                summarize, provenance, common.forest_of(tree), bound
            )
            prox_time = f"{prox_seconds:.3f}"
            prox_size = prox.abstracted_size
            prox_calls = prox.oracle_calls
        else:
            prox_time, prox_size, prox_calls = "DNF", "-", "-"
        rows.append(
            [workload, bound, f"{opt_seconds:.3f}", opt.abstracted_size,
             prox_time, prox_size, prox_calls]
        )
    return rows


@pytest.mark.parametrize("workload", ["tpch-q5", "tpch-q1"])
def test_fig12(benchmark, workload):
    """The paper's Figure 12 reports Q5 and Q1 (the others DNF'd)."""
    rows = benchmark.pedantic(_series, args=(workload,), rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
    common.emit(
        f"fig12_{workload}",
        ["workload", "bound", "opt [s]", "opt size", "prox [s]", "prox size",
         "oracle calls"],
        rows,
        title=f"Figure 12 — {workload}: Opt vs competitor [3] vs bound",
    )
    assert rows


@pytest.mark.parametrize("workload", ["tpch-q10", "telephony"])
def test_fig12_large_workloads_dnf(benchmark, workload):
    """The two workloads where [3] timed out in the paper: assert the
    cap triggers (or the run would dominate the whole bench suite)."""

    def probe():
        provenance = common.workload_provenance(workload)
        return provenance.num_monomials

    size = benchmark.pedantic(probe, rounds=1, iterations=1)
    common.emit(
        f"fig12_{workload}_dnf",
        ["workload", "|P|_M", "competitor"],
        [[workload, size, "DNF (paper: >24h)" if size > COMPETITOR_SIZE_CAP
          else "small enough at bench scale"]],
        title=f"Figure 12 — {workload}: competitor feasibility",
    )
