"""The competitor: approximated provenance summarization of Ainy et al.

Reference [3] of the paper (E. Ainy, P. Bourhis, S. B. Davidson,
D. Deutch, T. Milo — "Approximated Summarization of Data Provenance",
CIKM 2015). Their algorithm repeatedly merges the *pair of monomials*
whose merge entails the smallest semantic loss, where an external
**oracle** decides which variables may be unified and at what cost. The
paper's §4 ("Gain of abstraction trees") instantiates that oracle with
the abstraction trees and observes two consequences reproduced here:

* runtime — every iteration rescans candidate monomial pairs, which is
  quadratic per polynomial and grows as the bound shrinks (Figure 12;
  the competitor did not finish the two large workloads within 24 h);
* quality — without the trees' structure the merges are locally greedy
  over monomials, achieving ≈96% of the optimal granularity on the
  workloads where it converged.

This is a faithful-in-spirit reimplementation from the published
description, not the authors' code (which is not available); see
DESIGN.md §5 for the substitution note. The oracle here allows merging
two monomials iff they are identical except that, per tree, their tree
variables can be unified to the variables' least common ancestor; the
oracle's loss for the merge is the number of extra leaves the LCA drags
in (how much of the tree collapses), summed over the trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.abstraction import ensure_set
from repro.core.forest import AbstractionForest
from repro.core.polynomial import Monomial, Polynomial, PolynomialSet
from repro.core.tree import AbstractionTree

__all__ = ["summarize", "CompetitorResult", "TreeOracle"]


class TreeOracle:
    """The black-box oracle of [3], instantiated from abstraction trees.

    ``merge(m1, m2)`` returns ``(merged_key, loss)`` or ``None`` when the
    monomials may not be grouped. Each call is counted — [3]'s cost
    model is oracle-call-bound, and the Figure 12 bench reports it.
    """

    def __init__(self, forest):
        self.forest = forest
        self.calls = 0
        # variable -> (tree index, leaves-below-count cache used for loss)
        self._owner = {}
        self._subtree_leaves = {}
        for tree_number, tree in enumerate(forest):
            for label in tree.labels:
                self._owner[label] = tree_number
                self._subtree_leaves[label] = len(tree.leaves_under(label))

    def merge(self, key_a, key_b):
        """Try to merge two monomial keys (sorted (var, exp) tuples)."""
        self.calls += 1
        if key_a == key_b:
            return None
        plain_a, trees_a = self._split(key_a)
        plain_b, trees_b = self._split(key_b)
        if plain_a != plain_b:
            return None
        if set(trees_a) != set(trees_b):
            return None
        merged = dict(plain_a)
        loss = 0
        for tree_number, (var_a, exp_a) in trees_a.items():
            var_b, exp_b = trees_b[tree_number]
            if exp_a != exp_b:
                return None
            if var_a == var_b:
                merged[var_a] = exp_a
                continue
            tree = self.forest.trees[tree_number]
            lca = tree.lca(var_a, var_b)
            merged[lca] = exp_a
            # Loss = leaves the LCA drags in beyond the two merged nodes'
            # own subtrees (those subtrees are disjoint: the nodes are
            # incomparable, else one key would equal the other).
            loss += (
                self._subtree_leaves[lca]
                - self._subtree_leaves[var_a]
                - self._subtree_leaves[var_b]
            )
        return tuple(sorted(merged.items())), loss

    def _split(self, key):
        plain = []
        trees = {}
        for var, exp in key:
            tree_number = self._owner.get(var)
            if tree_number is None:
                plain.append((var, exp))
            else:
                trees[tree_number] = (var, exp)
        return tuple(plain), trees


@dataclass
class CompetitorResult:
    """Outcome of the pairwise-merge summarization."""

    polynomials: PolynomialSet
    abstracted_size: int
    abstracted_granularity: int
    merges: int
    oracle_calls: int
    converged: bool
    trace: list = field(default_factory=list)


def _best_pair(terms, oracle):
    """The cheapest mergeable pair in one polynomial (or None)."""
    keys = list(terms)
    best = None
    for i, key_a in enumerate(keys):
        for key_b in keys[i + 1 :]:
            outcome = oracle.merge(key_a, key_b)
            if outcome is None:
                continue
            merged, loss = outcome
            rank = (loss, merged)
            if best is None or rank < best[0]:
                best = (rank, key_a, key_b, merged, loss)
    return best


def summarize(polynomials, forest, bound, *, max_iterations=None):
    """Summarize ``polynomials`` to at most ``bound`` monomials, as in [3].

    Repeatedly applies the globally cheapest pairwise merge until the
    bound is met or no merge is allowed by the oracle. Per-polynomial
    best pairs are cached and recomputed only for the modified
    polynomial — the generous reading of [3]'s algorithm; the rescans
    are still quadratic, which is the behaviour Figure 12 contrasts.
    """
    polynomials = ensure_set(polynomials)
    if isinstance(forest, AbstractionTree):
        forest = AbstractionForest([forest])
    if bound < 1:
        raise ValueError(f"bound must be >= 1, got {bound}")

    oracle = TreeOracle(forest)
    # Working form: one {key: coefficient} dict per polynomial.
    working = [
        {monomial.powers: coeff for monomial, coeff in polynomial.terms.items()}
        for polynomial in polynomials
    ]
    best_pairs = [None] * len(working)
    stale = set(range(len(working)))

    merges = 0
    trace = []
    size = sum(len(terms) for terms in working)
    while size > bound:
        if max_iterations is not None and merges >= max_iterations:
            break
        for poly_number in stale:
            best_pairs[poly_number] = _best_pair(working[poly_number], oracle)
        stale.clear()
        candidates = [
            (entry[0], poly_number, entry)
            for poly_number, entry in enumerate(best_pairs)
            if entry is not None
        ]
        if not candidates:
            break
        _, poly_number, (_, key_a, key_b, merged, loss) = min(
            candidates, key=lambda item: (item[0], item[1])
        )
        terms = working[poly_number]
        coefficient = terms.pop(key_a) + terms.pop(key_b)
        if merged in terms:
            terms[merged] += coefficient
        else:
            terms[merged] = coefficient
        merges += 1
        trace.append((poly_number, key_a, key_b, merged, loss))
        stale.add(poly_number)
        size = sum(len(terms) for terms in working)

    summarized = PolynomialSet(
        Polynomial({Monomial(key): coeff for key, coeff in terms.items()})
        for terms in working
    )
    return CompetitorResult(
        polynomials=summarized,
        abstracted_size=summarized.num_monomials,
        abstracted_granularity=summarized.num_variables,
        merges=merges,
        oracle_calls=oracle.calls,
        converged=size <= bound,
        trace=trace,
    )
