"""Hypothetical reasoning over (abstracted) provenance.

Scenario specification, declarative sweep families (grid / one-at-a-time
/ Monte-Carlo), sharded parallel evaluation, top-k and sensitivity
analytics, raw-vs-abstracted speedup and accuracy analysis (Figure 10),
and the §6 sampling-based online compression pipeline.
"""

from repro.scenarios.analysis import (
    SpeedupReport,
    TopKEntry,
    VariableSensitivity,
    approximate_lift,
    assignment_speedup,
    evaluate_scenarios,
    scenario_error,
    sensitivity,
    top_k,
)
from repro.scenarios.parallel import evaluate_scenarios_parallel
from repro.scenarios.sampling import (
    OnlineCompressionResult,
    adapt_bound,
    extrapolate_size,
    online_compress,
    sample_polynomials,
)
from repro.scenarios.scenario import (
    Scenario,
    ScenarioOverlapWarning,
    ScenarioSuite,
)
from repro.scenarios.sweep import Sweep

__all__ = [
    "Scenario",
    "ScenarioOverlapWarning",
    "ScenarioSuite",
    "Sweep",
    "SpeedupReport",
    "TopKEntry",
    "VariableSensitivity",
    "assignment_speedup",
    "approximate_lift",
    "evaluate_scenarios",
    "evaluate_scenarios_parallel",
    "scenario_error",
    "sensitivity",
    "top_k",
    "sample_polynomials",
    "adapt_bound",
    "extrapolate_size",
    "online_compress",
    "OnlineCompressionResult",
]
