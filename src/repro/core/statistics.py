"""Provenance profiling: the measurements that drive abstraction choices.

Before choosing trees and bounds, an analyst needs to know what the
provenance looks like: how sizes distribute over polynomials (the paper
contrasts Q1's "8 polynomials of 11265 monomials" with Q10's "993306
polynomials averaging 15.78"), which variables occur where, and how
densely variables co-occur (dense co-occurrence = compressible). The
CLI's ``inspect`` command and the tree-induction module build on these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.abstraction import ensure_set

__all__ = ["ProvenanceProfile", "profile", "variable_cooccurrence"]


@dataclass
class ProvenanceProfile:
    """Summary statistics of a polynomial multiset."""

    num_polynomials: int
    num_monomials: int
    num_variables: int
    min_polynomial_size: int
    max_polynomial_size: int
    mean_polynomial_size: float
    max_monomial_degree: int
    variable_frequency: dict = field(default_factory=dict)

    @property
    def shape(self):
        """The paper's informal taxonomy: which workload family is this?

        "few-large" (Q1/Q5-like: compression pays) vs "many-small"
        (Q10-like: little to merge) vs "balanced".
        """
        if self.num_polynomials == 0:
            return "empty"
        if self.mean_polynomial_size >= 8 * max(1, self.num_polynomials):
            return "few-large"
        if (
            self.num_polynomials >= 4 * self.mean_polynomial_size
            and self.mean_polynomial_size <= 32
        ):
            return "many-small"
        return "balanced"

    def top_variables(self, count=10):
        """The ``count`` most frequent variables as (name, occurrences)."""
        ranked = sorted(
            self.variable_frequency.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:count]


def profile(polynomials):
    """Compute a :class:`ProvenanceProfile`.

    >>> from repro.core.parser import parse_set
    >>> p = profile(parse_set(["2*a*x + 3*b*x", "a*y^2"]))
    >>> p.num_polynomials, p.num_monomials, p.num_variables
    (2, 3, 4)
    >>> p.max_monomial_degree
    3
    >>> p.variable_frequency["a"]
    2
    """
    polynomials = ensure_set(polynomials)
    sizes = [p.num_monomials for p in polynomials]
    frequency = {}
    max_degree = 0
    for polynomial in polynomials:
        for monomial in polynomial.monomials:
            max_degree = max(max_degree, monomial.degree)
            for var, _ in monomial.powers:
                frequency[var] = frequency.get(var, 0) + 1
    return ProvenanceProfile(
        num_polynomials=len(polynomials),
        num_monomials=polynomials.num_monomials,
        num_variables=polynomials.num_variables,
        min_polynomial_size=min(sizes) if sizes else 0,
        max_polynomial_size=max(sizes) if sizes else 0,
        mean_polynomial_size=(sum(sizes) / len(sizes)) if sizes else 0.0,
        max_monomial_degree=max_degree,
        variable_frequency=frequency,
    )


def variable_cooccurrence(polynomials, variables=None):
    """Residual-context counts: how mergeable is each variable pair?

    For variables ``u``, ``v``, counts the residual monomial contexts
    (the monomial with the variable removed, per polynomial) that
    *both* share — exactly the number of monomial pairs that would merge
    if ``u`` and ``v`` were grouped (and nothing else changed). This is
    the affinity the tree-induction module clusters on.

    Returns ``{(u, v): shared_contexts}`` with ``u < v``.
    """
    polynomials = ensure_set(polynomials)
    if variables is not None:
        variables = set(variables)
    # variable -> set of (poly index, residual key)
    contexts = {}
    for poly_number, polynomial in enumerate(polynomials):
        for monomial in polynomial.monomials:
            for var, exp in monomial.powers:
                if variables is not None and var not in variables:
                    continue
                residual = tuple(
                    sorted(
                        [("\x00", exp)]
                        + [(v, e) for v, e in monomial.powers if v != var]
                    )
                )
                contexts.setdefault(var, set()).add((poly_number, residual))
    pairs = {}
    names = sorted(contexts)
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            shared = len(contexts[u] & contexts[v])
            if shared:
                pairs[(u, v)] = shared
    return pairs
