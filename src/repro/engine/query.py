"""A small fluent query DSL over K-relations.

Examples (the paper's running-example query, §1)::

    result = (Query(calls)
              .join(cust, on=("CID", "ID"))
              .join(plans, on=["Plan", "Mo"])
              .group_by("Zip")
              .sum(lambda r: r["Dur"] * r["Price"],
                   params=lambda r: [plan_var(r["Plan"]), f"m{r['Mo']}"]))

Each step evaluates eagerly and returns a new immutable wrapper, so
intermediate results can be inspected — convenient for tests and for
teaching how annotations propagate.
"""

from __future__ import annotations

from repro.engine import operators
from repro.engine.aggregates import aggregate_sum
from repro.engine.table import Relation

__all__ = ["Query"]


class Query:
    """Fluent positive-relational-algebra builder over a Relation."""

    __slots__ = ("relation",)

    def __init__(self, relation):
        if isinstance(relation, Query):
            relation = relation.relation
        if not isinstance(relation, Relation):
            raise TypeError(f"expected Relation, got {type(relation).__name__}")
        self.relation = relation

    def where(self, predicate):
        """``σ`` — filter rows by ``predicate(row_dict)``."""
        return Query(operators.select(self.relation, predicate))

    def select(self, *columns):
        """``π`` — keep (and order) the given columns."""
        return Query(operators.project(self.relation, list(columns)))

    def rename(self, mapping):
        """``ρ`` — rename columns (old → new)."""
        return Query(operators.rename(self.relation, mapping))

    def extend(self, column, fn):
        """Add a computed column ``fn(row_dict)``."""
        return Query(operators.extend(self.relation, column, fn))

    def join(self, other, on):
        """``⋈`` — equi-join with a Relation or another Query."""
        if isinstance(other, Query):
            other = other.relation
        return Query(operators.join(self.relation, other, on))

    def union(self, other):
        """``∪`` — same-schema union."""
        if isinstance(other, Query):
            other = other.relation
        return Query(operators.union(self.relation, other))

    def group_by(self, *columns):
        """Start an aggregate; finish with ``.sum(...)``."""
        return _GroupedQuery(self.relation, list(columns))

    # ------------------------------------------------------------- results

    def rows(self):
        """The result rows as a sorted list of tuples (annotations dropped)."""
        return sorted(self.relation.rows)

    def annotated_rows(self):
        """Sorted ``(row, annotation)`` pairs."""
        return sorted(self.relation.rows.items(), key=lambda item: item[0])

    def __len__(self):
        return len(self.relation)

    def __repr__(self):
        return f"Query({self.relation!r})"


class _GroupedQuery:
    """Intermediate state between ``group_by`` and the aggregate verb."""

    __slots__ = ("relation", "group_columns")

    def __init__(self, relation, group_columns):
        self.relation = relation
        self.group_columns = group_columns

    def sum(self, value, params=None):
        """``SUM(value)`` per group with optional scenario parameters."""
        return aggregate_sum(self.relation, self.group_columns, value, params)
