"""Service-side resilience primitives: circuit breaker state machine.

The what-if service's failure domain is *per artifact*: a corrupt
``.rpb`` file or a pathological polynomial set makes every map/eval
against that one id fail, while the rest of the store stays healthy.
:class:`CircuitBreaker` keeps that blast radius contained — after
``threshold`` consecutive failures for an id the breaker *opens* and
requests for it are refused outright (503 + ``Retry-After``) instead
of burning an evaluation each time. After ``cooldown`` seconds one
trial request is let through (*half-open*): success closes the
breaker, failure re-opens it for another cooldown.

The breaker is deliberately synchronous and unlocked: the service runs
single-threaded on the event loop, and every transition happens inside
one request handler call.
"""

from __future__ import annotations

import time

from repro.service.http import HttpError

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class _Breaker:
    """Per-key breaker state (consecutive failures + trip clock)."""

    __slots__ = ("state", "failures", "opened_at", "trips")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.trips = 0


class CircuitBreaker:
    """Per-key circuit breaking for repeated map/eval failures.

    :param threshold: consecutive failures that trip a key's breaker.
    :param cooldown: seconds an open breaker refuses requests before
        letting one trial through.
    :param clock: injectable monotonic clock (tests pin time).
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._breakers: dict[str, _Breaker] = {}

    def admit(self, key: str) -> None:
        """Gate a request for ``key``; raise 503 while its breaker is open.

        An open breaker past its cooldown flips to half-open and admits
        the caller as the trial request.
        """
        breaker = self._breakers.get(key)
        if breaker is None or breaker.state == CLOSED:
            return
        if breaker.state == OPEN:
            remaining = breaker.opened_at + self.cooldown - self._clock()
            if remaining > 0:
                raise HttpError(
                    503,
                    f"circuit breaker open for artifact {key} after "
                    f"{breaker.failures} consecutive failures; retry in "
                    f"{remaining:.1f}s",
                    headers={"Retry-After": str(max(1, int(remaining + 1)))},
                )
            breaker.state = HALF_OPEN

    def record_failure(self, key: str) -> None:
        """Count a map/eval failure; trip the breaker at the threshold.

        A failed half-open trial re-opens immediately — one failure is
        enough evidence that the cooldown did not help.
        """
        breaker = self._breakers.setdefault(key, _Breaker())
        breaker.failures += 1
        if breaker.state == HALF_OPEN or breaker.failures >= self.threshold:
            if breaker.state != OPEN:
                breaker.trips += 1
            breaker.state = OPEN
            breaker.opened_at = self._clock()

    def record_success(self, key: str) -> None:
        """A request for ``key`` completed: close and reset its breaker."""
        breaker = self._breakers.get(key)
        if breaker is None:
            return
        breaker.state = CLOSED
        breaker.failures = 0

    def snapshot(self) -> dict:
        """Health-report view: only keys that ever failed appear."""
        return {
            key: {
                "state": breaker.state,
                "consecutive_failures": breaker.failures,
                "trips": breaker.trips,
            }
            for key, breaker in self._breakers.items()
            if breaker.failures or breaker.state != CLOSED or breaker.trips
        }
