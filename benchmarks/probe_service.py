"""CI smoke probe for the what-if service: boot, barrage, verify.

Boots the real server through its CLI entry point (``python -m repro
serve``), creates an artifact over HTTP, fires **50 concurrent
single-scenario asks** from a thread fleet, and verifies every answer
bit-identically against a direct in-process ``ask_many`` over the same
scenarios. Then extends the artifact over HTTP
(``POST /artifacts/{id}/extend``) and asks the *new* artifact id the
same scenarios, verifying against an in-process repair-path
``refresh`` — the live-artifact round trip. Also checks the error
mapping (unknown artifact → 404) and that ``/healthz`` reports the
traffic. Exits non-zero on any mismatch — the CI job gate.

Usage::

    PYTHONPATH=src python benchmarks/probe_service.py
"""

from __future__ import annotations

import http.client
import json
import re
import subprocess
import sys
import tempfile
import threading
import time

from repro.util.retry import RetryPolicy

PROBE_REQUESTS = 50
PROBE_CLIENTS = 10

#: Post-boot readiness: poll ``/healthz`` under capped exponential
#: backoff instead of trusting the first connect — fast when the server
#: is fast, patient on a loaded CI box.
CONNECT_POLICY = RetryPolicy(attempts=8, base_delay=0.05, max_delay=1.0)

POLYNOMIALS = [
    "2*b1*m1 + 3*b2*m1 + b3*m2",
    "b1*m2 + 4*b2*m2 + 2*b3*m1",
    "5*b2*m1 + b3*m1 + b1*m1",
]
FOREST = [["SB", ["b1", "b2", "b3"]], ["SM", ["m1", "m2"]]]
BOUND = 3

#: Appended over HTTP after the barrage — the extend round-trip probe.
EXTEND_POLYNOMIALS = [
    "3*b1*m2 + 2*b2*m1",
    "b3*m2 + 4*b1*m1",
]


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    payload = json.dumps(body).encode() if body is not None else None
    try:
        conn.request(
            method, path, body=payload,
            headers={"Content-Type": "application/json"} if payload else {},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def wait_ready(port):
    """Block until ``/healthz`` answers ``ok`` (retried with backoff)."""

    def healthz():
        status, body = request(port, "GET", "/healthz")
        if status != 200 or body.get("status") != "ok":
            raise ConnectionError(f"healthz not ready: {status} {body}")
        return body

    return CONNECT_POLICY.call(
        healthz, retry_on=(OSError,), token="service-ready"
    )


def boot_server(spool, extra_args=(), env=None):
    """``python -m repro serve`` on an ephemeral port; returns
    ``(process, port)`` once the readiness line appears *and* the
    socket actually serves ``/healthz``."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--spool-dir", spool, *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 30
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise SystemExit(f"server exited early (rc={process.returncode})")
        match = re.search(r"http://[\d.]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            wait_ready(port)
            return process, port
    raise SystemExit(f"server never reported its port (last line: {line!r})")


def expected_answers(scenarios):
    """In-process ground truth: answers before the extend and after an
    identical repair-path ``session.extend``."""
    from repro.api.session import ProvenanceSession
    from repro.core.parser import parse_set

    session = ProvenanceSession.from_strings(
        POLYNOMIALS,
        forest=[(tree[0], tree[1]) for tree in FOREST],
    )
    artifact = session.compress(BOUND, algorithm="greedy")
    before = [
        answer.values
        for answer in artifact.ask_many([dict(s) for s in scenarios])
    ]
    result = session.extend(
        parse_set(EXTEND_POLYNOMIALS), artifact, drift_limit=10.0
    )
    assert result.path == "repaired", result.path
    after = [
        answer.values
        for answer in result.artifact.ask_many([dict(s) for s in scenarios])
    ]
    return before, after


def main():
    scenarios = [
        {"b1": 0.5 + 0.01 * index, "m1": 1.5 - 0.01 * index}
        for index in range(PROBE_REQUESTS)
    ]
    expected, expected_extended = expected_answers(scenarios)

    with tempfile.TemporaryDirectory() as spool:
        process, port = boot_server(spool)
        try:
            status, created = request(port, "POST", "/artifacts", {
                "polynomials": POLYNOMIALS,
                "forest": FOREST,
                "bound": BOUND,
                "algorithm": "greedy",
            })
            assert status == 201, (status, created)
            artifact_id = created["id"]
            print(f"artifact {artifact_id[:16]}… "
                  f"({created['stats']['abstracted_size']} monomials)")

            status, body = request(port, "GET", "/artifacts/" + "f" * 64)
            assert status == 404, (status, body)

            results = [None] * PROBE_REQUESTS
            failures = []

            def client(which):
                try:
                    for index in range(which, PROBE_REQUESTS, PROBE_CLIENTS):
                        status, body = request(
                            port, "POST", f"/artifacts/{artifact_id}/ask",
                            {"scenario": {"changes": scenarios[index]}},
                        )
                        assert status == 200, (status, body)
                        results[index] = tuple(body["answers"][0]["values"])
                except BaseException as error:
                    failures.append(error)

            threads = [
                threading.Thread(target=client, args=(which,))
                for which in range(PROBE_CLIENTS)
            ]
            begin = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            seconds = time.perf_counter() - begin
            if failures:
                raise failures[0]

            mismatched = [
                index for index in range(PROBE_REQUESTS)
                if results[index] != expected[index]
            ]
            assert not mismatched, f"answers diverged at {mismatched}"

            status, health = request(port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok", health
            served = health["requests"]
            assert served >= PROBE_REQUESTS, health
            print(
                f"{PROBE_REQUESTS} concurrent asks in {seconds:.2f}s "
                f"({PROBE_REQUESTS / seconds:.0f} req/s), all bit-identical; "
                f"batches: {health['batcher']['batch_size_histogram']}"
            )

            # Extend-then-ask round trip: the live-artifact path.
            status, extended = request(
                port, "POST", f"/artifacts/{artifact_id}/extend",
                {"polynomials": EXTEND_POLYNOMIALS, "drift_limit": 10.0},
            )
            assert status == 201, (status, extended)
            assert extended["path"] == "repaired", extended
            assert extended["revision"] == 1, extended
            extended_id = extended["id"]
            assert extended_id != artifact_id, "extend must mint a new id"
            for index, scenario in enumerate(scenarios):
                status, body = request(
                    port, "POST", f"/artifacts/{extended_id}/ask",
                    {"scenario": {"changes": scenario}},
                )
                assert status == 200, (status, body)
                answer = tuple(body["answers"][0]["values"])
                assert answer == expected_extended[index], (
                    f"extended answer diverged at scenario {index}"
                )
            # The source artifact is immutable server-side: same id,
            # same answers as before the extend.
            status, body = request(
                port, "POST", f"/artifacts/{artifact_id}/ask",
                {"scenario": {"changes": scenarios[0]}},
            )
            assert status == 200, (status, body)
            assert tuple(body["answers"][0]["values"]) == expected[0]
            print(
                f"extend round trip OK: {extended_id[:16]}… at revision "
                f"{extended['revision']}, {len(scenarios)} asks bit-identical"
            )
        finally:
            process.terminate()
            process.wait(timeout=30)
    print("service probe OK")


if __name__ == "__main__":
    main()
