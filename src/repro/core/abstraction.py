"""Applying abstractions and measuring their losses (§2.3, §4.1).

Central notions:

* ``abstract(P, S)`` — the abstracted provenance ``P↓S``.
* ``monomial_loss`` / ``variable_loss`` — the paper's ``ML``/``VL``:
  ``ML_P(S) = |P|_M − |P↓S|_M`` and ``VL_P(S) = |P|_V − |P↓S|_V``.
* :class:`LossIndex` — the §4.1 optimization: a single pass over the
  polynomials builds, for every leaf ``l`` of a tree and polynomial
  ``P``, the set ``D_P[l]`` of *residual* monomials (the monomial with
  ``l`` replaced by a sentinel that preserves the exponent). The
  monomial loss of any tree node ``v`` with descendant leaves
  ``l₀..l_m`` is then ``Σ_P (Σᵢ|D_P[lᵢ]| − |⋃ᵢ D_P[lᵢ]|)`` — computed
  bottom-up for *all* nodes without re-traversing the polynomials.

Single-tree additivity (the key insight behind Algorithm 1): because a
compatible monomial holds at most one variable of the tree, the sets of
monomials merged by incomparable nodes are disjoint, so ``ML``/``VL`` of
a cut is the *sum* of per-node losses. This does **not** hold across
multiple trees (Example 15) — the greedy algorithm therefore maintains
a working state instead (see :mod:`repro.algorithms.greedy`).
"""

from __future__ import annotations

from repro.core.forest import ValidVariableSet
from repro.core.interning import SENTINEL_ID, VARIABLES
from repro.core.polynomial import Polynomial, PolynomialSet

__all__ = [
    "abstract",
    "monomial_loss",
    "variable_loss",
    "losses",
    "abstract_counts",
    "LossIndex",
]


def ensure_set(polynomials):
    """Normalize a :class:`Polynomial` to a singleton :class:`PolynomialSet`."""
    if isinstance(polynomials, PolynomialSet):
        return polynomials
    if isinstance(polynomials, Polynomial):
        return PolynomialSet([polynomials])
    raise TypeError(f"expected Polynomial(Set), got {type(polynomials).__name__}")


def abstract(polynomials, vvs, backend="auto"):
    """Compute ``P↓S`` for a polynomial or a multiset of polynomials.

    ``backend`` selects the substitution engine for multisets:
    ``"object"`` walks the interned tuples monomial by monomial,
    ``"columnar"`` runs the vectorized id-remap + row-grouping path of
    :class:`repro.core.columnar.ColumnarMultiset`, ``"auto"`` (the
    default) picks by multiset size. The monomial structure is
    count-identical either way; merged *float* coefficients can differ
    in the last bits between backends (the columnar path sums them in
    canonical monomial order — exact types are identical).
    """
    if not isinstance(vvs, ValidVariableSet):
        raise TypeError(f"expected ValidVariableSet, got {type(vvs).__name__}")
    if isinstance(polynomials, PolynomialSet):
        from repro.core.columnar import resolve_backend

        if resolve_backend(backend, polynomials.num_monomials) == "columnar":
            id_mapping = VARIABLES.intern_mapping(vvs.mapping())
            terms = polynomials.columnar().substitute(id_mapping)
            return PolynomialSet(
                Polynomial._raw(poly_terms) for poly_terms in terms
            )
    return polynomials.substitute(vvs.mapping())


def losses(polynomials, vvs, backend="auto"):
    """``(ML_P(S), VL_P(S))`` from a single counting pass.

    :func:`monomial_loss` and :func:`variable_loss` each run the same
    ``abstract_counts`` pass and discard half of it — callers needing
    both measures should use this combined form.
    """
    polynomials = ensure_set(polynomials)
    size, granularity = abstract_counts(
        polynomials, vvs.mapping(), backend=backend
    )
    return (
        polynomials.num_monomials - size,
        polynomials.num_variables - granularity,
    )


def monomial_loss(polynomials, vvs, backend="auto"):
    """``ML_P(S) = |P|_M − |P↓S|_M`` (Example 6: ML(S1)=4, ML(S5)=6)."""
    return losses(polynomials, vvs, backend=backend)[0]


def variable_loss(polynomials, vvs, backend="auto"):
    """``VL_P(S) = |P|_V − |P↓S|_V`` (Example 6: VL(S1)=2, VL(S5)=3)."""
    return losses(polynomials, vvs, backend=backend)[1]


def _substituted_key(monomial, id_mapping):
    """The identity of the substituted monomial as a plain id-key tuple.

    Avoids constructing :class:`Monomial` objects in counting loops;
    ``id_mapping`` maps interned variable ids to ids.
    """
    acc = {}
    for vid, exp in monomial.key:
        target = id_mapping.get(vid, vid)
        acc[target] = acc.get(target, 0) + exp
    return tuple(sorted(acc.items()))


def abstract_counts(polynomials, mapping, backend="auto"):
    """``(|P↓S|_M, |P↓S|_V)`` without materializing ``P↓S``.

    ``mapping`` is a leaf→representative dict as produced by
    :meth:`repro.core.forest.ValidVariableSet.mapping`. The columnar
    backend computes the same counts by a vectorized id-remap and exact
    row grouping (``backend="auto"``, the default, picks it for large
    multisets); results are identical.
    """
    polynomials = ensure_set(polynomials)
    id_mapping = VARIABLES.intern_mapping(mapping)
    from repro.core.columnar import resolve_backend

    if resolve_backend(backend, polynomials.num_monomials) == "columnar":
        return polynomials.columnar().substituted_counts(id_mapping)
    mapped = set(id_mapping)
    total_monomials = 0
    variables = set()
    for polynomial in polynomials:
        if mapped.isdisjoint(polynomial.variable_ids()):
            # Untouched polynomial: counts are the originals.
            total_monomials += polynomial.num_monomials
            variables.update(polynomial.variable_ids())
            continue
        keys = set()
        for monomial in polynomial.monomials:
            key = monomial.key
            if not mapped.isdisjoint(vid for vid, _ in key):
                key = _substituted_key(monomial, id_mapping)
            keys.add(key)
        total_monomials += len(keys)
        for key in keys:
            for vid, _ in key:
                variables.add(vid)
    return total_monomials, len(variables)


class LossIndex:
    """Per-node ``ML``/``VL`` for one abstraction tree (§4.1).

    Built in a single pass over the polynomials plus one bottom-up tree
    traversal. For every node label ``v`` it records:

    * ``ml(v)`` — monomials lost by abstracting exactly the subtree of
      ``v`` into ``v`` (i.e., by the VVS that picks ``v`` and leaves the
      rest of the tree at its leaves);
    * ``vl(v)`` — variables lost by the same choice:
      ``max(0, (#leaves under v occurring in P) − 1)``;
    * ``leaves_present(v)`` — how many leaves under ``v`` occur in ``P``.

    Because of single-tree additivity, for any cut ``C`` of the tree,
    ``ML(C) = Σ_{v∈C} ml(v)`` and ``VL(C) = Σ_{v∈C} vl(v)`` — exposed as
    :meth:`ml_of_cut` / :meth:`vl_of_cut`.

    >>> from repro.core.parser import parse_set
    >>> from repro.core.tree import AbstractionTree
    >>> polys = parse_set(["2*b1*m1 + 3*b1*m3 + 4*b2*m1 + 5*b2*m3 + 6*e*m1"])
    >>> tree = AbstractionTree.from_nested(("B", [("SB", ["b1", "b2"]), "e"]))
    >>> index = LossIndex(polys, tree)
    >>> index.ml("SB")          # b1/b2 pairs on m1 and on m3 merge
    2
    >>> index.ml("B")           # plus the e*m1 / SB*m1 merge
    3
    >>> index.vl("SB"), index.vl("B")
    (1, 2)
    """

    __slots__ = ("tree", "_ml", "_vl", "_present", "_leaf_count")

    def __init__(self, polynomials, tree, backend="auto"):
        polynomials = ensure_set(polynomials)
        self.tree = tree
        self._ml = {}
        self._vl = {}
        self._present = {}
        self._leaf_count = {}
        from repro.core.columnar import resolve_backend

        if resolve_backend(backend, polynomials.num_monomials) == "columnar":
            self._build_columnar(polynomials, tree)
            return
        # Interned view of the leaf alphabet; residual keys replace the
        # (unique, by compatibility) tree variable with SENTINEL_ID.
        leaf_of_id = {
            VARIABLES.intern(label): label for label in tree.leaf_labels
        }
        residuals = {leaf: {} for leaf in tree.leaf_labels}
        for poly_index, polynomial in enumerate(polynomials):
            for monomial in polynomial.monomials:
                leaf = None
                leaf_id = None
                for vid, _ in monomial.key:
                    label = leaf_of_id.get(vid)
                    if label is not None:
                        leaf, leaf_id = label, vid
                        break  # compatibility: at most one per monomial
                if leaf is None:
                    continue
                key = _substituted_key(monomial, {leaf_id: SENTINEL_ID})
                residuals[leaf].setdefault(poly_index, set()).add(key)
        self._build(tree.root, residuals)

    def _build(self, root, residuals):
        # Iterative post-order traversal; merged residual dicts flow up.
        merged = {}  # label -> {poly -> set}, deleted once consumed by parent
        totals = {}  # label -> Σ|D_P[l]| over leaves below
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if not expanded:
                stack.append((node, True))
                for child in node.children:
                    stack.append((child, False))
                continue
            label = node.label
            if node.is_leaf:
                per_poly = residuals.get(label, {})
                total = sum(len(keys) for keys in per_poly.values())
                merged[label] = per_poly
                totals[label] = total
                self._ml[label] = 0
                self._present[label] = 1 if total else 0
                self._leaf_count[label] = 1
            else:
                union = {}
                total = 0
                present = 0
                leaf_count = 0
                for child in node.children:
                    child_sets = merged.pop(child.label)
                    total += totals.pop(child.label)
                    present += self._present[child.label]
                    leaf_count += self._leaf_count[child.label]
                    for poly_index, keys in child_sets.items():
                        existing = union.get(poly_index)
                        if existing is None:
                            union[poly_index] = keys
                        else:
                            if len(existing) < len(keys):
                                union[poly_index], keys = keys, existing
                            union[poly_index].update(keys)
                distinct = sum(len(keys) for keys in union.values())
                merged[label] = union
                totals[label] = total
                self._ml[label] = total - distinct
                self._present[label] = present
                self._leaf_count[label] = leaf_count
            self._vl[label] = max(0, self._present[label] - 1)

    def _build_columnar(self, polynomials, tree):
        """One vectorized pass over the factor arrays (same numbers).

        Residual classes are formed by exact row grouping of the
        ``[poly, member exponent, rest-of-monomial]`` matrices; the
        per-node distinct-residual counts come from an Euler-ordered
        leaf numbering: every node covers a contiguous leaf interval,
        and a ``(leaf, class)`` pair is a duplicate inside the interval
        exactly when its previous same-class occurrence also falls in
        it — a ``searchsorted`` range plus one comparison per pair
        instead of per-monomial ``set()`` unions.
        """
        import numpy

        from repro.core.columnar import run_starts, unique_row_ids

        cm = polynomials.columnar()
        ordered_leaves = [node.label for node in tree.leaves]
        leaf_ids = [VARIABLES.intern(label) for label in ordered_leaves]
        position_of_label = {
            label: pos for pos, label in enumerate(ordered_leaves)
        }
        top = max([cm.max_vid()] + leaf_ids)
        is_leaf = numpy.zeros(top + 2, dtype=bool)
        pos_of_vid = numpy.full(top + 2, -1, dtype=numpy.intp)
        if leaf_ids:
            ids = numpy.asarray(leaf_ids, dtype=numpy.intp)
            is_leaf[ids] = True
            pos_of_vid[ids] = numpy.arange(len(leaf_ids), dtype=numpy.intp)

        frows = cm.factor_rows()
        hits = numpy.flatnonzero(is_leaf[cm.vids])
        # First leaf in key order per row (compatibility: at most one
        # per monomial; ties resolved as the object path does).
        member_flat = hits[run_starts(frows[hits])]
        entry_rows = frows[member_flat]
        entries = len(member_flat)
        member_exp = cm.exps[member_flat]

        # Residual matrix: [poly, member exp, remaining factors padded].
        rest_len = cm.row_lengths[entry_rows] - 1
        width = int(rest_len.max()) if entries else 0
        matrix = numpy.empty((entries, 2 + 2 * width), dtype=numpy.int64)
        matrix[:, 0] = cm.row_poly[entry_rows]
        matrix[:, 1] = member_exp
        if width:
            matrix[:, 2::2] = -2
            matrix[:, 3::2] = 0
            entry_of_row = numpy.full(cm.num_monomials, -1, dtype=numpy.intp)
            entry_of_row[entry_rows] = numpy.arange(entries, dtype=numpy.intp)
            pos_in_row = cm.factor_positions()
            member_pos = numpy.zeros(cm.num_monomials, dtype=numpy.intp)
            member_pos[entry_rows] = pos_in_row[member_flat]
            factor_entry = entry_of_row[frows]
            rest = numpy.flatnonzero(factor_entry >= 0)
            is_member = numpy.zeros(len(cm.vids), dtype=bool)
            is_member[member_flat] = True
            rest = rest[~is_member[rest]]
            slot = pos_in_row[rest] - (
                pos_in_row[rest] > member_pos[frows[rest]]
            )
            matrix[factor_entry[rest], 2 + 2 * slot] = cm.vids[rest]
            matrix[factor_entry[rest], 3 + 2 * slot] = cm.exps[rest]
        classes, num_classes = unique_row_ids(matrix)

        # Deduplicated (leaf position, class) pairs in leaf-major order.
        scale = max(num_classes, 1)
        pair_keys = numpy.unique(
            pos_of_vid[cm.vids[member_flat]].astype(numpy.int64) * scale
            + classes
        )
        pair_pos = pair_keys // scale
        pair_cls = pair_keys % scale
        # Previous same-class pair (as a leaf-major index, -1 if none):
        # a pair is a duplicate within an interval starting at ``s``
        # exactly when prev >= s.
        previous = numpy.full(len(pair_keys), -1, dtype=numpy.int64)
        by_class = numpy.lexsort((pair_pos, pair_cls))
        if len(pair_keys) > 1:
            same = pair_cls[by_class][1:] == pair_cls[by_class][:-1]
            previous[by_class[1:]] = numpy.where(same, by_class[:-1], -1)
        occupied = numpy.unique(pair_pos)

        # Bottom-up: every node covers a contiguous leaf interval.
        intervals = {}
        stack = [(tree.root, False)]
        while stack:
            node, expanded = stack.pop()
            if not expanded:
                stack.append((node, True))
                for child in node.children:
                    stack.append((child, False))
                continue
            label = node.label
            if node.is_leaf:
                lo = position_of_label[label]
                hi = lo + 1
                self._ml[label] = 0
                self._leaf_count[label] = 1
            else:
                lo = min(intervals[child.label][0] for child in node.children)
                hi = max(intervals[child.label][1] for child in node.children)
                start, stop = numpy.searchsorted(pair_pos, (lo, hi))
                self._ml[label] = int(
                    numpy.count_nonzero(previous[start:stop] >= start)
                )
                self._leaf_count[label] = hi - lo
            intervals[label] = (lo, hi)
            left, right = numpy.searchsorted(occupied, (lo, hi))
            self._present[label] = int(right - left)
            self._vl[label] = max(0, self._present[label] - 1)

    # ------------------------------------------------------------- queries

    def ml(self, label):
        """Monomial loss of abstracting the subtree of ``label`` into it."""
        return self._ml[label]

    def vl(self, label):
        """Variable loss of abstracting the subtree of ``label`` into it."""
        return self._vl[label]

    def leaves_present(self, label):
        """How many leaves under ``label`` occur in the polynomials."""
        return self._present[label]

    def leaf_count(self, label):
        """How many leaves the subtree of ``label`` holds (present or not)."""
        return self._leaf_count[label]

    def ml_of_cut(self, labels):
        """``ML`` of a cut of this tree (single-tree additivity)."""
        return sum(self._ml[label] for label in labels)

    def vl_of_cut(self, labels):
        """``VL`` of a cut of this tree (single-tree additivity)."""
        return sum(self._vl[label] for label in labels)

    @property
    def max_ml(self):
        """The largest achievable monomial loss (the root's)."""
        return self._ml[self.tree.root.label]
