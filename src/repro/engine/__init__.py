"""A provenance-aware relational engine (K-relations, SPJU + aggregates).

This is the substrate that *produces* the provenance polynomials the
abstraction framework consumes — the paper assumes such a capture layer
exists (it cites commercial/academic engines); here it is implemented
from scratch: semiring-annotated relations, positive relational algebra,
and SUM-style aggregates that emit parameterized polynomials.
"""

from repro.engine.aggregates import AggregateResult, aggregate_sum, evaluate_aggregate
from repro.engine.operators import extend, join, project, rename, select, union
from repro.engine.provenance import bucket_variable, column_variable, combine_params
from repro.engine.query import Query
from repro.engine.schema import Schema, SchemaError
from repro.engine.sql import SqlError, execute as execute_sql, parse_sql
from repro.engine.table import Relation

__all__ = [
    "Relation",
    "Schema",
    "SchemaError",
    "Query",
    "execute_sql",
    "parse_sql",
    "SqlError",
    "select",
    "project",
    "join",
    "union",
    "rename",
    "extend",
    "aggregate_sum",
    "AggregateResult",
    "evaluate_aggregate",
    "bucket_variable",
    "column_variable",
    "combine_params",
]
