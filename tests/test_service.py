"""Tests for the what-if HTTP service (`repro.service`).

Real sockets, in-process server: each scenario boots the asyncio
service on an ephemeral port and talks to it with ``http.client`` from
worker threads (the tests are synchronous; ``asyncio.run`` hosts the
server per test).
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.api.session import ProvenanceSession
from repro.errors import ArtifactNotFound, SerializeError
from repro.service.app import start_service
from repro.service.batcher import MicroBatcher
from repro.service.store import ArtifactStore
from repro.service.warm import WarmArtifact

POLYNOMIALS = [
    "2*b1*m1 + 3*b2*m1 + b3*m2",
    "b1*m2 + 4*b2*m2 + 2*b3*m1",
]
FOREST = [["SB", ["b1", "b2", "b3"]], ["SM", ["m1", "m2"]]]
SCENARIOS = [
    {"name": "halved", "changes": {"b1": 0.5, "b2": 0.5, "b3": 0.5}},
    {"changes": {"m1": 0.0}},
    {"changes": {"b1": 2.0}},
]


def artifact_body(bound=2, **extra):
    return {"polynomials": POLYNOMIALS, "forest": FOREST, "bound": bound,
            "algorithm": "greedy", **extra}


def call(port, method, path, body=None, raw=None):
    """One HTTP request from the calling thread; returns (status, json)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    payload = raw if raw is not None else (
        json.dumps(body).encode() if body is not None else None
    )
    try:
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"}
                     if payload else {})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def with_server(scenario, **service_kwargs):
    """Boot the service on an ephemeral port, run ``scenario(server)``.

    ``scenario`` is an async callable; client HTTP happens in threads
    via ``asyncio.to_thread`` so the event loop stays free to serve.
    """

    async def main(tmp_path):
        server = await start_service(tmp_path, **service_kwargs)
        try:
            return await scenario(server)
        finally:
            await server.aclose()

    return main


def direct_answers(bound=2):
    """The facade's answers for SCENARIOS — the service's ground truth."""
    session = ProvenanceSession.from_strings(
        POLYNOMIALS,
        forest=[("SB", ["b1", "b2", "b3"]), ("SM", ["m1", "m2"])],
    )
    artifact = session.compress(bound, algorithm="greedy")
    return artifact.ask_many(
        [dict(s["changes"]) for s in SCENARIOS]
    )


class TestEndToEnd:
    def test_create_describe_ask(self, tmp_path):
        async def scenario(server):
            port = server.port
            status, created = await asyncio.to_thread(
                call, port, "POST", "/artifacts", artifact_body())
            assert status == 201
            artifact_id = created["id"]
            assert len(artifact_id) == 64
            assert created["stats"]["mmap_active"] is True
            assert created["stats"]["abstracted_size"] <= 2

            status, described = await asyncio.to_thread(
                call, port, "GET", f"/artifacts/{artifact_id}")
            assert status == 200
            assert described["stats"] == created["stats"]

            status, single = await asyncio.to_thread(
                call, port, "POST", f"/artifacts/{artifact_id}/ask",
                {"scenario": SCENARIOS[0]})
            assert status == 200
            assert single["answers"][0]["name"] == "halved"

            status, batch = await asyncio.to_thread(
                call, port, "POST", f"/artifacts/{artifact_id}/ask",
                {"scenarios": SCENARIOS})
            assert status == 200
            assert [a["name"] for a in batch["answers"]] == [
                "halved", "scenario-1", "scenario-2"]
            return single, batch

        single, batch = asyncio.run(with_server(scenario)(tmp_path))
        want = direct_answers()
        got = [tuple(a["values"]) for a in batch["answers"]]
        assert got == [a.values for a in want]
        assert [a["exact"] for a in batch["answers"]] == [
            a.exact for a in want]
        assert tuple(single["answers"][0]["values"]) == want[0].values

    def test_create_is_idempotent(self, tmp_path):
        async def scenario(server):
            port = server.port
            results = [
                await asyncio.to_thread(
                    call, port, "POST", "/artifacts", artifact_body())
                for _ in range(2)
            ]
            return results

        (s1, first), (s2, second) = asyncio.run(
            with_server(scenario)(tmp_path))
        assert s1 == s2 == 201
        assert first["id"] == second["id"]

    def test_extend_then_ask_round_trip(self, tmp_path):
        async def scenario(server):
            port = server.port
            status, created = await asyncio.to_thread(
                call, port, "POST", "/artifacts", artifact_body(bound=2))
            assert status == 201
            artifact_id = created["id"]

            status, extended = await asyncio.to_thread(
                call, port, "POST", f"/artifacts/{artifact_id}/extend",
                {"polynomials": ["3*b1*m1 + b2*m2"], "drift_limit": 1e9})
            assert status == 201
            assert extended["path"] == "repaired"
            assert extended["revision"] == 1
            assert extended["added_polynomials"] == 1
            assert extended["added_monomials"] == 2
            new_id = extended["id"]
            assert len(new_id) == 64 and new_id != artifact_id
            assert extended["artifact"]["revision"] == 1

            status, answers = await asyncio.to_thread(
                call, port, "POST", f"/artifacts/{new_id}/ask",
                {"scenarios": SCENARIOS})
            assert status == 200
            # The pre-extend artifact still serves under its old id.
            status, old = await asyncio.to_thread(
                call, port, "POST", f"/artifacts/{artifact_id}/ask",
                {"scenarios": SCENARIOS})
            assert status == 200
            return answers, old

        answers, old = asyncio.run(with_server(scenario)(tmp_path))
        # Ground truth: extend the same session's artifact through the API.
        session = ProvenanceSession.from_strings(
            POLYNOMIALS + ["3*b1*m1 + b2*m2"],
            forest=[("SB", ["b1", "b2", "b3"]), ("SM", ["m1", "m2"])],
        )
        # Same cut: the service repaired under the original artifact's
        # VVS, which re-compressing the base provenance reproduces.
        base = ProvenanceSession.from_strings(
            POLYNOMIALS,
            forest=[("SB", ["b1", "b2", "b3"]), ("SM", ["m1", "m2"])],
        )
        artifact = base.compress(2, algorithm="greedy")
        from repro.core.abstraction import abstract

        want = [
            tuple(value for value in answer.values)
            for answer in type(artifact)(
                abstract(session.polynomials, artifact.vvs),
                artifact.forest, artifact.vvs,
                algorithm=artifact.algorithm, bound=artifact.bound,
                original_size=session.polynomials.num_monomials,
                original_granularity=session.polynomials.num_variables,
                monomial_loss=0, variable_loss=0,
            ).ask_many([dict(s["changes"]) for s in SCENARIOS])
        ]
        assert [tuple(a["values"]) for a in answers["answers"]] == want
        assert [tuple(a["values"]) for a in old["answers"]] == [
            a.values for a in direct_answers()]

    def test_extend_drift_overflow_is_422(self, tmp_path):
        async def scenario(server):
            port = server.port
            _, created = await asyncio.to_thread(
                call, port, "POST", "/artifacts", artifact_body(bound=2))
            artifact_id = created["id"]
            return await asyncio.to_thread(
                call, port, "POST", f"/artifacts/{artifact_id}/extend",
                {"polynomials": ["z1*w1 + z2*w2 + z3*w3"],
                 "drift_limit": 0.0})

        status, body = asyncio.run(with_server(scenario)(tmp_path))
        assert status == 422
        assert "drift" in body["error"]["message"] or (
            "bound" in body["error"]["message"])

    def test_extend_malformed_bodies_are_400(self, tmp_path):
        async def scenario(server):
            port = server.port
            _, created = await asyncio.to_thread(
                call, port, "POST", "/artifacts", artifact_body(bound=2))
            artifact_id = created["id"]
            cases = []
            for body in (
                {},  # missing polynomials
                {"polynomials": []},  # empty
                {"polynomials": [7]},  # not strings
                {"polynomials": ["b1*m1"], "drift_limit": "lots"},
            ):
                status, _ = await asyncio.to_thread(
                    call, port, "POST",
                    f"/artifacts/{artifact_id}/extend", body)
                cases.append(status)
            status, _ = await asyncio.to_thread(
                call, port, "GET", f"/artifacts/{artifact_id}/extend")
            cases.append(status)
            return cases

        assert asyncio.run(with_server(scenario)(tmp_path)) == [
            400, 400, 400, 400, 405]

    def test_healthz_reports_counters(self, tmp_path):
        async def scenario(server):
            port = server.port
            await asyncio.to_thread(
                call, port, "POST", "/artifacts", artifact_body())
            return await asyncio.to_thread(call, port, "GET", "/healthz")

        status, health = asyncio.run(with_server(scenario)(tmp_path))
        assert status == 200
        assert health["status"] == "ok"
        assert health["store"]["resident"] == 1
        assert health["store"]["spooled"] == 1
        assert "batch_size_histogram" in health["batcher"]


class TestCoalescing:
    def test_concurrent_asks_share_one_evaluator_call(
        self, tmp_path, monkeypatch
    ):
        """K concurrent single-scenario requests inside the window are
        answered by exactly one ``WarmArtifact.ask_many`` call."""
        calls = []
        real_ask_many = WarmArtifact.ask_many

        def counting_ask_many(self, scenarios, default=1.0, *, options=None):
            scenarios = list(scenarios)
            calls.append(len(scenarios))
            return real_ask_many(
                self, scenarios, default=default, options=options)

        monkeypatch.setattr(WarmArtifact, "ask_many", counting_ask_many)
        concurrency = 6

        async def scenario(server):
            port = server.port
            status, created = await asyncio.to_thread(
                call, port, "POST", "/artifacts", artifact_body())
            assert status == 201
            artifact_id = created["id"]
            calls.clear()  # ignore any warming traffic

            # Explicit threads: asyncio.to_thread's default pool is
            # too small on 1-CPU boxes to host a Barrier this wide.
            barrier = threading.Barrier(concurrency)
            results = [None] * concurrency

            def one(index):
                barrier.wait()
                results[index] = call(
                    port, "POST", f"/artifacts/{artifact_id}/ask",
                    {"scenario": {"changes": {"b1": 0.25 * (index + 1)}}})

            threads = [
                threading.Thread(target=one, args=(index,))
                for index in range(concurrency)
            ]
            for thread in threads:
                thread.start()
            while any(thread.is_alive() for thread in threads):
                await asyncio.sleep(0.01)
            return results, dict(server.service.batcher.batch_sizes)

        results, histogram = asyncio.run(
            # A generous window: every request lands inside one batch.
            with_server(scenario, window=0.25)(tmp_path))
        assert [status for status, _ in results] == [200] * concurrency
        assert calls == [concurrency]
        assert histogram == {concurrency: 1}
        # Coalesced answers match what a direct (uncoalesced) ask returns.
        values = {
            json.dumps(body["answers"][0]["values"]) for _, body in results
        }
        assert len(values) == concurrency  # distinct scenarios, distinct rows

    def test_zero_window_disables_coalescing(self, tmp_path):
        async def scenario(server):
            port = server.port
            status, created = await asyncio.to_thread(
                call, port, "POST", "/artifacts", artifact_body())
            artifact_id = created["id"]
            for index in range(3):
                status, _ = await asyncio.to_thread(
                    call, port, "POST", f"/artifacts/{artifact_id}/ask",
                    {"scenario": {"changes": {"b1": 0.5}}})
                assert status == 200
            return dict(server.service.batcher.batch_sizes)

        histogram = asyncio.run(with_server(scenario, window=0)(tmp_path))
        assert histogram == {1: 3}


class TestStoreLru:
    def build_artifact(self, seed):
        session = ProvenanceSession.from_strings(
            [f"{seed}*b1*m1 + 3*b2*m1", "b1*m2 + b3*m2"],
            forest=[("SB", ["b1", "b2", "b3"]), ("SM", ["m1", "m2"])],
        )
        return session.compress(2, algorithm="greedy")

    def test_eviction_and_remap_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path, capacity=1)
        first = store.put(self.build_artifact(2))
        baseline = store.get(first).ask({"b1": 0.5}).values
        second = store.put(self.build_artifact(5))
        assert store.stats()["evictions"] == 1
        assert store.stats()["resident"] == 1
        assert store.stats()["spooled"] == 2
        # The evicted artifact re-maps from its spool file on demand...
        warm = store.get(first)
        assert store.stats()["misses"] == 1
        assert warm.artifact.mmap_active is True
        # ...with identical answers, and evicts the other one in turn.
        assert warm.ask({"b1": 0.5}).values == baseline
        assert store.stats()["evictions"] == 2
        assert second in store  # spooled, not resident

    def test_lru_order_is_by_use(self, tmp_path):
        store = ArtifactStore(tmp_path, capacity=2)
        first = store.put(self.build_artifact(2))
        second = store.put(self.build_artifact(5))
        store.get(first)  # promote: now `second` is the LRU entry
        store.put(self.build_artifact(7))
        resident = set(store._entries)
        assert first in resident
        assert second not in resident

    def test_put_is_content_addressed(self, tmp_path):
        store = ArtifactStore(tmp_path, capacity=4)
        artifact = self.build_artifact(2)
        assert store.put(artifact) == store.put(artifact)
        assert store.stats()["spooled"] == 1

    def test_capacity_validated(self, tmp_path):
        with pytest.raises(ValueError, match="capacity"):
            ArtifactStore(tmp_path, capacity=0)


class TestErrorPaths:
    def test_unknown_and_invalid_ids_are_404(self, tmp_path):
        async def scenario(server):
            port = server.port
            return (
                await asyncio.to_thread(
                    call, port, "GET", "/artifacts/" + "0" * 64),
                await asyncio.to_thread(
                    call, port, "GET", "/artifacts/not-a-hash"),
                await asyncio.to_thread(
                    call, port, "POST", "/artifacts/" + "0" * 64 + "/ask",
                    {"scenario": {"changes": {"b1": 0.5}}}),
            )

        (s1, b1), (s2, b2), (s3, b3) = asyncio.run(
            with_server(scenario)(tmp_path))
        assert (s1, s2, s3) == (404, 404, 404)
        for body in (b1, b2, b3):
            assert body["error"]["status"] == 404

    def test_malformed_bodies_are_400(self, tmp_path):
        async def scenario(server):
            port = server.port
            status, created = await asyncio.to_thread(
                call, port, "POST", "/artifacts", artifact_body())
            artifact_id = created["id"]
            ask = f"/artifacts/{artifact_id}/ask"
            return (
                await asyncio.to_thread(
                    call, port, "POST", "/artifacts", raw=b"{not json"),
                await asyncio.to_thread(
                    call, port, "POST", "/artifacts", {"bound": 2}),
                await asyncio.to_thread(
                    call, port, "POST", "/artifacts",
                    artifact_body(bound="two")),
                await asyncio.to_thread(call, port, "POST", ask, {"x": 1}),
                await asyncio.to_thread(
                    call, port, "POST", ask,
                    {"scenario": {"changes": {"b1": "lots"}}}),
                await asyncio.to_thread(
                    call, port, "POST", ask,
                    {"scenario": SCENARIOS[0], "scenarios": SCENARIOS}),
            )

        for status, body in asyncio.run(with_server(scenario)(tmp_path)):
            assert status == 400
            assert body["error"]["status"] == 400
            assert body["error"]["message"]

    def test_infeasible_bound_is_422(self, tmp_path):
        async def scenario(server):
            # Two polynomials can never abstract below two monomials —
            # on a single tree, "auto" resolves to the bound-enforcing
            # optimal solver (greedy is best-effort) and must reject
            # bound=1 as infeasible.
            return await asyncio.to_thread(
                call, server.port, "POST", "/artifacts", {
                    "polynomials": ["30*gold", "5*silver"],
                    "forest": [["plans", ["gold", "silver"]]],
                    "bound": 1,
                    "algorithm": "auto",
                })

        status, body = asyncio.run(with_server(scenario)(tmp_path))
        assert status == 422
        assert "InfeasibleBound" in body["error"]["message"]

    def test_wrong_content_hash_is_rejected(self, tmp_path):
        async def scenario(server):
            port = server.port
            status, created = await asyncio.to_thread(
                call, port, "POST", "/artifacts", artifact_body())
            artifact_id = created["id"]
            # Evict the resident copy, then tamper with the spool file.
            server.service.store._entries.clear()
            path = server.service.store.path_of(artifact_id)
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))
            return await asyncio.to_thread(
                call, port, "GET", f"/artifacts/{artifact_id}")

        status, body = asyncio.run(with_server(scenario)(tmp_path))
        assert status == 400
        assert "content hash mismatch" in body["error"]["message"]

    def test_method_not_allowed_is_405(self, tmp_path):
        async def scenario(server):
            return (
                await asyncio.to_thread(
                    call, server.port, "DELETE", "/healthz"),
                await asyncio.to_thread(
                    call, server.port, "GET", "/artifacts"),
            )

        (s1, _), (s2, _) = asyncio.run(with_server(scenario)(tmp_path))
        assert (s1, s2) == (405, 405)

    def test_post_without_length_is_411(self, tmp_path):
        async def scenario(server):
            port = server.port

            def raw():
                import socket

                with socket.create_connection(
                    ("127.0.0.1", port), timeout=10
                ) as sock:
                    sock.sendall(b"POST /artifacts HTTP/1.1\r\n\r\n")
                    return sock.recv(4096)

            return await asyncio.to_thread(raw)

        reply = asyncio.run(with_server(scenario)(tmp_path))
        assert b"411" in reply.split(b"\r\n", 1)[0]


class TestShutdown:
    def test_drain_answers_parked_requests(self, tmp_path):
        """A request parked in an open batch is answered, not dropped,
        when the server shuts down."""

        async def scenario(server):
            port = server.port
            status, created = await asyncio.to_thread(
                call, port, "POST", "/artifacts", artifact_body())
            artifact_id = created["id"]
            parked = asyncio.ensure_future(asyncio.to_thread(
                call, port, "POST", f"/artifacts/{artifact_id}/ask",
                {"scenario": SCENARIOS[0]}))
            # Let the request reach the batcher and park there.
            while server.service.batcher.pending == 0:
                await asyncio.sleep(0.01)
            await server.aclose()
            return await parked

        # A window far longer than the test: only drain() can flush it.
        status, body = asyncio.run(
            with_server(scenario, window=30.0)(tmp_path))
        assert status == 200
        assert tuple(body["answers"][0]["values"]) == direct_answers()[0].values

    def test_closing_server_rejects_new_requests(self, tmp_path):
        async def scenario(server):
            port = server.port
            server.service.closing = True
            return await asyncio.to_thread(call, port, "GET", "/healthz")

        status, body = asyncio.run(with_server(scenario)(tmp_path))
        assert status == 503
        assert body["error"]["status"] == 503


class TestBatcher:
    """Loop-level unit tests for the coalescing primitive."""

    def test_window_coalesces_and_fans_out(self):
        async def scenario():
            batcher = MicroBatcher(window=0.05, max_batch=64)
            evaluate = lambda items: [item * 10 for item in items]
            results = await asyncio.gather(*(
                batcher.submit("key", value, evaluate) for value in range(5)
            ))
            return results, batcher.batch_sizes, batcher.coalesced

        results, sizes, coalesced = asyncio.run(scenario())
        assert results == [0, 10, 20, 30, 40]
        assert sizes == {5: 1}
        assert coalesced == 5

    def test_max_batch_flushes_early(self):
        async def scenario():
            batcher = MicroBatcher(window=30.0, max_batch=2)
            evaluate = lambda items: list(items)
            return await asyncio.gather(*(
                batcher.submit("key", value, evaluate) for value in range(4)
            )), batcher.batch_sizes

        results, sizes = asyncio.run(scenario())
        assert results == [0, 1, 2, 3]
        assert sizes == {2: 2}

    def test_evaluator_failure_fans_out(self):
        async def scenario():
            batcher = MicroBatcher(window=0.01)

            def explode(items):
                raise RuntimeError("boom")

            waits = [
                batcher.submit("key", value, explode) for value in range(3)
            ]
            return await asyncio.gather(*waits, return_exceptions=True)

        results = asyncio.run(scenario())
        assert len(results) == 3
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_keys_do_not_share_batches(self):
        async def scenario():
            batcher = MicroBatcher(window=0.05)
            evaluate = lambda items: list(items)
            results = await asyncio.gather(
                batcher.submit("a", 1, evaluate),
                batcher.submit("b", 2, evaluate),
            )
            return results, batcher.batch_sizes

        results, sizes = asyncio.run(scenario())
        assert results == [1, 2]
        assert sizes == {1: 2}

    def test_max_batch_validated(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(max_batch=0)


class TestWarmArtifact:
    """The warm lift index is bit-identical to the facade."""

    def build(self, bound=2):
        session = ProvenanceSession.from_strings(
            POLYNOMIALS,
            forest=[("SB", ["b1", "b2", "b3"]), ("SM", ["m1", "m2"])],
        )
        return session.compress(bound, algorithm="greedy")

    def test_answers_match_facade(self):
        artifact = self.build()
        warm = WarmArtifact(artifact)
        suite = [
            {"b1": 0.5, "b2": 0.5, "b3": 0.5},   # uniform -> exact
            {"b1": 2.0},                          # non-uniform -> approx
            {"m1": 0.0, "m2": 3.0},               # other cut
            {},                                   # all-default
            {"b1": 0.1, "b2": 0.1, "b3": 0.7, "m1": 2.0},
        ]
        for default in (1.0, 0.0, 0.1, 2.5):
            want = artifact.ask_many(suite, default=default)
            got = warm.ask_many(suite, default=default)
            assert [(a.name, a.values, a.exact) for a in got] == [
                (a.name, a.values, a.exact) for a in want]

    def test_named_scenarios_keep_names(self):
        from repro.scenarios.scenario import Scenario

        artifact = self.build()
        warm = WarmArtifact(artifact)
        answers = warm.ask_many([Scenario("mine", {"b1": 0.5})])
        assert answers[0].name == "mine"
        assert answers[0] == artifact.ask_many(
            [Scenario("mine", {"b1": 0.5})])[0]


class TestStoreErrors:
    def test_invalid_id_raises_artifact_not_found(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ArtifactNotFound, match="invalid artifact id"):
            store.get("nope")
        with pytest.raises(ArtifactNotFound, match="no artifact"):
            store.get("0" * 64)

    def test_tampered_file_raises_serialize_error(self, tmp_path):
        store = ArtifactStore(tmp_path, capacity=1)
        session = ProvenanceSession.from_strings(
            POLYNOMIALS,
            forest=[("SB", ["b1", "b2", "b3"]), ("SM", ["m1", "m2"])],
        )
        artifact_id = store.put(session.compress(2, algorithm="greedy"))
        store._entries.clear()
        path = store.path_of(artifact_id)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SerializeError, match="content hash mismatch"):
            store.get(artifact_id)
