"""Registry of abstraction-selection algorithms, plus the ``auto`` policy.

The CLI, the :mod:`repro.api` session facade and external callers all
need to pick a solver by name. This registry is the single source of
truth: the built-in solvers (Algorithm 1's DP, Algorithm 2's greedy,
the brute-force baseline) self-register here, and new strategies plug
in with the :func:`register` decorator::

    from repro.algorithms.registry import register

    @register("my-strategy")
    def my_vvs(polynomials, forest, bound, **kwargs):
        ...

Every registered callable follows the common solver contract
``fn(polynomials, forest_or_tree, bound, **kwargs) ->
:class:`~repro.algorithms.result.AbstractionResult`` (``optimal``
additionally accepts a one-tree forest, so the uniform call shape
works for all of them). The facade forwards the compression-engine
knob as ``backend="object" | "columnar" | "auto"`` (see
:mod:`repro.core.columnar`) to every solver whose signature can
receive it (a ``backend`` parameter or ``**kwargs``) — new solvers
should accept it; legacy solvers without it keep working, they just
never see the knob.

``"auto"`` is not a registered algorithm but a *policy* resolved by
:func:`choose`: when the (cleaned) forest is a single tree compatible
with the provenance, the PTIME dynamic program finds the optimal cut —
use it; any larger forest makes the problem NP-hard (Proposition 11),
so fall back to the incremental greedy heuristic.
"""

from __future__ import annotations

from repro.algorithms.brute_force import brute_force_vvs
from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from repro.core.abstraction import ensure_set
from repro.core.forest import AbstractionForest
from repro.core.tree import AbstractionTree

__all__ = ["register", "get", "names", "available", "choose", "resolve",
           "UnknownAlgorithmError", "AUTO"]

#: The policy name accepted everywhere an algorithm name is (resolved
#: per-input by :func:`choose`, never stored in the registry itself).
AUTO = "auto"

_REGISTRY = {}


class UnknownAlgorithmError(KeyError):
    """Requested algorithm name is not in the registry."""

    def __init__(self, name):
        self.name = name
        super().__init__(
            f"unknown algorithm {name!r}; "
            f"registered: {', '.join(names())} (plus the {AUTO!r} policy)"
        )

    def __str__(self):
        # KeyError.__str__ repr()s the message; keep it readable.
        return self.args[0]


def register(name):
    """Class-/function-decorator adding a solver under ``name``.

    The callable is stored as-is (``get(name)`` returns the identical
    object), so registration never changes behaviour of direct imports.
    Re-registering a taken name raises ``ValueError`` — shadowing a
    built-in silently would make ``compress`` results untraceable.
    """
    name = str(name)

    def decorator(fn):
        if name in _REGISTRY and _REGISTRY[name] is not fn:
            raise ValueError(f"algorithm {name!r} is already registered")
        if name == AUTO:
            raise ValueError(f"{AUTO!r} is reserved for the selection policy")
        _REGISTRY[name] = fn
        return fn

    return decorator


def get(name):
    """The registered callable for ``name`` (KeyError-compatible)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAlgorithmError(name) from None


def names():
    """Sorted registered algorithm names (without ``"auto"``)."""
    return sorted(_REGISTRY)


def available():
    """Every name accepted by :func:`resolve`: the registry + ``auto``."""
    return sorted(_REGISTRY) + [AUTO]


def choose(polynomials, forest):
    """The ``auto`` policy: pick an algorithm name for this input.

    A single compatible tree (after footnote-1 cleaning) admits the
    optimal PTIME dynamic program; everything else gets the incremental
    greedy. The choice only reads the input — it never runs a solver.
    """
    polynomials = ensure_set(polynomials)
    if isinstance(forest, AbstractionTree):
        forest = AbstractionForest([forest])
    cleaned = forest.clean(polynomials)
    if len(cleaned.trees) == 1 and cleaned.is_compatible(polynomials):
        return "optimal"
    return "greedy"


def resolve(name, polynomials=None, forest=None):
    """``(resolved_name, callable)`` for ``name``, expanding ``auto``.

    ``auto`` requires ``polynomials`` and ``forest`` (the policy is
    input-dependent); concrete names resolve without them.
    """
    if name == AUTO:
        if polynomials is None or forest is None:
            raise ValueError(
                "resolving 'auto' needs the polynomials and the forest"
            )
        name = choose(polynomials, forest)
    return name, get(name)


# The built-in solvers. Applied-decorator form keeps the registered
# objects identical to the public functions (asserted by tests).
register("optimal")(optimal_vvs)
register("greedy")(greedy_vvs)
register("brute-force")(brute_force_vvs)
