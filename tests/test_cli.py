"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core import serialize
from repro.core.forest import AbstractionForest
from repro.core.tree import AbstractionTree
from repro.workloads.telephony import example13_polynomials, plans_tree


@pytest.fixture
def files(tmp_path):
    provenance_path = tmp_path / "provenance.json"
    provenance_path.write_text(serialize.dumps(example13_polynomials()))
    forest_path = tmp_path / "forest.json"
    forest_path.write_text(
        serialize.dumps(AbstractionForest([plans_tree()]))
    )
    return tmp_path, str(provenance_path), str(forest_path)


class TestInspect:
    def test_reports_measures(self, files, capsys):
        _, provenance, _ = files
        assert main(["inspect", provenance]) == 0
        out = capsys.readouterr().out
        assert "monomials (|P|_M):  14" in out
        assert "variables (|P|_V):  9" in out

    def test_wrong_payload_kind(self, files):
        _, _, forest = files
        with pytest.raises(SystemExit):
            main(["inspect", forest])


class TestCompress:
    def test_optimal_compress_roundtrip(self, files, capsys):
        tmp_path, provenance, forest = files
        output = str(tmp_path / "compressed.json")
        vvs_output = str(tmp_path / "cut.json")
        code = main([
            "compress", provenance, forest, "--bound", "9",
            "--algorithm", "optimal", "--output", output,
            "--vvs-output", vvs_output,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "14 -> 8" in out
        compressed = serialize.loads(open(output).read())
        assert compressed.num_monomials == 8
        cut = json.load(open(vvs_output))
        assert set(cut["labels"]) == {"SB", "Special", "e", "p1"}

    def test_greedy_compress(self, files, capsys):
        _, provenance, forest = files
        assert main([
            "compress", provenance, forest, "--bound", "9",
            "--algorithm", "greedy",
        ]) == 0
        assert "size:" in capsys.readouterr().out

    def test_backend_knob_is_output_identical(self, files, capsys):
        """--backend columnar/object print byte-identical reports."""
        _, provenance, forest = files
        reports = {}
        for backend in ("object", "columnar"):
            assert main([
                "compress", provenance, forest, "--bound", "4",
                "--algorithm", "greedy", "--backend", backend,
            ]) == 0
            reports[backend] = capsys.readouterr().out
        assert reports["object"] == reports["columnar"]
        assert "selected VVS:" in reports["object"]

    def test_infeasible_bound_exits(self, files):
        _, provenance, forest = files
        with pytest.raises(SystemExit, match="infeasible"):
            main([
                "compress", provenance, forest, "--bound", "1",
                "--algorithm", "optimal",
            ])

    def test_optimal_rejects_multiple_trees(self, files, tmp_path):
        _, provenance, _ = files
        two_trees = tmp_path / "two.json"
        two_trees.write_text(serialize.dumps(AbstractionForest([
            AbstractionTree.from_nested(("A", ["p1", "p2"])),
            AbstractionTree.from_nested(("B", ["m1", "m3"])),
        ])))
        with pytest.raises(SystemExit, match="NP-hard"):
            main([
                "compress", provenance, str(two_trees), "--bound", "9",
                "--algorithm", "optimal",
            ])

    def test_auto_reports_resolved_algorithm(self, files, capsys):
        _, provenance, forest = files
        assert main([
            "compress", provenance, forest, "--bound", "9",
            "--algorithm", "auto",
        ]) == 0
        # A single-tree forest resolves to the optimal DP.
        assert "algorithm:     optimal" in capsys.readouterr().out


class TestBinaryFormat:
    def test_rpb_extension_writes_binary(self, files, capsys, tmp_path):
        """--artifact *.rpb defaults to the binary container; ask
        auto-detects it by magic bytes."""
        from repro.core import binfmt

        _, provenance, forest = files
        artifact = str(tmp_path / "artifact.rpb")
        assert main([
            "compress", provenance, forest, "--bound", "9",
            "--algorithm", "optimal", "--artifact", artifact,
        ]) == 0
        assert binfmt.is_binary(artifact)
        capsys.readouterr()
        assert main([
            "ask", artifact, "--set", "b1=0.8", "--set", "b2=0.8",
        ]) == 0
        assert "polynomial[0]" in capsys.readouterr().out

    def test_format_flag_overrides_extension(self, files, capsys, tmp_path):
        from repro.core import binfmt

        _, provenance, forest = files
        artifact = str(tmp_path / "artifact.json")
        assert main([
            "compress", provenance, forest, "--bound", "9",
            "--algorithm", "optimal", "--artifact", artifact,
            "--format", "bin",
        ]) == 0
        assert binfmt.is_binary(artifact)

    def test_both_formats_answer_identically(self, files, capsys, tmp_path):
        _, provenance, forest = files
        outputs = {}
        for fmt in ("json", "bin"):
            artifact = str(tmp_path / f"artifact-{fmt}")
            assert main([
                "compress", provenance, forest, "--bound", "9",
                "--algorithm", "optimal", "--artifact", artifact,
                "--format", fmt,
            ]) == 0
            capsys.readouterr()
            assert main(["ask", artifact, "--set", "p1=0.5"]) == 0
            outputs[fmt] = capsys.readouterr().out
        assert outputs["json"] == outputs["bin"]

    def test_sweep_accepts_binary_artifact(self, files, capsys, tmp_path):
        _, provenance, forest = files
        artifact = str(tmp_path / "artifact.rpb")
        main([
            "compress", provenance, forest, "--bound", "9",
            "--algorithm", "optimal", "--artifact", artifact,
        ])
        capsys.readouterr()
        assert main([
            "sweep", artifact, "--oaat", "all",
            "--multipliers", "0.5,1.5", "--top-k", "3",
        ]) == 0
        assert "compressed artifact" in capsys.readouterr().out

    def test_corrupt_binary_exits_cleanly(self, tmp_path):
        bad = tmp_path / "bad.rpb"
        bad.write_bytes(b"RPROVBIN" + b"\x00" * 4)
        with pytest.raises(SystemExit):
            main(["ask", str(bad), "--set", "p1=0.5"])


class TestAsk:
    def test_compress_ask_pipeline(self, files, capsys, tmp_path):
        """compress --artifact then ask: the file-shaped session flow."""
        _, provenance, forest = files
        artifact = str(tmp_path / "artifact.json")
        assert main([
            "compress", provenance, forest, "--bound", "9",
            "--algorithm", "optimal", "--artifact", artifact,
        ]) == 0
        capsys.readouterr()
        # Uniform on every group of the cut -> exact.
        assert main([
            "ask", artifact, "--set", "b1=0.8", "--set", "b2=0.8",
            "--name", "business-discount",
        ]) == 0
        out = capsys.readouterr().out
        assert "business-discount (exact):" in out
        assert "polynomial[0]" in out and "polynomial[1]" in out

    def test_ask_suite_file(self, files, capsys, tmp_path):
        _, provenance, forest = files
        artifact = str(tmp_path / "artifact.json")
        main([
            "compress", provenance, forest, "--bound", "9",
            "--algorithm", "optimal", "--artifact", artifact,
        ])
        suite = tmp_path / "suite.json"
        suite.write_text(json.dumps({"scenarios": [
            {"name": "all-business", "changes": {"b1": 1.2, "b2": 1.2, "e": 1.2}},
            {"name": "b1-only", "changes": {"b1": 1.2}},
        ]}))
        capsys.readouterr()
        assert main(["ask", artifact, "--suite", str(suite)]) == 0
        out = capsys.readouterr().out
        assert "all-business (exact):" in out
        assert "b1-only (approximate):" in out

    def test_ask_rejects_non_mapping_changes(self, files, capsys, tmp_path):
        _, provenance, forest = files
        artifact = str(tmp_path / "artifact.json")
        main([
            "compress", provenance, forest, "--bound", "9",
            "--algorithm", "optimal", "--artifact", artifact,
        ])
        suite = tmp_path / "suite.json"
        suite.write_text(json.dumps(
            {"scenarios": [{"name": "bad", "changes": "m1=0.8"}]}
        ))
        with pytest.raises(SystemExit, match='"changes" mapping'):
            main(["ask", artifact, "--suite", str(suite)])

    def test_ask_requires_scenarios(self, files, tmp_path):
        _, provenance, forest = files
        artifact = str(tmp_path / "artifact.json")
        main([
            "compress", provenance, forest, "--bound", "9",
            "--algorithm", "optimal", "--artifact", artifact,
        ])
        with pytest.raises(SystemExit, match="nothing to ask"):
            main(["ask", artifact])

    def test_ask_rejects_non_artifact(self, files):
        _, provenance, _ = files
        with pytest.raises(SystemExit, match="expected a CompressedProvenance"):
            main(["ask", provenance, "--set", "m1=0.5"])


class TestValuate:
    def test_identity_valuation(self, files, capsys):
        _, provenance, _ = files
        assert main(["valuate", provenance]) == 0
        out = capsys.readouterr().out
        assert "polynomial[0] = 917.25" in out

    def test_scenario_valuation(self, files, capsys):
        _, provenance, _ = files
        assert main(["valuate", provenance, "--set", "m1=0"]) == 0
        out = capsys.readouterr().out
        # Killing January leaves only the March monomials of P1.
        assert "polynomial[0] = 451.15" in out

    def test_bad_assignment_syntax(self, files):
        _, provenance, _ = files
        with pytest.raises(SystemExit, match="name=value"):
            main(["valuate", provenance, "--set", "m1:0.5"])

    def test_non_numeric_value(self, files):
        _, provenance, _ = files
        with pytest.raises(SystemExit, match="not a number"):
            main(["valuate", provenance, "--set", "m1=abc"])


class TestDecide:
    def test_positive(self, files):
        _, provenance, forest = files
        assert main([
            "decide", provenance, forest,
            "--size", "8", "--granularity", "6",
        ]) == 0

    def test_negative(self, files):
        _, provenance, forest = files
        assert main([
            "decide", provenance, forest,
            "--size", "2", "--granularity", "9",
        ]) == 1


class TestBench:
    def test_tiny_bench_writes_json(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        assert main([
            "bench", "--tiny", "--quiet", "--repeat", "1",
            "--output", str(output),
        ]) == 0
        document = json.loads(output.read_text())
        assert document["schema"] == "repro-bench-core/8"
        entry = document["runs"]["tiny"]
        assert entry["mode"] == "tiny"
        results = entry["results"]
        assert set(results) == {
            "greedy", "optimal", "abstraction", "batch_valuation",
            "sweep", "sweep_delta", "compress_scale", "incremental",
            "artifact_io", "session", "service",
        }
        assert results["greedy"]["speedup"] > 0
        assert results["compress_scale"]["speedup"] > 0
        assert results["compress_scale"]["algorithm"] == "greedy"
        assert results["incremental"]["speedup"] > 0
        assert results["incremental"]["path"] == "repaired"
        assert results["incremental"]["revision"] == 1
        assert results["incremental"]["added_monomials"] > 0
        assert results["artifact_io"]["speedup"] > 0
        assert results["artifact_io"]["json_bytes"] > 0
        assert results["artifact_io"]["bin_bytes"] > 0
        assert results["batch_valuation"]["max_abs_error"] < 1e-6
        assert results["sweep"]["max_abs_error"] == 0.0
        assert results["sweep"]["workers"] >= 2
        assert results["sweep_delta"]["max_abs_error"] == 0.0
        assert results["sweep_delta"]["speedup"] > 0
        assert results["sweep_delta"]["auto_engine"] == "delta"
        assert results["session"]["algorithm"] == "greedy"
        assert results["session"]["artifact_bytes"] > 0
        assert results["session"]["exact_answers"] >= 0

    def test_check_passes_against_own_run(self, tmp_path):
        """A run checked against its own freshly-written JSON passes.

        Tiny-mode timings are a few ms, so back-to-back runs can
        honestly differ well beyond the default tolerance on a noisy
        box — this test exercises the gate machinery, not perf, and
        widens the tolerance accordingly.
        """
        output = tmp_path / "bench.json"
        assert main([
            "bench", "--tiny", "--quiet", "--repeat", "1",
            "--output", str(output),
        ]) == 0
        assert main([
            "bench", "--tiny", "--quiet", "--repeat", "1",
            "--output", str(output), "--check", str(output),
            "--tolerance", "0.75",
        ]) == 0

    def test_check_fails_on_regressed_baseline(self, tmp_path, capsys):
        """A baseline demanding impossible speedups trips the gate."""
        output = tmp_path / "bench.json"
        assert main([
            "bench", "--tiny", "--quiet", "--repeat", "1",
            "--output", str(output),
        ]) == 0
        document = json.loads(output.read_text())
        document["runs"]["tiny"]["results"]["greedy"]["speedup"] = 1e9
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(document))
        code = main([
            "bench", "--tiny", "--quiet", "--repeat", "1",
            "--check", str(baseline),
        ])
        assert code == 1
        assert "greedy.speedup regressed" in capsys.readouterr().err

    def test_stage_filter_runs_and_merges_partially(self, tmp_path):
        """--stage runs a subset; later filtered runs merge, not replace."""
        output = tmp_path / "bench.json"
        assert main([
            "bench", "--tiny", "--quiet", "--repeat", "1",
            "--output", str(output), "--stage", "greedy",
        ]) == 0
        document = json.loads(output.read_text())
        assert set(document["runs"]["tiny"]["results"]) == {"greedy"}
        assert main([
            "bench", "--tiny", "--quiet", "--repeat", "1",
            "--output", str(output), "--stage", "compress_scale",
        ]) == 0
        document = json.loads(output.read_text())
        assert set(document["runs"]["tiny"]["results"]) == {
            "greedy", "compress_scale",
        }
        # The gate only checks the stages that ran (tiny timings are
        # jittery — the wide tolerance keeps this a machinery test).
        assert main([
            "bench", "--tiny", "--quiet", "--repeat", "1",
            "--stage", "greedy", "--check", str(output),
            "--tolerance", "0.75",
        ]) == 0

    def test_check_rejects_missing_mode(self, tmp_path, capsys):
        """The gate is strictly same-mode: no smoke baseline, no pass."""
        output = tmp_path / "bench.json"
        assert main([
            "bench", "--tiny", "--quiet", "--repeat", "1",
            "--output", str(output),
        ]) == 0
        document = json.loads(output.read_text())
        del document["runs"]["tiny"]
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(document))
        code = main([
            "bench", "--tiny", "--quiet", "--repeat", "1",
            "--check", str(baseline),
        ])
        assert code == 1


class TestSweep:
    def test_oaat_sweep_reports_top_k(self, files, capsys):
        _, provenance, _ = files
        assert main([
            "sweep", provenance, "--oaat", "all",
            "--multipliers", "0.8,1.2", "--top-k", "3", "--sensitivity",
        ]) == 0
        out = capsys.readouterr().out
        assert "top 3 by total value:" in out
        assert "sensitivity" in out

    def test_grid_sweep_counts_cartesian_product(self, files, capsys):
        _, provenance, _ = files
        assert main([
            "sweep", provenance,
            "--grid", "plans=b1,b2", "--grid", "months=m1,m3",
            "--multipliers", "0.5,1.0,2.0", "--top-k", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "grid, 9 scenarios" in out

    def test_random_sweep_against_artifact(self, files, tmp_path, capsys):
        _, provenance, forest = files
        artifact = str(tmp_path / "artifact.json")
        assert main([
            "compress", provenance, forest, "--bound", "9",
            "--artifact", artifact,
        ]) == 0
        capsys.readouterr()
        assert main([
            "sweep", artifact, "--random", "20", "--seed", "3",
            "--top-k", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "(compressed artifact)" in out
        assert "random, 20 scenarios" in out
        assert "seed:        3" in out

    def test_random_sweep_echoes_default_seed(self, files, capsys):
        """Reproducible from the report alone: the seed is printed even
        when the user never passed --seed."""
        _, provenance, _ = files
        assert main(["sweep", provenance, "--random", "5"]) == 0
        assert "seed:        0" in capsys.readouterr().out

    def test_non_random_sweep_prints_no_seed(self, files, capsys):
        _, provenance, _ = files
        assert main([
            "sweep", provenance, "--oaat", "all", "--multipliers", "0.8",
        ]) == 0
        assert "seed:" not in capsys.readouterr().out

    def test_engine_flag_reports_and_agrees(self, files, capsys):
        _, provenance, _ = files
        reports = {}
        for engine in ("dense", "delta", "auto"):
            assert main([
                "sweep", provenance, "--oaat", "all",
                "--multipliers", "0.8,1.2", "--top-k", "3",
                "--engine", engine, "--sensitivity",
            ]) == 0
            out = capsys.readouterr().out
            if engine == "auto":
                # The resolved engine is reported; for the 14-monomial
                # telephony input the affected-monomial heuristic picks
                # dense (delta needs volume to amortize its per-scenario
                # bookkeeping — test_delta_engine pins the policy).
                assert "engine:      dense (auto)" in out
            else:
                assert f"engine:      {engine}" in out
            # Drop the timing line: everything else must not depend on
            # the engine (the engines are bit-identical).
            reports[engine] = [
                line for line in out.splitlines()
                if not line.startswith("evaluated:")
                and not line.startswith("engine:")
            ]
        assert reports["dense"] == reports["delta"] == reports["auto"]

    def test_grid_requires_multipliers(self, files):
        _, provenance, _ = files
        with pytest.raises(SystemExit):
            main(["sweep", provenance, "--grid", "g=b1,b2"])

    def test_bad_grid_spec(self, files):
        _, provenance, _ = files
        with pytest.raises(SystemExit):
            main(["sweep", provenance, "--grid", "nogroup",
                  "--multipliers", "0.5"])


class TestServe:
    def test_negative_deadline_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="--deadline must be >= 0"):
            main(["serve", "--spool-dir", str(tmp_path), "--deadline", "-1"])

    def test_negative_max_pending_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="--max-pending must be >= 0"):
            main(["serve", "--spool-dir", str(tmp_path),
                  "--max-pending", "-5"])
