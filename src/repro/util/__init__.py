"""Shared utilities: deterministic RNG, timing helpers, table formatting."""

from repro.util.rng import derive_rng, derive_seed
from repro.util.tables import format_table
from repro.util.timing import Timer, time_call

__all__ = ["derive_rng", "derive_seed", "format_table", "Timer", "time_call"]
