"""Deterministic random number generation.

Every generator in this repository (telephony data, TPC-H data, random
polynomials, random trees) accepts an integer seed and derives
sub-generators by *name* so that adding a new randomized component never
perturbs the values drawn by existing ones.
"""

import hashlib
import random

__all__ = ["derive_seed", "derive_rng"]


def derive_seed(seed, name):
    """Derive a stable 64-bit sub-seed from ``seed`` and a component name.

    The derivation uses SHA-256 rather than Python's ``hash`` so results
    are stable across interpreter runs and versions.

    >>> derive_seed(42, "calls") == derive_seed(42, "calls")
    True
    >>> derive_seed(42, "calls") != derive_seed(42, "plans")
    True
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(seed, name):
    """Return a ``random.Random`` seeded from ``derive_seed(seed, name)``."""
    return random.Random(derive_seed(seed, name))
