"""Provenance-parameterized TPC-H queries (§4.2).

The paper runs the non-nested TPC-H queries and reports on Q1, Q5 and
Q10 ("representative … large number of provenance polynomials, each
containing a large number of monomials; the observed trends for the
other queries were similar"); Q3 and Q6 are included as two more of the
non-nested suite.

Parameterization (the paper's choice): "We introduced suppliers
variables si and parts pi variables for 0 ≤ i ≤ 127, and parameterized
the discount attribute of the LINEITEMS table based on the SUPPKEY and
PARTKEY attributes, where we used the variable si if the suppliers key
k mod 128 = i, and similarly for the parts variable pj."

Concretely, each lineitem's revenue contribution
``extprice · (1 − disc)`` becomes the two-term polynomial

    extprice  −  extprice · disc · s_{suppkey mod 128} · p_{partkey mod 128}

so valuating all variables at 1 recovers the plain answer, while e.g.
``s₃ = 1.1`` asks "what if supplier-bucket 3's discounts grew by 10%?".
A group's polynomial therefore holds one constant monomial plus one
monomial per distinct (sᵢ, pⱼ) combination — which is exactly the
``128·k + 1`` shape behind the paper's "each one of size 11265" note
for Q1.
"""

from __future__ import annotations

from repro.core.polynomial import Polynomial, PolynomialSet
from repro.engine.aggregates import AggregateResult, aggregate_sum
from repro.engine.query import Query
from repro.workloads.trees import layered_tree

__all__ = [
    "SUPPLIER_BUCKETS",
    "PART_BUCKETS",
    "supplier_variables",
    "part_variables",
    "supplier_tree",
    "part_tree",
    "q1_pricing_summary",
    "q3_shipping_priority",
    "q5_local_supplier_volume",
    "q6_forecast_revenue",
    "q10_returned_items",
    "query_provenance",
    "discount_params",
]

#: The paper's bucket counts for discount parameterization.
SUPPLIER_BUCKETS = 128
PART_BUCKETS = 128


def supplier_variables(buckets=SUPPLIER_BUCKETS):
    """``s0..s{buckets-1}``."""
    return [f"s{i}" for i in range(buckets)]


def part_variables(buckets=PART_BUCKETS):
    """``p0..p{buckets-1}``."""
    return [f"p{i}" for i in range(buckets)]


def supplier_tree(fanouts=(8,), buckets=SUPPLIER_BUCKETS):
    """The supplier abstraction tree of Figure 4 (layered over si)."""
    return layered_tree(supplier_variables(buckets), fanouts, prefix="sup")


def part_tree(fanouts=(8,), buckets=PART_BUCKETS):
    """The parts abstraction tree (layered over pi)."""
    return layered_tree(part_variables(buckets), fanouts, prefix="part")


def discount_params(buckets=(SUPPLIER_BUCKETS, PART_BUCKETS)):
    """The paper's parameterization: sᵢ by suppkey mod, pⱼ by partkey mod.

    ``buckets`` shrinks the variable alphabets — useful at small scale
    factors, where 128×128 combinations would leave every polynomial too
    sparse to compress (the 10 GB runs are dense; see EXPERIMENTS.md).
    """
    supplier_buckets, part_buckets = buckets

    def params(row):
        return [
            f"s{row['L_SUPPKEY'] % supplier_buckets}",
            f"p{row['L_PARTKEY'] % part_buckets}",
        ]

    return params


def _parameterized_revenue(relation, group_by, factor=None,
                           buckets=(SUPPLIER_BUCKETS, PART_BUCKETS)):
    """``Σ extprice·f − Σ extprice·disc·f·sᵢ·pⱼ`` per group.

    ``factor(row)`` optionally scales both terms (Q1's charge uses
    ``1 + tax``). Groups missing from either partial sum contribute 0.
    """

    def base_value(row):
        scale = 1.0 if factor is None else factor(row)
        return row["L_EXTENDEDPRICE"] * scale

    def discount_value(row):
        scale = 1.0 if factor is None else factor(row)
        return -row["L_EXTENDEDPRICE"] * row["L_DISCOUNT"] * scale

    base = aggregate_sum(relation, group_by, base_value)
    discount = aggregate_sum(relation, group_by, discount_value,
                             params=discount_params(buckets))
    groups = {}
    for key in set(base.groups) | set(discount.groups):
        total = Polynomial.zero()
        if key in base.groups:
            total = total + base.groups[key]
        if key in discount.groups:
            total = total + discount.groups[key]
        groups[key] = total
    return AggregateResult(group_by, groups)


def q1_pricing_summary(db, ship_date=19981201,
                       buckets=(SUPPLIER_BUCKETS, PART_BUCKETS)):
    """TPC-H Q1: pricing summary report.

    Returns ``{aggregate_name: AggregateResult}`` for the two
    parameterized aggregates (``sum_disc_price`` and ``sum_charge``),
    grouped by return flag and line status — 4 groups × 2 aggregates =
    the paper's 8 polynomials.
    """
    filtered = Query(db.lineitem).where(
        lambda row: row["L_SHIPDATE"] <= ship_date
    ).relation
    group_by = ["L_RETURNFLAG", "L_LINESTATUS"]
    return {
        "sum_disc_price": _parameterized_revenue(
            filtered, group_by, buckets=buckets
        ),
        "sum_charge": _parameterized_revenue(
            filtered, group_by, factor=lambda row: 1.0 + row["L_TAX"],
            buckets=buckets,
        ),
    }


def q3_shipping_priority(db, segment="BUILDING", cutoff=19950315,
                         buckets=(SUPPLIER_BUCKETS, PART_BUCKETS)):
    """TPC-H Q3: unshipped orders' revenue by order (many small groups)."""
    joined = (
        Query(db.customer)
        .where(lambda row: row["C_MKTSEGMENT"] == segment)
        .join(db.orders, on=("C_CUSTKEY", "O_CUSTKEY"))
        .where(lambda row: row["O_ORDERDATE"] < cutoff)
        .join(db.lineitem, on=("O_ORDERKEY", "L_ORDERKEY"))
        .where(lambda row: row["L_SHIPDATE"] > cutoff)
        .relation
    )
    return _parameterized_revenue(
        joined, ["O_ORDERKEY", "O_ORDERDATE", "O_SHIPPRIORITY"],
        buckets=buckets,
    )


def q5_local_supplier_volume(db, region=None, order_year=None,
                             buckets=(SUPPLIER_BUCKETS, PART_BUCKETS)):
    """TPC-H Q5: revenue by nation from local suppliers.

    ``region=None`` aggregates over all 25 nations — matching the
    paper's observed "25 polynomials" for Q5 (the spec's single-region
    filter would leave 5); pass ``region="ASIA"`` for the spec form.
    """
    q = (
        Query(db.customer)
        .join(db.orders, on=("C_CUSTKEY", "O_CUSTKEY"))
        .join(db.lineitem, on=("O_ORDERKEY", "L_ORDERKEY"))
        .join(db.supplier, on=("L_SUPPKEY", "S_SUPPKEY"))
        # "local": the supplier and the customer share a nation.
        .where(lambda row: row["C_NATIONKEY"] == row["S_NATIONKEY"])
        .join(db.nation, on=("S_NATIONKEY", "N_NATIONKEY"))
        .join(db.region, on=("N_REGIONKEY", "R_REGIONKEY"))
    )
    if region is not None:
        q = q.where(lambda row: row["R_NAME"] == region)
    if order_year is not None:
        low = order_year * 10000
        high = (order_year + 1) * 10000
        q = q.where(lambda row: low <= row["O_ORDERDATE"] < high)
    return _parameterized_revenue(q.relation, ["N_NAME"], buckets=buckets)


def q6_forecast_revenue(db, year=1994, discount=0.06, band=0.01,
                        max_quantity=24,
                        buckets=(SUPPLIER_BUCKETS, PART_BUCKETS)):
    """TPC-H Q6: forecast revenue change — a single parameterized sum.

    Q6's aggregate *is* the discount amount (``Σ extprice·disc``), so
    every monomial carries scenario variables; there is no constant
    term. Returns an :class:`AggregateResult` with the single group
    ``()``.
    """
    low = year * 10000
    high = (year + 1) * 10000
    filtered = Query(db.lineitem).where(
        lambda row: low <= row["L_SHIPDATE"] < high
        and discount - band <= row["L_DISCOUNT"] <= discount + band
        and row["L_QUANTITY"] < max_quantity
    ).relation
    return aggregate_sum(
        filtered,
        [],
        lambda row: row["L_EXTENDEDPRICE"] * row["L_DISCOUNT"],
        params=discount_params(buckets),
    )


def q10_returned_items(db, quarter_start=19931001,
                       buckets=(SUPPLIER_BUCKETS, PART_BUCKETS)):
    """TPC-H Q10: lost revenue from returned items, by customer.

    One polynomial per customer with returns — the paper's "large
    number of polynomials [with a] small number of monomials" workload
    (993,306 polynomials averaging 15.78 monomials at 10 GB).
    """
    quarter_end = quarter_start + 300  # three months in yyyymmdd encoding
    joined = (
        Query(db.customer)
        .join(db.orders, on=("C_CUSTKEY", "O_CUSTKEY"))
        .where(lambda row: quarter_start <= row["O_ORDERDATE"] < quarter_end)
        .join(db.lineitem, on=("O_ORDERKEY", "L_ORDERKEY"))
        .where(lambda row: row["L_RETURNFLAG"] == "R")
        .join(db.nation, on=("C_NATIONKEY", "N_NATIONKEY"))
        .relation
    )
    return _parameterized_revenue(
        joined, ["C_CUSTKEY", "C_NAME", "C_ACCTBAL", "N_NAME"],
        buckets=buckets,
    )


def query_provenance(db, query,
                     buckets=(SUPPLIER_BUCKETS, PART_BUCKETS)):
    """Uniform access: the provenance PolynomialSet of a named query.

    ``query`` ∈ {"q1", "q3", "q5", "q6", "q10"}. Q1 concatenates its two
    aggregates' polynomials (8 total), matching how the paper counts.
    """
    if query == "q1":
        results = q1_pricing_summary(db, buckets=buckets)
        polynomials = PolynomialSet()
        for name in sorted(results):
            for _, polynomial in results[name]:
                polynomials.append(polynomial)
        return polynomials
    if query == "q3":
        return q3_shipping_priority(db, buckets=buckets).polynomials
    if query == "q5":
        return q5_local_supplier_volume(db, buckets=buckets).polynomials
    if query == "q6":
        return q6_forecast_revenue(db, buckets=buckets).polynomials
    if query == "q10":
        return q10_returned_items(db, buckets=buckets).polynomials
    raise ValueError(f"unknown query {query!r}; expected q1/q3/q5/q6/q10")
