"""One knob object for every evaluation entry point.

The public surface grew its tuning knobs one at a time — ``workers=``
landed with the process pool, ``engine=`` with the delta evaluator,
``backend=`` with the columnar core, ``chunk_size=`` with block
streaming — and each facade method threaded whichever subset it had
heard of. :class:`EvalOptions` replaces that drift with a single frozen
dataclass accepted (and forwarded) everywhere::

    from repro import EvalOptions

    opts = EvalOptions(engine="delta", workers=2)
    artifact.ask_many(suite, options=opts)
    top_k(artifact.polynomials, sweep, k=5, options=opts)

The legacy keywords keep working on every entry point that ever had
them, but raise :class:`DeprecationWarning` and cannot be mixed with
``options=`` (that is a :class:`TypeError` — silently preferring one
would hide a bug). Lint rule RPL009 keeps the contract honest: every
public eval entry point must accept ``options=``.

None of the knobs change results — engines, backends, workers and
chunking are bit-identical by contract; options only steer *how* the
same numbers get computed.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping
from dataclasses import dataclass, fields, replace
from typing import Union

__all__ = ["EvalOptions", "resolve_options"]


@dataclass(frozen=True, slots=True)
class EvalOptions:
    """Evaluation knobs, bundled. Frozen — share instances freely.

    :param engine: batch-evaluation strategy — ``"dense"`` (full
        revaluation per scenario), ``"delta"`` (baseline + sparse
        updates), or ``"auto"`` (pick by scenario sparsity; see
        :func:`repro.core.batch.choose_engine`).
    :param backend: compression data layout — ``"object"`` (tuple
        walking), ``"columnar"`` (flat NumPy arrays), or ``"auto"``.
        Only compression entry points consume it; evaluation ignores it.
    :param workers: shard batch evaluation across this many worker
        processes; ``None``/``0``/``1`` stay in process.
    :param chunk_size: scenarios per worker task when sharding;
        ``None`` lets the pool pick.

    Every knob is validated eagerly so a typo fails at construction,
    not deep inside a worker process.
    """

    engine: str = "auto"
    backend: str = "auto"
    workers: int | None = None
    chunk_size: int | None = None

    _ENGINES = ("dense", "delta", "auto")
    _BACKENDS = ("object", "columnar", "auto")

    def __post_init__(self) -> None:
        if self.engine not in self._ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{self._ENGINES}"
            )
        if self.backend not in self._BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{self._BACKENDS}"
            )
        if self.workers is not None and self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers!r}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {self.chunk_size!r}"
            )

    # ------------------------------------------------------------- coercion

    @classmethod
    def coerce(cls, options: OptionsLike) -> EvalOptions:
        """Normalize ``None`` / mapping / :class:`EvalOptions` to an instance.

        ``None`` means "all defaults" (a shared instance — the class is
        frozen, so sharing is safe); mappings are keyword-expanded::

            >>> EvalOptions.coerce(None).engine
            'auto'
            >>> EvalOptions.coerce({"workers": 2}).workers
            2
        """
        if options is None:
            return _DEFAULTS
        if isinstance(options, cls):
            return options
        if isinstance(options, Mapping):
            return cls(**options)
        raise TypeError(
            "options must be an EvalOptions, a mapping of its fields, or "
            f"None; got {type(options).__name__}"
        )

    def with_(self, **changes: object) -> EvalOptions:
        """A copy with ``changes`` applied (validated like construction)."""
        return replace(self, **changes)


#: Anything :meth:`EvalOptions.coerce` accepts.
OptionsLike = Union[EvalOptions, Mapping, None]

_DEFAULTS = EvalOptions()

_FIELD_NAMES = tuple(f.name for f in fields(EvalOptions))


def resolve_options(
    options: OptionsLike = None,
    *,
    where: str,
    stacklevel: int = 3,
    **legacy: object,
) -> EvalOptions:
    """The deprecation shim behind every migrated entry point.

    ``legacy`` holds the entry point's historical knob keywords
    (``engine=``, ``workers=``, …) with ``None`` meaning "not passed"
    — every legacy knob's old default either was ``None`` or is the
    :class:`EvalOptions` default, so ``None`` sentinels lose nothing.
    Passing a legacy knob warns :class:`DeprecationWarning` (attributed
    to the *caller* of the entry point via ``stacklevel``); mixing
    legacy knobs with ``options=`` is a :class:`TypeError`.
    """
    passed = {
        name: value for name, value in legacy.items() if value is not None
    }
    unknown = set(passed) - set(_FIELD_NAMES)
    if unknown:
        raise TypeError(
            f"{where}: unknown legacy option keyword(s) {sorted(unknown)}"
        )
    if not passed:
        return EvalOptions.coerce(options)
    if options is not None:
        raise TypeError(
            f"{where}: pass options=EvalOptions(...) or the deprecated "
            f"keyword(s) {sorted(passed)}, not both"
        )
    warnings.warn(
        f"{where}: the {', '.join(sorted(passed))} keyword(s) are "
        "deprecated; pass options=EvalOptions(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return EvalOptions(**passed)
