"""Unit tests for JSON serialization of provenance artifacts."""

import json

import pytest

from repro.core import serialize
from repro.core.forest import AbstractionForest
from repro.core.parser import parse, parse_set
from repro.core.tree import AbstractionTree


class TestPolynomialRoundTrip:
    @pytest.mark.parametrize(
        "text", ["x", "2*x*y + 3*z", "x^3 - 2", "0.5*a + 0.25*b"]
    )
    def test_roundtrip(self, text):
        p = parse(text)
        assert serialize.loads(serialize.dumps(p)) == p

    def test_polynomial_set_roundtrip(self):
        ps = parse_set(["x + y", "2*z"])
        assert serialize.loads(serialize.dumps(ps)) == ps

    def test_stable_output(self):
        p = parse("b + a")
        assert serialize.dumps(p) == serialize.dumps(parse("a + b"))


class TestTreeRoundTrip:
    def test_tree_roundtrip(self):
        tree = AbstractionTree.from_nested(("r", [("a", ["a1", "a2"]), "b"]))
        loaded = serialize.loads(serialize.dumps(tree))
        assert loaded.to_nested() == tree.to_nested()

    def test_forest_roundtrip(self):
        forest = AbstractionForest(
            [
                AbstractionTree.from_nested(("r", ["x", "y"])),
                AbstractionTree.from_nested(("s", ["z"])),
            ]
        )
        loaded = serialize.loads(serialize.dumps(forest))
        assert loaded.labels == forest.labels

    def test_figure2_roundtrip(self, figure2_tree):
        loaded = serialize.loads(serialize.dumps(figure2_tree))
        assert loaded.labels == figure2_tree.labels
        assert loaded.count_cuts() == figure2_tree.count_cuts()


class TestVVS:
    def test_vvs_roundtrip(self, figure2_tree):
        forest = AbstractionForest([figure2_tree])
        vvs = forest.vvs({"Business", "Special", "Standard"})
        data = serialize.vvs_to_dict(vvs)
        restored = serialize.vvs_from_dict(data, forest)
        assert restored == vvs

    def test_vvs_envelope_roundtrip(self, figure2_tree):
        """A VVS dumps/loads on its own (forest travels inside)."""
        forest = AbstractionForest([figure2_tree])
        vvs = forest.vvs({"Business", "Special", "Standard"})
        text = serialize.dumps(vvs)
        restored = serialize.loads(text)
        assert restored.labels == vvs.labels
        assert restored.forest.labels == forest.labels
        # Byte-identical re-serialization: envelopes are stable.
        assert serialize.dumps(restored) == text

    def test_vvs_envelope_revalidates(self, figure2_tree):
        envelope = json.loads(serialize.dumps(
            AbstractionForest([figure2_tree]).vvs({"Plans"})
        ))
        # 'Business' alone leaves the Standard/Special leaves uncovered.
        envelope["data"]["labels"] = ["Business"]
        with pytest.raises(ValueError, match="not covered"):
            serialize.loads(json.dumps(envelope))


class TestArtifactEnvelope:
    @pytest.fixture
    def artifact(self, ex13_polys, figure2_tree):
        from repro.api import ProvenanceSession

        return ProvenanceSession(ex13_polys, figure2_tree).compress(bound=9)

    def test_byte_identical_roundtrip(self, artifact):
        text = serialize.dumps(artifact)
        assert json.loads(text)["kind"] == "compressed_provenance"
        assert serialize.dumps(serialize.loads(text)) == text

    def test_roundtrip_preserves_losses(self, artifact):
        restored = serialize.loads(serialize.dumps(artifact))
        assert restored == artifact
        assert restored.original_size == artifact.original_size
        assert restored.original_granularity == artifact.original_granularity
        assert restored.monomial_loss == artifact.monomial_loss
        assert restored.variable_loss == artifact.variable_loss
        assert restored.algorithm == artifact.algorithm
        assert restored.bound == artifact.bound


class TestSizeAndErrors:
    def test_serialized_size_positive_and_monotone(self, ex13_polys):
        small = serialize.serialized_size(parse("x"))
        large = serialize.serialized_size(ex13_polys)
        assert 0 < small < large

    def test_abstraction_shrinks_serialized_size(self, ex13_polys, figure2_tree):
        """The point of the paper: P↓S ships in fewer bytes."""
        forest = AbstractionForest([figure2_tree.clean(ex13_polys.variables)])
        abstracted = forest.root_vvs().apply(ex13_polys)
        assert serialize.serialized_size(abstracted) < serialize.serialized_size(
            ex13_polys
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            serialize.loads('{"kind": "mystery", "data": {}}')

    def test_unserializable_type_rejected(self):
        with pytest.raises(TypeError):
            serialize.dumps(42)
