"""RPL100 — cross-validate the bench gate against the baseline file.

``benchmarks/bench_regression.py`` gates performance through
``CHECK_FIELDS`` rows evaluated against ``BENCH_core.json``. The two
drift independently: a stage renamed in the bench harness leaves a
stale row silently matching nothing, and a new gated field recorded in
the baseline without a row silently escapes the gate. This check
parses both sides (the bench module via ``ast``, never imported; the
baseline via ``json``) and fails fast on either direction.

Unlike the AST checkers this is a *repo-level* check: it locates the
two files by walking up from the lint paths, and silently skips when
either is absent (fixture trees in tests, partial checkouts).
"""

from __future__ import annotations

import ast
import json
import os

from repro.lint.base import Finding

__all__ = ["BenchGateConsistency", "DATA_CHECKS"]

#: Result fields that must be gated whenever a baseline records them.
GATED_FIELDS = frozenset({"speedup", "max_abs_error"})


class BenchGateConsistency:
    """The RPL100 rule object (duck-typed like :class:`Checker` for
    registry/metadata purposes, but run once per lint invocation over
    the repo, not per module)."""

    code = "RPL100"
    name = "bench-gate-consistency"
    description = (
        "CHECK_FIELDS rows in benchmarks/bench_regression.py must match "
        "the stages/fields recorded in BENCH_core.json, both ways"
    )

    BENCH_RELPATH = os.path.join("benchmarks", "bench_regression.py")
    BASELINE_RELPATH = "BENCH_core.json"

    def find_root(self, paths) -> str | None:
        """The nearest ancestor of any lint path holding both files."""
        for path in paths:
            probe = os.path.abspath(path)
            if os.path.isfile(probe):
                probe = os.path.dirname(probe)
            while True:
                if os.path.isfile(
                    os.path.join(probe, self.BENCH_RELPATH)
                ) and os.path.isfile(
                    os.path.join(probe, self.BASELINE_RELPATH)
                ):
                    return probe
                parent = os.path.dirname(probe)
                if parent == probe:
                    break
                probe = parent
        return None

    def check_repo(self, root: str):
        """Yield :class:`Finding` objects for the repo at ``root``."""
        bench_path = os.path.join(root, self.BENCH_RELPATH)
        baseline_path = os.path.join(root, self.BASELINE_RELPATH)
        display = os.path.relpath(bench_path)

        with open(bench_path, encoding="utf-8") as handle:
            tree = ast.parse(handle.read(), filename=bench_path)
        rows, stages, table_line = self._parse_bench(tree)
        if rows is None:
            yield Finding(
                display, table_line or 1, self.code,
                "could not locate a literal CHECK_FIELDS table in the "
                "bench harness — the gate cannot be cross-validated",
            )
            return

        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        runs = baseline.get("runs", {})
        if not isinstance(runs, dict) or not runs:
            yield Finding(
                display, table_line, self.code,
                f"{self.BASELINE_RELPATH} has no runs to validate "
                "CHECK_FIELDS against",
            )
            return

        # Direction A: every gate row must point at a recorded metric.
        for stage, field, line in rows:
            if stages is not None and stage not in stages:
                yield Finding(
                    display, line, self.code,
                    f"CHECK_FIELDS row ({stage!r}, {field!r}) names a "
                    "stage missing from STAGES — the gate row is dead",
                )
                continue
            for mode, run in runs.items():
                results = run.get("results", {})
                if field not in results.get(stage, {}):
                    yield Finding(
                        display, line, self.code,
                        f"CHECK_FIELDS row ({stage!r}, {field!r}) has no "
                        f"matching key in {self.BASELINE_RELPATH} run "
                        f"{mode!r} — the row silently gates nothing",
                    )

        # Direction B: every recorded gated field must have a gate row
        # (reported once per (stage, field), however many modes record it).
        gated = {(stage, field) for stage, field, _ in rows}
        ungated = {}
        for mode, run in runs.items():
            for stage, metrics in run.get("results", {}).items():
                if not isinstance(metrics, dict):
                    continue
                for field in sorted(GATED_FIELDS & metrics.keys()):
                    if (stage, field) not in gated:
                        ungated.setdefault((stage, field), []).append(mode)
        for (stage, field), modes in sorted(ungated.items()):
            yield Finding(
                display, table_line, self.code,
                f"{self.BASELINE_RELPATH} records {stage}.{field} "
                f"(run {', '.join(sorted(modes))}) but CHECK_FIELDS has "
                "no row for it — the stage is silently un-gated",
            )

    @staticmethod
    def _parse_bench(tree: ast.Module):
        """``(rows, stages, check_fields_lineno)`` from the bench AST.

        ``rows`` is ``[(stage, field, lineno), ...]`` from the literal
        ``CHECK_FIELDS`` table (``None`` if the table is missing or not
        a literal); ``stages`` is the ``STAGES`` tuple as a set, or
        ``None`` when absent.
        """
        rows = None
        stages = None
        table_line = None
        for node in tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                targets = [node.target.id]
            if "CHECK_FIELDS" in targets:
                table_line = node.lineno
                rows = []
                value = node.value
                if not isinstance(value, (ast.List, ast.Tuple)):
                    return None, stages, table_line
                for element in value.elts:
                    if not (
                        isinstance(element, ast.Tuple)
                        and len(element.elts) >= 2
                        and all(
                            isinstance(part, ast.Constant)
                            and isinstance(part.value, str)
                            for part in element.elts[:2]
                        )
                    ):
                        return None, stages, table_line
                    stage = element.elts[0].value
                    field = element.elts[1].value
                    rows.append((stage, field, element.lineno))
            elif "STAGES" in targets and isinstance(
                node.value, (ast.List, ast.Tuple)
            ):
                literal = [
                    part.value
                    for part in node.value.elts
                    if isinstance(part, ast.Constant)
                    and isinstance(part.value, str)
                ]
                if len(literal) == len(node.value.elts):
                    stages = set(literal)
        return rows, stages, table_line


#: Repo-level checks run once per lint invocation.
DATA_CHECKS = (BenchGateConsistency,)
