"""Tests for the algorithm registry and its ``auto`` policy."""

import pytest

from repro.algorithms import registry
from repro.algorithms.brute_force import brute_force_vvs
from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from repro.core.forest import AbstractionForest
from repro.core.parser import parse_set
from repro.core.tree import AbstractionTree


@pytest.fixture
def polys():
    return parse_set(["2*b1*m1 + 3*b1*m3 + 4*b2*m1 + 5*b2*m3"])


@pytest.fixture
def single_tree_forest():
    return AbstractionForest([AbstractionTree.from_nested(("SB", ["b1", "b2"]))])


@pytest.fixture
def two_tree_forest():
    return AbstractionForest([
        AbstractionTree.from_nested(("SB", ["b1", "b2"])),
        AbstractionTree.from_nested(("Y", ["m1", "m3"])),
    ])


class TestRegistry:
    def test_builtins_registered(self):
        assert registry.names() == ["brute-force", "greedy", "optimal"]
        assert registry.available() == ["brute-force", "greedy", "optimal", "auto"]

    def test_resolves_to_identical_callables(self):
        """The registry must hand back the *same* public functions, so
        old entry points and registry-mediated calls cannot diverge."""
        assert registry.get("optimal") is optimal_vvs
        assert registry.get("greedy") is greedy_vvs
        assert registry.get("brute-force") is brute_force_vvs

    def test_unknown_name(self):
        with pytest.raises(registry.UnknownAlgorithmError, match="unknown"):
            registry.get("simulated-annealing")

    def test_register_rejects_collision(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register("greedy")(lambda *a, **k: None)

    def test_register_rejects_auto(self):
        with pytest.raises(ValueError, match="reserved"):
            registry.register("auto")(lambda *a, **k: None)

    def test_register_and_resolve_custom(self, polys, single_tree_forest):
        @registry.register("test-custom")
        def custom(polynomials, forest, bound, **kwargs):
            return greedy_vvs(polynomials, forest, bound, **kwargs)

        try:
            name, fn = registry.resolve("test-custom")
            assert name == "test-custom" and fn is custom
        finally:
            registry._REGISTRY.pop("test-custom")


class TestAutoPolicy:
    def test_single_compatible_tree_uses_optimal(self, polys, single_tree_forest):
        assert registry.choose(polys, single_tree_forest) == "optimal"

    def test_forest_uses_greedy(self, polys, two_tree_forest):
        assert registry.choose(polys, two_tree_forest) == "greedy"

    def test_accepts_bare_tree(self, polys):
        tree = AbstractionTree.from_nested(("SB", ["b1", "b2"]))
        assert registry.choose(polys, tree) == "optimal"

    def test_cleaning_reduces_to_single_tree(self, polys):
        # The second tree's leaves never occur in the provenance, so
        # footnote-1 cleaning drops it and the DP applies.
        forest = AbstractionForest([
            AbstractionTree.from_nested(("SB", ["b1", "b2"])),
            AbstractionTree.from_nested(("Z", ["z1", "z2"])),
        ])
        assert registry.choose(polys, forest) == "optimal"

    def test_resolve_auto_requires_input(self):
        with pytest.raises(ValueError, match="auto"):
            registry.resolve("auto")

    def test_resolve_auto(self, polys, two_tree_forest):
        name, fn = registry.resolve("auto", polys, two_tree_forest)
        assert name == "greedy" and fn is greedy_vvs


class TestBackwardCompatibility:
    """The pre-registry entry points stay importable and identical."""

    def test_old_imports_still_work(self):
        from repro import brute_force_vvs as top_bf
        from repro import greedy_vvs as top_greedy
        from repro import optimal_vvs as top_optimal
        from repro.algorithms import greedy_vvs as pkg_greedy

        assert top_optimal is optimal_vvs
        assert top_greedy is greedy_vvs is pkg_greedy
        assert top_bf is brute_force_vvs

    def test_registry_and_direct_call_agree(self, polys, single_tree_forest):
        direct = optimal_vvs(polys, single_tree_forest.trees[0], bound=2)
        via_registry = registry.get("optimal")(
            polys, single_tree_forest.trees[0], bound=2
        )
        assert direct.vvs.labels == via_registry.vvs.labels
        assert direct.abstracted_size == via_registry.abstracted_size
