"""Zero-copy binary container for compression artifacts (``.rpb``).

The JSON envelope (:mod:`repro.core.serialize`) is the portable wire
format, but it re-parses the whole artifact on every load — at the
paper's "compress once, ask many" scale that parse dominates artifact
start-up. This module defines a single-file binary container that loads
in O(1): the columnar CSR factor arrays and the compiled evaluator's
layer/coefficient arrays are stored as raw little-endian buffers at
64-byte-aligned offsets, so :func:`read_artifact` can ``mmap`` the file
and hand NumPy views *directly over the map* — no copies, no parse, and
the OS pages data in on demand.

Layout::

    offset 0      MAGIC                  8 bytes  (b"RPROVBIN")
    offset 8      header length          uint32, little-endian
    offset 12     JSON header            UTF-8 (schema version, kind,
                                         forest/VVS/stats, variable
                                         names, exact-coefficient
                                         sidecar, buffer directory)
    origin        raw buffers            each 64-byte aligned relative
                                         to origin; origin itself is
                                         the header end rounded up to
                                         64. dtypes/counts/offsets come
                                         from the header's directory.

Two kinds share the format: ``compressed_provenance`` (a full artifact
— what :meth:`CompressedProvenance.save(format="bin")
<repro.api.artifact.CompressedProvenance.save>` writes) and
``compiled`` (just a :class:`~repro.core.batch.CompiledPolynomialSet`
— the payload :mod:`repro.scenarios.parallel` publishes into
``multiprocessing.shared_memory``, built by :func:`dumps_compiled` and
reopened by :func:`compiled_from_buffer`).

Fidelity: float coefficients are stored bit-exact in a float64 buffer,
ints that fit in an int64 buffer, and everything else (big ints,
``fractions.Fraction``) in the header's exact-coefficient sidecar — a
loaded artifact re-serializes and evaluates identically to the JSON
round trip. Variable names travel in the header (interned ids are
process-local); the CSR ``vids`` are stored as file-local column
indexes and re-interned on load.

Portability caveats: buffers are written in the native byte order
(little-endian everywhere this project runs; the dtype strings in the
directory record it), and mmap-backed artifacts alias the file — keep
it in place while the artifact is alive, or load with ``mmap=False``.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
from fractions import Fraction

import numpy

from repro.core.polynomial import PolynomialSet
from repro.core.serialize import SerializeError

__all__ = [
    "MAGIC",
    "SCHEMA_VERSION",
    "BufferBackedPolynomialSet",
    "write_artifact",
    "read_artifact",
    "read_compiled",
    "dumps_compiled",
    "compiled_from_buffer",
    "is_binary",
]

#: The 8 magic bytes every container starts with (how :func:`is_binary`
#: and :func:`repro.core.serialize.load_path` tell the formats apart).
MAGIC = b"RPROVBIN"

#: Container schema version (bump on incompatible layout changes).
SCHEMA_VERSION = 1

_ALIGN = 64
_LEN_BYTES = 4

# Codes of the per-row ``cm.coeff_kind`` buffer: where row i's exact
# coefficient lives.
_COEFF_FLOAT = 0  # the float64 buffer (bit-exact)
_COEFF_INT64 = 1  # the int64 buffer
_COEFF_EXACT = 2  # the header's exact_coeffs sidecar (big int/Fraction)

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _aligned(offset):
    """``offset`` rounded up to the buffer alignment."""
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


# ------------------------------------------------------------------ writing


class _Layout:
    """Accumulates named arrays at 64-byte-aligned offsets."""

    def __init__(self):
        self.directory = {}
        self.chunks = []
        self.size = 0

    def add(self, name, array):
        array = numpy.ascontiguousarray(array)
        offset = _aligned(self.size)
        self.directory[name] = {
            "dtype": array.dtype.str,
            "count": int(array.size),
            "offset": offset,
        }
        self.chunks.append((offset, array))
        self.size = offset + array.nbytes


def _container_bytes(header, layout):
    """Render a complete container: magic, JSON header, aligned buffers."""
    header = dict(header)
    header["buffers"] = layout.directory
    header["data_size"] = layout.size
    blob = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    prefix = len(MAGIC) + _LEN_BYTES
    origin = _aligned(prefix + len(blob))
    out = bytearray(origin + layout.size)
    out[: len(MAGIC)] = MAGIC
    out[len(MAGIC):prefix] = len(blob).to_bytes(_LEN_BYTES, "little")
    out[prefix:prefix + len(blob)] = blob
    for offset, array in layout.chunks:
        start = origin + offset
        out[start:start + array.nbytes] = array.tobytes()
    return bytes(out)


def _encode_coeffs(coeffs):
    """``(kinds, f64, i64, sidecar)`` buffers for a coefficient list.

    Floats and int64-range ints go in the raw buffers; big ints and
    Fractions go in the JSON sidecar as ``[row, tag, text]`` entries.
    """
    count = len(coeffs)
    kinds = numpy.zeros(count, dtype=numpy.uint8)
    f64 = numpy.zeros(count, dtype=numpy.float64)
    i64 = numpy.zeros(count, dtype=numpy.int64)
    sidecar = []
    for row, coeff in enumerate(coeffs):
        if isinstance(coeff, int):  # bool included (stored as 0/1)
            if _INT64_MIN <= coeff <= _INT64_MAX:
                kinds[row] = _COEFF_INT64
                i64[row] = coeff
            else:
                kinds[row] = _COEFF_EXACT
                sidecar.append([row, "int", str(coeff)])
        elif isinstance(coeff, float):
            kinds[row] = _COEFF_FLOAT
            f64[row] = coeff
        elif isinstance(coeff, Fraction):
            kinds[row] = _COEFF_EXACT
            sidecar.append(
                [row, "fraction", f"{coeff.numerator}/{coeff.denominator}"]
            )
        else:
            raise SerializeError(
                f"cannot serialize coefficient of type {type(coeff).__name__}"
            )
    return kinds, f64, i64, sidecar


def _pack_compiled(layout, compiled):
    """Add a compiled set's arrays to ``layout``; return its header meta."""
    state = compiled._state()
    by_name = state["columns_by_name"]
    columns = [None] * len(by_name)
    for name, col in by_name.items():
        columns[col] = name
    if any(name is None for name in columns):
        raise SerializeError("compiled column map is not dense")
    layout.add("c.coeffs", state["coeffs"])
    layout.add("c.poly_starts", state["poly_starts"])
    for j, (selector, cols, nonunit, exps) in enumerate(state["layers"]):
        if j > 0:
            layout.add(f"c.L{j}.sel", selector)
        layout.add(f"c.L{j}.cols", cols)
        layout.add(f"c.L{j}.nonunit", nonunit)
        layout.add(f"c.L{j}.exps", exps)
    return {
        "columns": columns,
        "num_polynomials": state["num_polynomials"],
        "num_monomials": state["num_monomials"],
        "num_variables": state["num_variables"],
        "layers": len(state["layers"]),
    }


def write_artifact(artifact, path):
    """Write a :class:`~repro.api.artifact.CompressedProvenance` as a
    binary container; returns ``path``.

    The artifact's compiled evaluator and columnar CSR arrays are laid
    out for zero-copy reload (:func:`read_artifact`); the forest, the
    cut, the stats and the variable names ride in the JSON header.
    """
    from repro.core import serialize
    from repro.core.interning import VARIABLES

    polynomials = artifact.polynomials
    compiled = polynomials.compiled()
    cm = polynomials.columnar()
    vids = sorted(polynomials.variable_ids())
    variables = [VARIABLES.name(vid) for vid in vids]

    layout = _Layout()
    compiled_meta = _pack_compiled(layout, compiled)

    # The CSR vids are stored as file-local column indexes (rank in the
    # sorted id list) — interned ids are process-local and meaningless
    # on disk. The header's variables list names each column.
    col_of = numpy.zeros(max(cm.max_vid(), 0) + 1, dtype=numpy.int64)
    if vids:
        col_of[numpy.asarray(vids, dtype=numpy.intp)] = numpy.arange(
            len(vids), dtype=numpy.int64
        )
    layout.add("cm.vids", col_of[cm.vids])
    layout.add("cm.exps", cm.exps)
    layout.add("cm.row_starts", cm.row_starts)
    layout.add("cm.poly_starts", cm.poly_starts)
    kinds, f64, i64, sidecar = _encode_coeffs(cm.coeffs)
    layout.add("cm.coeff_kind", kinds)
    layout.add("cm.coeff_f64", f64)
    layout.add("cm.coeff_i64", i64)

    header = {
        "schema": SCHEMA_VERSION,
        "kind": "compressed_provenance",
        "algorithm": artifact.algorithm,
        "bound": artifact.bound,
        "stats": {
            "original_size": artifact.original_size,
            "original_granularity": artifact.original_granularity,
            "monomial_loss": artifact.monomial_loss,
            "variable_loss": artifact.variable_loss,
            "revision": artifact.revision,
        },
        "forest": serialize.forest_to_dict(artifact.forest),
        "vvs": sorted(artifact.vvs.labels),
        "variables": variables,
        "counts": {
            "polynomials": len(polynomials),
            "monomials": cm.num_monomials,
        },
        "exact_coeffs": sidecar,
        "compiled": compiled_meta,
    }
    payload = _container_bytes(header, layout)
    with open(path, "wb") as handle:
        handle.write(payload)
    return path


def dumps_compiled(compiled):
    """A compiled set as ``kind: compiled`` container bytes.

    This is the payload the parallel sweep publisher writes into shared
    memory — workers reopen it with :func:`compiled_from_buffer`.
    """
    layout = _Layout()
    meta = _pack_compiled(layout, compiled)
    header = {"schema": SCHEMA_VERSION, "kind": "compiled", "compiled": meta}
    return _container_bytes(header, layout)


# ------------------------------------------------------------------ reading


def _parse_container(buf, what="container"):
    """``(header, origin)`` of a container buffer; :class:`SerializeError`
    on anything malformed (bad magic, truncation, corrupt header)."""
    size = len(buf)
    prefix = len(MAGIC) + _LEN_BYTES
    if size < prefix or bytes(buf[: len(MAGIC)]) != MAGIC:
        raise SerializeError(f"not a repro binary {what} (bad magic)")
    header_len = int.from_bytes(bytes(buf[len(MAGIC):prefix]), "little")
    if prefix + header_len > size:
        raise SerializeError(
            f"truncated {what}: header claims {header_len} bytes, only "
            f"{size - prefix} present"
        )
    try:
        header = json.loads(
            bytes(buf[prefix:prefix + header_len]).decode("utf-8")
        )
    except (UnicodeDecodeError, ValueError) as error:
        raise SerializeError(f"corrupt {what} header: {error}") from error
    if not isinstance(header, dict):
        raise SerializeError(f"corrupt {what} header: not an object")
    if header.get("schema") != SCHEMA_VERSION:
        raise SerializeError(
            f"unsupported container schema {header.get('schema')!r} "
            f"(this reader handles {SCHEMA_VERSION})"
        )
    origin = _aligned(prefix + header_len)
    data_size = header.get("data_size", 0)
    if not isinstance(data_size, int) or origin + data_size > size:
        raise SerializeError(
            f"truncated {what}: expected {origin + data_size} data bytes "
            f"past the header, have {size - origin}"
        )
    return header, origin


def _views(header, buf, origin):
    """Read-only NumPy views over the container's buffers (zero copies)."""
    buffers = header.get("buffers")
    if not isinstance(buffers, dict):
        raise SerializeError("corrupt container header: no buffer directory")
    arrays = {}
    for name, spec in buffers.items():
        try:
            dtype = numpy.dtype(spec["dtype"])
            count = int(spec["count"])
            offset = origin + int(spec["offset"])
        except (KeyError, TypeError, ValueError) as error:
            raise SerializeError(f"bad buffer entry {name!r}: {error}") from error
        if count == 0:
            arrays[name] = numpy.zeros(0, dtype=dtype)
            continue
        if count < 0 or offset < origin or (
            offset + count * dtype.itemsize > len(buf)
        ):
            raise SerializeError(
                f"buffer {name!r} overruns the container "
                f"({count} x {dtype.str} at offset {offset - origin})"
            )
        array = numpy.frombuffer(buf, dtype=dtype, count=count, offset=offset)
        if array.flags.writeable:
            array.flags.writeable = False
        arrays[name] = array
    return arrays


def _get(arrays, name):
    try:
        return arrays[name]
    except KeyError:
        raise SerializeError(
            f"container is missing buffer {name!r}"
        ) from None


def _compiled_from(meta, arrays, source=None):
    """A :class:`CompiledPolynomialSet` over container buffer views."""
    from repro.core.batch import CompiledPolynomialSet

    layers = []
    for j in range(meta["layers"]):
        selector = None if j == 0 else _get(arrays, f"c.L{j}.sel")
        layers.append((
            selector,
            _get(arrays, f"c.L{j}.cols"),
            _get(arrays, f"c.L{j}.nonunit"),
            _get(arrays, f"c.L{j}.exps"),
        ))
    poly_starts = _get(arrays, "c.poly_starts")
    if len(poly_starts) != meta["num_polynomials"] + 1:
        raise SerializeError("inconsistent compiled poly_starts buffer")
    compiled = CompiledPolynomialSet.from_state({
        "columns_by_name": {
            name: col for col, name in enumerate(meta["columns"])
        },
        "num_polynomials": meta["num_polynomials"],
        "num_monomials": meta["num_monomials"],
        "num_variables": meta["num_variables"],
        "coeffs": _get(arrays, "c.coeffs"),
        "poly_starts": poly_starts,
        "layers": layers,
    })
    compiled._source = source
    return compiled


def _decode_exact(entries):
    """The ``{row: value}`` table of the exact-coefficient sidecar."""
    table = {}
    try:
        for row, tag, text in entries:
            if tag == "int":
                table[int(row)] = int(text)
            elif tag == "fraction":
                table[int(row)] = Fraction(text)
            else:
                raise SerializeError(
                    f"unknown exact-coefficient tag {tag!r}"
                )
    except (TypeError, ValueError) as error:
        if isinstance(error, SerializeError):
            raise
        raise SerializeError(f"bad exact-coefficient sidecar: {error}") from error
    return table


def _decode_coeffs(kinds, f64, i64, exact):
    """The exact Python coefficient list from the kind-tagged buffers."""
    float_list = f64.tolist()
    int_list = i64.tolist()
    coeffs = []
    for row, kind in enumerate(kinds.tolist()):
        if kind == _COEFF_FLOAT:
            coeffs.append(float_list[row])
        elif kind == _COEFF_INT64:
            coeffs.append(int_list[row])
        elif kind == _COEFF_EXACT:
            try:
                coeffs.append(exact[row])
            except KeyError:
                raise SerializeError(
                    f"missing exact coefficient for row {row}"
                ) from None
        else:
            raise SerializeError(f"unknown coefficient kind {kind}")
    return coeffs


def _check_columnar(arrays, counts):
    """Cheap structural consistency of the CSR buffers (fail early with
    a clear error instead of a deep IndexError on first use)."""
    monomials = counts["monomials"]
    polys = counts["polynomials"]
    row_starts = _get(arrays, "cm.row_starts")
    poly_starts = _get(arrays, "cm.poly_starts")
    vids = _get(arrays, "cm.vids")
    tail = int(row_starts[-1]) if len(row_starts) else -1
    if (
        len(row_starts) != monomials + 1
        or len(poly_starts) != polys + 1
        or len(vids) != len(_get(arrays, "cm.exps"))
        or tail != len(vids)
        or len(_get(arrays, "cm.coeff_kind")) != monomials
        or len(_get(arrays, "cm.coeff_f64")) != monomials
        or len(_get(arrays, "cm.coeff_i64")) != monomials
    ):
        raise SerializeError("inconsistent columnar buffers")


class BufferBackedPolynomialSet(PolynomialSet):
    """A :class:`PolynomialSet` view over a loaded binary container.

    The compiled evaluator is built zero-copy over the container's
    buffers at load time, so answering scenarios never touches Python
    monomial objects. The object graph — needed only for exact scalar
    evaluation, equality, or re-serialization — materializes lazily on
    first access to :attr:`polynomials`. Read-only: :meth:`append`
    raises (copy into a plain ``PolynomialSet`` to modify).
    """

    def __init__(
        self, variables, counts, arrays, exact, compiled, mmap_active=False
    ):
        # Parent slots, set directly: PolynomialSet.__init__ demands
        # materialized Polynomial objects, which is what we're avoiding.
        self._vids = None
        self._compiled = compiled
        self._columnar = None
        self._file_variables = tuple(variables)
        self._count_polynomials = int(counts["polynomials"])
        self._count_monomials = int(counts["monomials"])
        self._arrays = arrays
        self._exact = exact
        self._materialized = None
        #: ``True`` when the buffers view an ``mmap`` of the container
        #: file (zero-copy; the file must outlive the set), ``False``
        #: when they view an eagerly-read bytes object.
        self.mmap_active = bool(mmap_active)

    @property
    def polynomials(self):
        """The Polynomial list (materialized from the buffers on first
        use, then cached)."""
        materialized = self._materialized
        if materialized is None:
            materialized = self._materialize()
            self._materialized = materialized
        return materialized

    def _materialize(self):
        from repro.core.columnar import ColumnarMultiset
        from repro.core.interning import VARIABLES

        arrays = self._arrays
        cols = _get(arrays, "cm.vids")
        remap = numpy.asarray(
            [VARIABLES.intern(name) for name in self._file_variables] or [0],
            dtype=numpy.intp,
        )
        try:
            vids = (
                remap[cols] if cols.size else numpy.zeros(0, dtype=numpy.intp)
            )
        except IndexError:
            raise SerializeError(
                "column index out of range for the container's variables"
            ) from None
        coeffs = _decode_coeffs(
            _get(arrays, "cm.coeff_kind"),
            _get(arrays, "cm.coeff_f64"),
            _get(arrays, "cm.coeff_i64"),
            self._exact,
        )
        multiset = ColumnarMultiset.from_arrays(
            vids,
            _get(arrays, "cm.exps"),
            _get(arrays, "cm.row_starts"),
            _get(arrays, "cm.poly_starts"),
            coeffs,
        )
        return multiset.to_polynomial_set().polynomials

    def append(self, polynomial):
        raise TypeError(
            "a loaded artifact's polynomial set is read-only; copy it with "
            "PolynomialSet(list(...)) to modify"
        )

    def __len__(self):
        return self._count_polynomials

    @property
    def num_monomials(self):
        return self._count_monomials

    def variable_ids(self):
        vids = self._vids
        if vids is None:
            from repro.core.interning import VARIABLES

            vids = frozenset(
                VARIABLES.intern(name) for name in self._file_variables
            )
            self._vids = vids
        return vids


def _load_buffer(path, use_mmap):
    """The container bytes of ``path`` — an mmap when possible."""
    with open(path, "rb") as handle:
        if use_mmap:
            try:
                return _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
            except (ValueError, OSError):
                # Zero-length files cannot be mapped; fall through to a
                # plain read so they fail with the magic-bytes error.
                pass
        return handle.read()


def read_artifact(path, mmap=True):
    """Load a binary artifact container written by :func:`write_artifact`.

    ``mmap=True`` (the default) maps the file and builds the compiled
    evaluator over views of the map — O(1) load however large the
    artifact, with the OS paging data in on demand. The compiled set
    remembers the file path, so pickling it (shipping to pool workers)
    costs O(path): workers re-map the file themselves. Keep the file in
    place while the artifact is alive, or pass ``mmap=False`` to read
    everything up front.
    """
    from repro.api.artifact import CompressedProvenance
    from repro.core import serialize

    buf = _load_buffer(path, mmap)
    header, origin = _parse_container(buf, what="artifact")
    if header.get("kind") != "compressed_provenance":
        raise SerializeError(
            f"{path}: expected a compressed_provenance container, got "
            f"kind {header.get('kind')!r}"
        )
    arrays = _views(header, buf, origin)
    try:
        source = os.path.abspath(path) if mmap else None
        compiled = _compiled_from(header["compiled"], arrays, source=source)
        counts = header["counts"]
        _check_columnar(arrays, counts)
        polynomials = BufferBackedPolynomialSet(
            header["variables"],
            counts,
            arrays,
            _decode_exact(header.get("exact_coeffs", ())),
            compiled,
            mmap_active=isinstance(buf, _mmap.mmap),
        )
        forest = serialize.forest_from_dict(header["forest"])
        vvs = serialize.vvs_from_dict({"labels": header["vvs"]}, forest)
        stats = header["stats"]
        return CompressedProvenance(
            polynomials,
            forest,
            vvs,
            algorithm=header["algorithm"],
            bound=header["bound"],
            original_size=stats["original_size"],
            original_granularity=stats["original_granularity"],
            monomial_loss=stats["monomial_loss"],
            variable_loss=stats["variable_loss"],
            revision=stats.get("revision", 0),
        )
    except (KeyError, TypeError, IndexError) as error:
        raise SerializeError(f"{path}: corrupt artifact container: {error}") from error


def read_compiled(path, mmap=True):
    """The compiled evaluator of a container file (either kind), built
    zero-copy over the map — the worker side of the file-backed
    parallel path (see :meth:`CompiledPolynomialSet.__setstate__
    <repro.core.batch.CompiledPolynomialSet>`)."""
    buf = _load_buffer(path, mmap)
    header, origin = _parse_container(buf)
    if header.get("kind") not in ("compiled", "compressed_provenance"):
        raise SerializeError(
            f"{path}: expected a compiled container, got kind "
            f"{header.get('kind')!r}"
        )
    arrays = _views(header, buf, origin)
    try:
        return _compiled_from(
            header["compiled"], arrays,
            source=os.path.abspath(path) if mmap else None,
        )
    except (KeyError, TypeError, IndexError) as error:
        raise SerializeError(f"{path}: corrupt compiled container: {error}") from error


def compiled_from_buffer(buf, source=None):
    """Rebuild a compiled set over views of container bytes (zero-copy).

    ``buf`` may be bytes, a memoryview (``SharedMemory.buf``) or an
    mmap; the compiled arrays alias it, so it must stay alive and
    unmodified for the lifetime of the returned set.
    """
    header, origin = _parse_container(buf, what="compiled payload")
    if header.get("kind") not in ("compiled", "compressed_provenance"):
        raise SerializeError(
            f"expected a compiled container, got kind {header.get('kind')!r}"
        )
    arrays = _views(header, buf, origin)
    try:
        return _compiled_from(header["compiled"], arrays, source=source)
    except (KeyError, TypeError, IndexError) as error:
        raise SerializeError(f"corrupt compiled container: {error}") from error


def is_binary(path):
    """``True`` iff ``path`` starts with the container magic bytes."""
    with open(path, "rb") as handle:
        return handle.read(len(MAGIC)) == MAGIC
