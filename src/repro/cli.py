"""Command-line interface: compress, inspect, and valuate provenance files.

The paper's deployment story (§1, "Offline vs. Online Compression") is
file-shaped: provenance is computed once, compressed, then shipped to
analysts. This CLI is that pipeline::

    python -m repro inspect  provenance.json
    python -m repro compress provenance.json forest.json \
        --bound 500 --algorithm greedy --output compressed.json \
        --vvs-output cut.json
    python -m repro valuate  compressed.json --set q1=0.8 --set Business=1.1
    python -m repro decide   provenance.json forest.json --size 4 --granularity 5
    python -m repro bench    --smoke

Files are the JSON produced by :mod:`repro.core.serialize` (tagged
``polynomial_set`` / ``forest`` payloads).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.algorithms.brute_force import brute_force_vvs
from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from repro.algorithms.result import InfeasibleBoundError
from repro.algorithms.decision import exists_precise
from repro.core import serialize
from repro.core.forest import AbstractionForest
from repro.core.polynomial import PolynomialSet
from repro.core.valuation import Valuation

__all__ = ["main"]

_ALGORITHMS = {
    "optimal": optimal_vvs,
    "greedy": greedy_vvs,
    "brute-force": brute_force_vvs,
}


def _load(path, expected):
    with open(path) as handle:
        payload = serialize.loads(handle.read())
    if not isinstance(payload, expected):
        raise SystemExit(
            f"{path}: expected a {expected.__name__}, "
            f"got {type(payload).__name__}"
        )
    return payload


def _cmd_inspect(args):
    from repro.core.statistics import profile

    provenance = _load(args.provenance, PolynomialSet)
    report = profile(provenance)
    print(f"polynomials:        {report.num_polynomials}")
    print(f"monomials (|P|_M):  {report.num_monomials}")
    print(f"variables (|P|_V):  {report.num_variables}")
    if report.num_polynomials:
        print(f"largest polynomial: {report.max_polynomial_size} monomials")
        print(f"smallest polynomial:{report.min_polynomial_size:>5} monomials")
        print(f"average size:       {report.mean_polynomial_size:.2f} monomials")
        print(f"max degree:         {report.max_monomial_degree}")
        print(f"workload shape:     {report.shape}")
        top = ", ".join(
            f"{name} ({count})" for name, count in report.top_variables(5)
        )
        print(f"top variables:      {top}")
    print(f"serialized bytes:   {serialize.serialized_size(provenance)}")
    return 0


def _cmd_compress(args):
    provenance = _load(args.provenance, PolynomialSet)
    forest = _load(args.forest, AbstractionForest)
    algorithm = _ALGORITHMS[args.algorithm]
    if args.algorithm == "optimal" and len(forest.trees) != 1:
        raise SystemExit(
            "the optimal algorithm handles exactly one tree "
            "(the multi-tree problem is NP-hard); use --algorithm greedy"
        )
    target = forest.trees[0] if args.algorithm == "optimal" else forest
    try:
        result = algorithm(provenance, target, args.bound)
    except InfeasibleBoundError as error:
        raise SystemExit(f"infeasible: {error}")
    abstracted = result.apply(provenance)
    print(f"selected VVS:  {sorted(result.vvs.labels)}")
    print(f"size:          {provenance.num_monomials} -> {result.abstracted_size}")
    print(f"granularity:   {provenance.num_variables} -> "
          f"{result.abstracted_granularity}")
    if result.abstracted_size > args.bound:
        print(f"WARNING: bound {args.bound} not reached "
              "(no adequate VVS exists; returned the best cut found)")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(serialize.dumps(abstracted))
        print(f"wrote compressed provenance to {args.output}")
    if args.vvs_output:
        with open(args.vvs_output, "w") as handle:
            json.dump(serialize.vvs_to_dict(result.vvs), handle, sort_keys=True)
        print(f"wrote VVS to {args.vvs_output}")
    return 0


def _parse_assignment(settings):
    assignment = {}
    for setting in settings:
        if "=" not in setting:
            raise SystemExit(f"--set expects name=value, got {setting!r}")
        name, _, value = setting.partition("=")
        try:
            assignment[name] = float(value)
        except ValueError:
            raise SystemExit(f"value of {name!r} is not a number: {value!r}")
    return assignment


def _cmd_valuate(args):
    provenance = _load(args.provenance, PolynomialSet)
    valuation = Valuation(_parse_assignment(args.set))
    for index, value in enumerate(valuation.evaluate(provenance)):
        print(f"polynomial[{index}] = {value}")
    return 0


def _cmd_bench(args):
    """Run the perf regression benchmark (benchmarks/bench_regression.py).

    The bench lives with the experiment harness at the repository root
    rather than inside the installed package; it is loaded by path so
    ``python -m repro bench`` works from any checkout.
    """
    import importlib.util
    import os

    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    script = os.path.join(root, "benchmarks", "bench_regression.py")
    if not os.path.exists(script):
        raise SystemExit(
            "benchmarks/bench_regression.py not found — `repro bench` "
            "needs a source checkout (the benchmark harness is not "
            "part of the installed package)"
        )
    spec = importlib.util.spec_from_file_location("bench_regression", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    argv = []
    if args.smoke:
        argv.append("--smoke")
    if args.tiny:
        argv.append("--tiny")
    if args.repeat is not None:
        argv.extend(["--repeat", str(args.repeat)])
    if args.output:
        argv.extend(["--output", args.output])
    if args.quiet:
        argv.append("--quiet")
    return module.main(argv)


def _cmd_decide(args):
    provenance = _load(args.provenance, PolynomialSet)
    forest = _load(args.forest, AbstractionForest)
    answer = exists_precise(
        provenance, forest, args.size, args.granularity
    )
    print("precise abstraction exists" if answer
          else "no precise abstraction")
    return 0 if answer else 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Provenance abstraction toolkit (SIGMOD'19 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    inspect = commands.add_parser("inspect", help="report provenance measures")
    inspect.add_argument("provenance")
    inspect.set_defaults(run=_cmd_inspect)

    compress = commands.add_parser("compress", help="select and apply a VVS")
    compress.add_argument("provenance")
    compress.add_argument("forest")
    compress.add_argument("--bound", type=int, required=True,
                          help="maximum number of monomials B")
    compress.add_argument("--algorithm", choices=sorted(_ALGORITHMS),
                          default="greedy")
    compress.add_argument("--output", help="write P↓S here (JSON)")
    compress.add_argument("--vvs-output", help="write the chosen cut here")
    compress.set_defaults(run=_cmd_compress)

    valuate = commands.add_parser("valuate", help="apply a what-if scenario")
    valuate.add_argument("provenance")
    valuate.add_argument("--set", action="append", default=[],
                         metavar="VAR=VALUE",
                         help="assign a value (repeatable; default 1.0)")
    valuate.set_defaults(run=_cmd_valuate)

    decide = commands.add_parser(
        "decide", help="Definition 10: does a precise VVS exist?"
    )
    decide.add_argument("provenance")
    decide.add_argument("forest")
    decide.add_argument("--size", type=int, required=True)
    decide.add_argument("--granularity", type=int, required=True)
    decide.set_defaults(run=_cmd_decide)

    bench = commands.add_parser(
        "bench", help="time the hot paths; write BENCH_core.json"
    )
    scale = bench.add_mutually_exclusive_group()
    scale.add_argument("--smoke", action="store_true",
                       help="reduced scale, finishes in well under 30 s")
    scale.add_argument("--tiny", action="store_true",
                       help="smallest scale (used by the test suite)")
    bench.add_argument("--repeat", type=int, default=None,
                       help="timing repeats (default 3)")
    bench.add_argument("--output",
                       help="where to write the JSON "
                            "(default: BENCH_core.json at the repo root)")
    bench.add_argument("--quiet", action="store_true",
                       help="suppress progress output")
    bench.set_defaults(run=_cmd_bench)

    return parser


def main(argv=None):
    """Entry point: parse ``argv`` and dispatch to a subcommand."""
    args = build_parser().parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
