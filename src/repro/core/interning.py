"""Variable interning: a process-wide string ↔ int id table.

Every hot path of the system — substitution, loss counting, the greedy
working state, batch valuation — manipulates monomial keys. Keys built
from Python strings compare and hash by content; keys built from small
ints compare by machine word and pack densely into NumPy arrays. The
:class:`VariableTable` assigns each distinct variable name a stable
small integer id (in first-seen order) so that

* :class:`~repro.core.polynomial.Monomial` can store its factors as a
  tuple of ``(var_id, exponent)`` pairs sorted by id (the *key*),
* substitutions become id → id dict lookups with tuple rewrites,
* the batch evaluator can address variables as array columns.

The public, string-facing API of the polynomial classes is unaffected:
ids are an internal representation, translated at the boundary.

A single process-wide table (:data:`VARIABLES`) is shared by all
polynomials so keys from different sources remain comparable. The table
only ever grows (ids are never reused); for the workloads this system
targets — bounded variable alphabets, unbounded monomial counts — that
is the right trade.
"""

from __future__ import annotations

__all__ = ["VariableTable", "VARIABLES", "SENTINEL_ID"]

#: Reserved id used by loss counting for "the tree variable, whichever
#: it was" residual keys. Negative, so it can never collide with a real
#: interned id.
SENTINEL_ID = -1


class VariableTable:
    """A bijective string ↔ int id registry (ids are dense, from 0).

    >>> table = VariableTable()
    >>> table.intern("x"), table.intern("y"), table.intern("x")
    (0, 1, 0)
    >>> table.name(1)
    'y'
    >>> table.lookup("z") is None
    True
    """

    __slots__ = ("_ids", "_names")

    def __init__(self):
        self._ids = {}
        self._names = []

    def intern(self, name):
        """The id of ``name``, assigning the next free id if new."""
        var_id = self._ids.get(name)
        if var_id is None:
            var_id = len(self._names)
            self._ids[name] = var_id
            self._names.append(name)
        return var_id

    def lookup(self, name):
        """The id of ``name`` if already interned, else ``None``."""
        return self._ids.get(name)

    def name(self, var_id):
        """The name interned as ``var_id`` (IndexError if unassigned)."""
        return self._names[var_id]

    def intern_mapping(self, mapping):
        """A string→string mapping translated to an id→id dict."""
        return {
            self.intern(source): self.intern(target)
            for source, target in mapping.items()
        }

    def __len__(self):
        return len(self._names)

    def __contains__(self, name):
        return name in self._ids

    def __repr__(self):
        return f"VariableTable({len(self._names)} variables)"


#: The process-wide table shared by every Monomial.
VARIABLES = VariableTable()
