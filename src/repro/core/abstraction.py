"""Applying abstractions and measuring their losses (§2.3, §4.1).

Central notions:

* ``abstract(P, S)`` — the abstracted provenance ``P↓S``.
* ``monomial_loss`` / ``variable_loss`` — the paper's ``ML``/``VL``:
  ``ML_P(S) = |P|_M − |P↓S|_M`` and ``VL_P(S) = |P|_V − |P↓S|_V``.
* :class:`LossIndex` — the §4.1 optimization: a single pass over the
  polynomials builds, for every leaf ``l`` of a tree and polynomial
  ``P``, the set ``D_P[l]`` of *residual* monomials (the monomial with
  ``l`` replaced by a sentinel that preserves the exponent). The
  monomial loss of any tree node ``v`` with descendant leaves
  ``l₀..l_m`` is then ``Σ_P (Σᵢ|D_P[lᵢ]| − |⋃ᵢ D_P[lᵢ]|)`` — computed
  bottom-up for *all* nodes without re-traversing the polynomials.

Single-tree additivity (the key insight behind Algorithm 1): because a
compatible monomial holds at most one variable of the tree, the sets of
monomials merged by incomparable nodes are disjoint, so ``ML``/``VL`` of
a cut is the *sum* of per-node losses. This does **not** hold across
multiple trees (Example 15) — the greedy algorithm therefore maintains
a working state instead (see :mod:`repro.algorithms.greedy`).
"""

from __future__ import annotations

from repro.core.forest import ValidVariableSet
from repro.core.interning import SENTINEL_ID, VARIABLES
from repro.core.polynomial import Polynomial, PolynomialSet

__all__ = [
    "abstract",
    "monomial_loss",
    "variable_loss",
    "abstract_counts",
    "LossIndex",
]


def ensure_set(polynomials):
    """Normalize a :class:`Polynomial` to a singleton :class:`PolynomialSet`."""
    if isinstance(polynomials, PolynomialSet):
        return polynomials
    if isinstance(polynomials, Polynomial):
        return PolynomialSet([polynomials])
    raise TypeError(f"expected Polynomial(Set), got {type(polynomials).__name__}")


def abstract(polynomials, vvs):
    """Compute ``P↓S`` for a polynomial or a multiset of polynomials."""
    if not isinstance(vvs, ValidVariableSet):
        raise TypeError(f"expected ValidVariableSet, got {type(vvs).__name__}")
    return polynomials.substitute(vvs.mapping())


def monomial_loss(polynomials, vvs):
    """``ML_P(S) = |P|_M − |P↓S|_M`` (Example 6: ML(S1)=4, ML(S5)=6)."""
    polynomials = ensure_set(polynomials)
    size, _ = abstract_counts(polynomials, vvs.mapping())
    return polynomials.num_monomials - size


def variable_loss(polynomials, vvs):
    """``VL_P(S) = |P|_V − |P↓S|_V`` (Example 6: VL(S1)=2, VL(S5)=3)."""
    polynomials = ensure_set(polynomials)
    _, granularity = abstract_counts(polynomials, vvs.mapping())
    return polynomials.num_variables - granularity


def _substituted_key(monomial, id_mapping):
    """The identity of the substituted monomial as a plain id-key tuple.

    Avoids constructing :class:`Monomial` objects in counting loops;
    ``id_mapping`` maps interned variable ids to ids.
    """
    acc = {}
    for vid, exp in monomial.key:
        target = id_mapping.get(vid, vid)
        acc[target] = acc.get(target, 0) + exp
    return tuple(sorted(acc.items()))


def abstract_counts(polynomials, mapping):
    """``(|P↓S|_M, |P↓S|_V)`` without materializing ``P↓S``.

    ``mapping`` is a leaf→representative dict as produced by
    :meth:`repro.core.forest.ValidVariableSet.mapping`.
    """
    polynomials = ensure_set(polynomials)
    id_mapping = VARIABLES.intern_mapping(mapping)
    mapped = set(id_mapping)
    total_monomials = 0
    variables = set()
    for polynomial in polynomials:
        if mapped.isdisjoint(polynomial.variable_ids()):
            # Untouched polynomial: counts are the originals.
            total_monomials += polynomial.num_monomials
            variables.update(polynomial.variable_ids())
            continue
        keys = set()
        for monomial in polynomial.monomials:
            key = monomial.key
            if not mapped.isdisjoint(vid for vid, _ in key):
                key = _substituted_key(monomial, id_mapping)
            keys.add(key)
        total_monomials += len(keys)
        for key in keys:
            for vid, _ in key:
                variables.add(vid)
    return total_monomials, len(variables)


class LossIndex:
    """Per-node ``ML``/``VL`` for one abstraction tree (§4.1).

    Built in a single pass over the polynomials plus one bottom-up tree
    traversal. For every node label ``v`` it records:

    * ``ml(v)`` — monomials lost by abstracting exactly the subtree of
      ``v`` into ``v`` (i.e., by the VVS that picks ``v`` and leaves the
      rest of the tree at its leaves);
    * ``vl(v)`` — variables lost by the same choice:
      ``max(0, (#leaves under v occurring in P) − 1)``;
    * ``leaves_present(v)`` — how many leaves under ``v`` occur in ``P``.

    Because of single-tree additivity, for any cut ``C`` of the tree,
    ``ML(C) = Σ_{v∈C} ml(v)`` and ``VL(C) = Σ_{v∈C} vl(v)`` — exposed as
    :meth:`ml_of_cut` / :meth:`vl_of_cut`.

    >>> from repro.core.parser import parse_set
    >>> from repro.core.tree import AbstractionTree
    >>> polys = parse_set(["2*b1*m1 + 3*b1*m3 + 4*b2*m1 + 5*b2*m3 + 6*e*m1"])
    >>> tree = AbstractionTree.from_nested(("B", [("SB", ["b1", "b2"]), "e"]))
    >>> index = LossIndex(polys, tree)
    >>> index.ml("SB")          # b1/b2 pairs on m1 and on m3 merge
    2
    >>> index.ml("B")           # plus the e*m1 / SB*m1 merge
    3
    >>> index.vl("SB"), index.vl("B")
    (1, 2)
    """

    __slots__ = ("tree", "_ml", "_vl", "_present", "_leaf_count")

    def __init__(self, polynomials, tree):
        polynomials = ensure_set(polynomials)
        self.tree = tree
        self._ml = {}
        self._vl = {}
        self._present = {}
        self._leaf_count = {}
        # Interned view of the leaf alphabet; residual keys replace the
        # (unique, by compatibility) tree variable with SENTINEL_ID.
        leaf_of_id = {
            VARIABLES.intern(label): label for label in tree.leaf_labels
        }
        residuals = {leaf: {} for leaf in tree.leaf_labels}
        for poly_index, polynomial in enumerate(polynomials):
            for monomial in polynomial.monomials:
                leaf = None
                leaf_id = None
                for vid, _ in monomial.key:
                    label = leaf_of_id.get(vid)
                    if label is not None:
                        leaf, leaf_id = label, vid
                        break  # compatibility: at most one per monomial
                if leaf is None:
                    continue
                key = _substituted_key(monomial, {leaf_id: SENTINEL_ID})
                residuals[leaf].setdefault(poly_index, set()).add(key)
        self._build(tree.root, residuals)

    def _build(self, root, residuals):
        # Iterative post-order traversal; merged residual dicts flow up.
        merged = {}  # label -> {poly -> set}, deleted once consumed by parent
        totals = {}  # label -> Σ|D_P[l]| over leaves below
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if not expanded:
                stack.append((node, True))
                for child in node.children:
                    stack.append((child, False))
                continue
            label = node.label
            if node.is_leaf:
                per_poly = residuals.get(label, {})
                total = sum(len(keys) for keys in per_poly.values())
                merged[label] = per_poly
                totals[label] = total
                self._ml[label] = 0
                self._present[label] = 1 if total else 0
                self._leaf_count[label] = 1
            else:
                union = {}
                total = 0
                present = 0
                leaf_count = 0
                for child in node.children:
                    child_sets = merged.pop(child.label)
                    total += totals.pop(child.label)
                    present += self._present[child.label]
                    leaf_count += self._leaf_count[child.label]
                    for poly_index, keys in child_sets.items():
                        existing = union.get(poly_index)
                        if existing is None:
                            union[poly_index] = keys
                        else:
                            if len(existing) < len(keys):
                                union[poly_index], keys = keys, existing
                            union[poly_index].update(keys)
                distinct = sum(len(keys) for keys in union.values())
                merged[label] = union
                totals[label] = total
                self._ml[label] = total - distinct
                self._present[label] = present
                self._leaf_count[label] = leaf_count
            self._vl[label] = max(0, self._present[label] - 1)

    # ------------------------------------------------------------- queries

    def ml(self, label):
        """Monomial loss of abstracting the subtree of ``label`` into it."""
        return self._ml[label]

    def vl(self, label):
        """Variable loss of abstracting the subtree of ``label`` into it."""
        return self._vl[label]

    def leaves_present(self, label):
        """How many leaves under ``label`` occur in the polynomials."""
        return self._present[label]

    def leaf_count(self, label):
        """How many leaves the subtree of ``label`` holds (present or not)."""
        return self._leaf_count[label]

    def ml_of_cut(self, labels):
        """``ML`` of a cut of this tree (single-tree additivity)."""
        return sum(self._ml[label] for label in labels)

    def vl_of_cut(self, labels):
        """``VL`` of a cut of this tree (single-tree additivity)."""
        return sum(self._vl[label] for label in labels)

    @property
    def max_ml(self):
        """The largest achievable monomial loss (the root's)."""
        return self._ml[self.tree.root.label]
