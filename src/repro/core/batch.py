"""Vectorized scenario evaluation (the Figure 10 workload, batched).

The paper's entire case for abstraction is that analysts valuate *many*
hypothetical scenarios against the (compressed) provenance. Evaluating
one scenario with :meth:`Polynomial.evaluate` walks every monomial in
Python; over a 256-scenario suite that is 256 full interpreter passes.
:class:`CompiledPolynomialSet` compiles a polynomial multiset **once**
into flat NumPy arrays over the interned variable alphabet and then
answers whole scenario suites with a handful of array operations.

Layout:

* variables become array columns (``_columns`` maps var id → column);
* monomials are *layered* by factor position: layer ``j`` holds the
  ``j``-th ``(column, exponent)`` factor of every monomial that has one.
  Provenance monomials are short (a couple of tree variables plus free
  indeterminates), so there are only a few layers, each a flat gather;
* every polynomial owns a contiguous run of monomials, delimited by
  ``_poly_starts``, with coefficients in ``_coeffs``.

Evaluation of ``S`` scenarios builds the ``(S, V)`` assignment matrix,
then forms the ``(S, M)`` monomial-value matrix layer by layer
(gather → optional power → in-place multiply) and reduces polynomial
runs with ``add.reduceat`` — no per-monomial Python. Exponents are
overwhelmingly 1 in provenance (multilinear monomials), so the power is
only applied at the rare factors with exponent ≠ 1.

Normalization: layer 0 gives every monomial a factor — constant
monomials get ``x₀⁰ == 1`` — and empty polynomials contribute a
zero-coefficient constant monomial, so every ``reduceat`` segment is
non-empty and the hot path has no special cases.

Coefficients and assignment values are degraded to ``float64`` — exact
``fractions.Fraction`` arithmetic needs the scalar
:meth:`Polynomial.evaluate` path.
"""

from __future__ import annotations

import numpy

__all__ = ["CompiledPolynomialSet"]


class CompiledPolynomialSet:
    """A polynomial multiset compiled to NumPy arrays for batch valuation.

    Built by :meth:`repro.core.polynomial.PolynomialSet.compiled` (and
    cached there); evaluate with :meth:`evaluate` or through
    :meth:`repro.core.polynomial.PolynomialSet.evaluate_batch`.
    """

    __slots__ = (
        "num_polynomials",
        "num_monomials",
        "num_variables",
        "_columns",
        "_layers",
        "_coeffs",
        "_poly_starts",
    )

    def __init__(self, polynomial_set):
        vids = sorted(polynomial_set.variable_ids())
        self._columns = {vid: col for col, vid in enumerate(vids)}
        # At least one column so constant monomials have a x0^0 factor
        # to point at even in a variable-free multiset.
        self.num_variables = max(1, len(vids))
        self.num_polynomials = len(polynomial_set)

        # Factor lists per monomial, in polynomial order. Monomials run
        # in each polynomial's canonical sorted order (not dict
        # insertion order) so float summation order — and therefore the
        # batch answers — is identical however the polynomial was built
        # (parsed, substituted, or deserialized). Zero polynomials
        # contribute one 0-coefficient constant monomial.
        factor_runs = []
        coeffs = []
        poly_starts = [0]
        columns = self._columns
        for polynomial in polynomial_set:
            for coeff, monomial in polynomial:
                coeffs.append(float(coeff))
                factor_runs.append(
                    [(columns[vid], exp) for vid, exp in monomial.key]
                    or [(0, 0)]
                )
            if not polynomial.terms:
                coeffs.append(0.0)
                factor_runs.append([(0, 0)])
            poly_starts.append(len(coeffs))
        self.num_monomials = len(coeffs)
        self._coeffs = numpy.asarray(coeffs, dtype=numpy.float64)
        self._poly_starts = numpy.asarray(poly_starts, dtype=numpy.intp)

        # Layer j: (monomial selector, columns, exponent fix-ups) over
        # the monomials with a j-th factor; selector is None for layer 0
        # (every monomial has one, by normalization).
        self._layers = []
        depth = max(len(run) for run in factor_runs) if factor_runs else 0
        for j in range(depth):
            select = [m for m, run in enumerate(factor_runs) if len(run) > j]
            cols = numpy.asarray(
                [factor_runs[m][j][0] for m in select], dtype=numpy.intp
            )
            exps = numpy.asarray(
                [factor_runs[m][j][1] for m in select], dtype=numpy.int64
            )
            # Provenance monomials are overwhelmingly multilinear;
            # raising everything to the power 1 would dominate the
            # evaluation, so only exponent != 1 factors go through ``**``.
            nonunit = numpy.nonzero(exps != 1)[0]
            selector = None if j == 0 else numpy.asarray(select, dtype=numpy.intp)
            self._layers.append((selector, cols, nonunit, exps[nonunit]))

    # ------------------------------------------------------------- pickling

    def __getstate__(self):
        """Portable state for cross-process shipping.

        Variable ids are process-local (they index the process-wide
        interning table), so the column map travels keyed by variable
        *name* and is re-interned on arrival. Everything else is plain
        NumPy arrays and ints, so a compiled set pickles once and then
        evaluates identically in any worker process — the contract
        :mod:`repro.scenarios.parallel` relies on.
        """
        from repro.core.interning import VARIABLES

        name = VARIABLES.name
        return {
            "columns_by_name": {
                name(vid): col for vid, col in self._columns.items()
            },
            "num_polynomials": self.num_polynomials,
            "num_monomials": self.num_monomials,
            "num_variables": self.num_variables,
            "coeffs": self._coeffs,
            "poly_starts": self._poly_starts,
            "layers": self._layers,
        }

    def __setstate__(self, state):
        """Rebuild in the receiving process (re-interning the alphabet)."""
        from repro.core.interning import VARIABLES

        intern = VARIABLES.intern
        self._columns = {
            intern(name): col
            for name, col in state["columns_by_name"].items()
        }
        self.num_polynomials = state["num_polynomials"]
        self.num_monomials = state["num_monomials"]
        self.num_variables = state["num_variables"]
        self._coeffs = state["coeffs"]
        self._poly_starts = state["poly_starts"]
        self._layers = state["layers"]

    # ------------------------------------------------------------ assignment

    def assignment_matrix(self, assignments, default=1.0):
        """The ``(S, V)`` matrix of variable values for the scenarios.

        Each entry goes through
        :meth:`~repro.core.valuation.Valuation.coerce`: plain mappings
        (unassigned variables take ``default``), Valuations (their own
        default wins) and Scenario-like objects (anything with a
        ``valuation(default)`` method) all work. Assignments of
        variables the multiset never mentions are ignored, matching
        :meth:`Polynomial.evaluate`.
        """
        from repro.core.interning import VARIABLES
        from repro.core.valuation import Valuation

        rows = []
        for entry in assignments:
            valuation = Valuation.coerce(entry, default)
            rows.append((valuation.assignment, valuation.default))

        matrix = numpy.empty((len(rows), self.num_variables), dtype=numpy.float64)
        columns = self._columns
        lookup = VARIABLES.lookup
        for row, (mapping, row_default) in enumerate(rows):
            matrix[row].fill(row_default)
            for name, value in mapping.items():
                vid = lookup(name)
                if vid is None:
                    continue
                col = columns.get(vid)
                if col is not None:
                    matrix[row, col] = value
        return matrix

    # ------------------------------------------------------------ evaluation

    def evaluate(self, assignments, default=1.0):
        """``(S, P)`` array: row ``i`` valuates every polynomial under
        assignment ``i`` (see :meth:`PolynomialSet.evaluate_batch`)."""
        matrix = self.assignment_matrix(assignments, default)
        return self.evaluate_matrix(matrix)

    def evaluate_matrix(self, matrix):
        """Valuate from a prebuilt ``(S, V)`` assignment matrix."""
        num_scenarios = matrix.shape[0]
        if self.num_polynomials == 0:
            return numpy.zeros((num_scenarios, 0), dtype=numpy.float64)
        if num_scenarios == 0:
            return numpy.zeros((0, self.num_polynomials), dtype=numpy.float64)
        mono_values = None
        for selector, cols, nonunit, exps in self._layers:
            # The fancy-index gather copies, so in-place ops are safe.
            values = matrix[:, cols]
            if len(nonunit):
                values[:, nonunit] **= exps
            if selector is None:
                mono_values = values
            else:
                mono_values[:, selector] *= values
        weighted = mono_values * self._coeffs
        return numpy.add.reduceat(weighted, self._poly_starts[:-1], axis=1)
