"""Tests for provenance-aware aggregates and the query DSL."""

import pytest

from repro.core.parser import parse
from repro.core.valuation import Valuation
from repro.engine import (
    Query,
    Relation,
    aggregate_sum,
    bucket_variable,
    column_variable,
    combine_params,
    evaluate_aggregate,
)


@pytest.fixture
def sales():
    return Relation.from_rows(
        ["region", "product", "amount"],
        [
            ("east", "a", 10.0),
            ("east", "b", 5.0),
            ("west", "a", 7.0),
            ("west", "b", 3.0),
            ("west", "b", 4.0),
        ],
    )


class TestAggregateSum:
    def test_plain_sum(self, sales):
        result = aggregate_sum(sales, ["region"], "amount")
        assert result.value(("east",)) == 15.0
        assert result.value(("west",)) == 14.0

    def test_value_function(self, sales):
        result = aggregate_sum(sales, ["region"], lambda r: r["amount"] * 2)
        assert result.value(("east",)) == 30.0

    def test_parameterized_polynomial(self, sales):
        result = aggregate_sum(
            sales, ["region"], "amount", params=lambda r: [f"prod_{r['product']}"]
        )
        assert result.polynomial(("east",)) == parse("10.0*prod_a + 5.0*prod_b")

    def test_duplicate_rows_scale_by_multiplicity(self):
        r = Relation.from_rows(["g", "x"], [(1, 2.0), (1, 2.0)])
        result = aggregate_sum(r, ["g"], "x")
        assert result.value((1,)) == 4.0

    def test_annotated_rows_multiply_in(self):
        r = Relation.from_rows(["g", "x"], [(1, 2.0), (1, 3.0)]).with_tuple_variables("t")
        result = aggregate_sum(r, ["g"], "x")
        assert result.polynomial((1,)) == parse("2.0*t0 + 3.0*t1")

    def test_empty_group_by_gives_single_group(self, sales):
        result = aggregate_sum(sales, [], "amount")
        assert result.value(()) == 29.0

    def test_valuated_scenario(self, sales):
        result = aggregate_sum(
            sales, ["region"], "amount", params=lambda r: [f"prod_{r['product']}"]
        )
        scenario = Valuation({"prod_b": 0.5})
        assert result.value(("west",), scenario) == 7.0 + 3.5

    def test_values_dict(self, sales):
        result = aggregate_sum(sales, ["region"], "amount")
        assert result.values() == {("east",): 15.0, ("west",): 14.0}

    def test_polynomials_property_sorted(self, sales):
        result = aggregate_sum(sales, ["region"], "amount")
        assert len(result.polynomials) == 2

    def test_params_with_exponents(self):
        r = Relation.from_rows(["g", "x"], [(1, 2.0)])
        result = aggregate_sum(r, ["g"], "x", params=lambda row: [("v", 2)])
        assert result.polynomial((1,)) == parse("2.0*v^2")


class TestEvaluateAggregate:
    def test_sum_default(self):
        assert evaluate_aggregate(parse("3*x + 5"), {"x": 2.0}) == 11.0

    def test_min_combine(self):
        assert evaluate_aggregate(parse("3*x + 5*y"), {}, combine=min) == 3.0

    def test_max_combine(self):
        assert evaluate_aggregate(parse("3*x + 5*y"), {}, combine=max) == 5.0

    def test_min_respects_valuation(self):
        assert (
            evaluate_aggregate(parse("3*x + 5*y"), {"y": 0.1}, combine=min) == 0.5
        )

    def test_empty_polynomial_with_min_rejected(self):
        from repro.core.polynomial import Polynomial

        with pytest.raises(ValueError):
            evaluate_aggregate(Polynomial.zero(), {}, combine=min)


class TestQueryDSL:
    def test_where_select(self, sales):
        q = Query(sales).where(lambda r: r["amount"] > 5).select("region")
        assert q.rows() == [("east",), ("west",)]

    def test_group_by_sum(self, sales):
        result = Query(sales).group_by("region").sum("amount")
        assert result.value(("east",)) == 15.0

    def test_join_chain(self):
        left = Relation.from_rows(["id", "x"], [(1, "a"), (2, "b")])
        right = Relation.from_rows(["rid", "y"], [(1, 10), (2, 20)])
        q = Query(left).join(right, on=("id", "rid"))
        assert (1, "a", 10) in q.relation

    def test_union(self, sales):
        q = Query(sales).union(Query(sales))
        assert q.relation.annotation(("east", "a", 10.0)) == 2

    def test_extend_then_aggregate(self, sales):
        result = (
            Query(sales)
            .extend("double", lambda r: r["amount"] * 2)
            .group_by("region")
            .sum("double")
        )
        assert result.value(("east",)) == 30.0

    def test_rename(self, sales):
        q = Query(sales).rename({"region": "zone"})
        assert "zone" in q.relation.schema

    def test_type_error_on_non_relation(self):
        with pytest.raises(TypeError):
            Query("not a relation")

    def test_annotated_rows_helper(self, sales):
        pairs = Query(sales).annotated_rows()
        assert pairs[0][1] == 1


class TestParamPolicies:
    def test_bucket_variable(self):
        fn = bucket_variable("SUPPKEY", "s", 128)
        assert fn({"SUPPKEY": 128}) == "s0"
        assert fn({"SUPPKEY": 131}) == "s3"

    def test_column_variable(self):
        fn = column_variable("Mo", "m")
        assert fn({"Mo": 3}) == "m3"

    def test_combine_params(self):
        params = combine_params(
            column_variable("Plan", "plan_"), column_variable("Mo", "m")
        )
        assert params({"Plan": "A", "Mo": 1}) == ["plan_A", "m1"]
