"""Figure 7: compression time vs number of cuts, 4-level trees
(types 5, 6 and 7)."""

import pytest

from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from benchmarks import common

#: Figure/table benches run minutes at full scale; `-m "not slow"` skips them.
pytestmark = pytest.mark.slow


def _series(workload):
    rows = []
    for tree_type in (5, 6, 7):
        seen = set()
        for fanouts in common.catalog_fanouts(tree_type):
            fanouts = common.scaled_fanouts(fanouts)
            if fanouts in seen:
                continue
            seen.add(fanouts)
            provenance = common.workload_provenance(workload)
            tree = common.workload_tree(workload, fanouts).clean(
                provenance.variables
            )
            if tree is None:
                continue
            bound = common.feasible_bound(provenance, tree)
            opt_seconds, _ = common.timed(
                optimal_vvs, provenance, tree, bound, clean=False
            )
            greedy_seconds, _ = common.timed(
                greedy_vvs, provenance, common.forest_of(tree), bound,
                clean=False,
            )
            rows.append(
                [workload, tree_type, str(fanouts), tree.count_cuts(),
                 f"{opt_seconds:.3f}", f"{greedy_seconds:.3f}"]
            )
    return rows


@pytest.mark.parametrize("workload", common.WORKLOADS)
def test_fig7(benchmark, workload):
    rows = benchmark.pedantic(_series, args=(workload,), rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
    common.emit(
        f"fig7_{workload}",
        ["workload", "type", "fanouts", "cuts", "opt [s]", "greedy [s]"],
        rows,
        title=f"Figure 7 — {workload}: time vs #cuts (4-level trees)",
    )
    assert rows
