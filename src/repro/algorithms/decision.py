"""The decision problem (Definition 10): does a *precise* VVS exist?

Given ``P``, a compatible forest ``T``, a size ``B`` and a granularity
``K``, decide whether some VVS ``S`` satisfies ``|P↓S|_M = B`` **and**
``|P↓S|_V = K`` exactly. Proposition 11 shows this NP-hard for forests
(the reduction lives in :mod:`repro.hardness`); for a single tree it is
polynomial via an exact two-dimensional dynamic program over
``(ML, VL)`` pairs — the same additivity argument as Algorithm 1, but
without Pareto pruning (both coordinates are pinned, so dominated
entries may still be the only precise ones).
"""

from __future__ import annotations

from repro.core.abstraction import LossIndex, abstract_counts, ensure_set
from repro.core.forest import AbstractionForest
from repro.core.tree import AbstractionTree
from repro.algorithms.brute_force import TooManyCutsError

__all__ = ["exists_precise", "precise_pairs"]


def precise_pairs(polynomials, tree):
    """All achievable ``(ML, VL)`` pairs for cuts of a single tree.

    Exact DP: a leaf achieves ``{(0, 0)}``; an internal node achieves
    the sumset of its children's pair sets, plus its own
    ``(ml(v), vl(v))`` singleton. Single-tree additivity makes the
    sumset exact.
    """
    polynomials = ensure_set(polynomials)
    index = LossIndex(polynomials, tree)

    order = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(node.children)

    pairs = {}
    for node in reversed(order):
        label = node.label
        if node.is_leaf:
            pairs[label] = {(0, 0)}
            continue
        combined = {(0, 0)}
        for child in node.children:
            child_pairs = pairs[child.label]
            combined = {
                (ml_a + ml_b, vl_a + vl_b)
                for ml_a, vl_a in combined
                for ml_b, vl_b in child_pairs
            }
        combined.add((index.ml(label), index.vl(label)))
        pairs[label] = combined
    return pairs[tree.root.label]


def exists_precise(polynomials, forest, size, granularity, *, max_cuts=1_000_000):
    """Decide Definition 10: is there a VVS with ``|P↓S|_M = size`` and
    ``|P↓S|_V = granularity``?

    Single-tree forests use the exact polynomial DP; multi-tree forests
    fall back to brute-force enumeration (the problem is NP-hard, and
    the hardness tests rely on exactly this exhaustive behaviour),
    guarded by ``max_cuts``.
    """
    polynomials = ensure_set(polynomials)
    if isinstance(forest, AbstractionForest) and len(forest.trees) == 1:
        forest = forest.trees[0]
    if isinstance(forest, AbstractionTree):
        target = (
            polynomials.num_monomials - size,
            polynomials.num_variables - granularity,
        )
        return target in precise_pairs(polynomials, forest)

    num_cuts = forest.count_cuts()
    if num_cuts > max_cuts:
        raise TooManyCutsError(num_cuts, max_cuts)
    for vvs in forest.iter_cuts():
        achieved = abstract_counts(polynomials, vvs.mapping())
        if achieved == (size, granularity):
            return True
    return False
