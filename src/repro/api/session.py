"""The query→compress→ask session facade.

One object graph for the whole pipeline the paper describes: capture
provenance (from a SQL query, parsed polynomial strings, or an existing
:class:`~repro.core.polynomial.PolynomialSet`), attach the abstraction
forest, compress under a budget with a registry-chosen algorithm, and
get back a shippable :class:`~repro.api.artifact.CompressedProvenance`
that answers scenario suites::

    from repro import ProvenanceSession, Scenario

    session = ProvenanceSession.from_query(sql, relations, params=params,
                                           forest=[plans_tree, months_tree])
    artifact = session.compress(bound=500)            # algorithm="auto"
    answer = artifact.ask(Scenario.uniform("q1 -20%", ["m1", "m2", "m3"], 0.8))
    answer.values, answer.exact

Before this facade, the same flow threaded six modules by hand
(``repro.engine`` → ``repro.core`` → ``repro.algorithms`` →
``repro.scenarios`` → ``repro.core.serialize`` → CLI); each step here
delegates to exactly those modules, so low-level use keeps working
unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.algorithms import registry
from repro.core.abstraction import ensure_set
from repro.core.forest import AbstractionForest
from repro.core.parser import parse_set
from repro.core.polynomial import Polynomial, PolynomialSet
from repro.core.tree import AbstractionTree
from repro.api.artifact import CompressedProvenance
from repro.options import EvalOptions, resolve_options

if TYPE_CHECKING:
    import os
    from collections.abc import Callable, Iterable, Mapping
    from fractions import Fraction
    from typing import Union

    from repro.api.artifact import Answer, ScenarioLike
    from repro.api.mutation import MutationResult
    from repro.core.statistics import ProvenanceProfile
    from repro.engine.table import Relation
    from repro.options import OptionsLike

    #: Anything :func:`as_forest` normalizes (``None`` = no forest).
    ForestSpec = Union[
        AbstractionForest, AbstractionTree, tuple, Iterable, None
    ]
    #: Anything :func:`repro.core.abstraction.ensure_set` accepts.
    PolynomialsLike = Union[Polynomial, PolynomialSet, Iterable[Polynomial]]

__all__ = ["ProvenanceSession", "as_forest"]


def _accepts_backend(solver):
    """Does ``solver`` take the ``backend=`` knob (directly or **kwargs)?

    Third-party solvers registered before the knob existed keep
    working: the facade only forwards ``backend`` to callables that can
    receive it (the built-ins all do). Unintrospectable callables get
    the forward — the documented contract asks new solvers to accept
    it.
    """
    import inspect

    try:
        parameters = inspect.signature(solver).parameters.values()
    except (TypeError, ValueError):
        return True
    return any(
        parameter.kind == parameter.VAR_KEYWORD or parameter.name == "backend"
        for parameter in parameters
    )


def as_forest(spec: ForestSpec) -> AbstractionForest | None:
    """Normalize a forest specification to an :class:`AbstractionForest`.

    Accepts a forest (unchanged), a single tree, a nested-tuple tree
    spec (``("SB", ["b1", "b2"])``), or an iterable mixing trees and
    nested specs. ``None`` stays ``None`` (no forest attached yet).
    """
    if spec is None or isinstance(spec, AbstractionForest):
        return spec
    if isinstance(spec, AbstractionTree):
        return AbstractionForest([spec])
    if isinstance(spec, tuple):
        return AbstractionForest([AbstractionTree.from_nested(spec)])
    trees = [
        tree if isinstance(tree, AbstractionTree)
        else AbstractionTree.from_nested(tree)
        for tree in spec
    ]
    return AbstractionForest(trees)


class ProvenanceSession:
    """Captured provenance plus its abstraction forest, ready to compress.

    Sessions hold the *original* provenance: :meth:`with_forest`
    returns a new session, :meth:`compress` returns an artifact and
    leaves the session usable for further compressions at other
    bounds/algorithms. The one mutator is :meth:`extend` — streaming
    provenance appends to the session in place (repairing its cached
    columnar/compiled views) and maintains a compressed artifact
    incrementally.
    """

    __slots__ = ("polynomials", "forest")

    def __init__(
        self, polynomials: PolynomialsLike, forest: ForestSpec = None
    ) -> None:
        self.polynomials = ensure_set(polynomials)
        self.forest = as_forest(forest)

    # --------------------------------------------------------- entry points

    @classmethod
    def from_polynomials(
        cls, polynomials: PolynomialsLike, forest: ForestSpec = None
    ) -> ProvenanceSession:
        """Wrap an existing :class:`Polynomial`/:class:`PolynomialSet`."""
        return cls(polynomials, forest)

    @classmethod
    def from_strings(
        cls, texts: Iterable[str], forest: ForestSpec = None
    ) -> ProvenanceSession:
        """Parse polynomial strings (see :func:`repro.core.parser.parse_set`).

        >>> session = ProvenanceSession.from_strings(
        ...     ["2*b1*m1 + 3*b2*m1"], forest=("SB", ["b1", "b2"]))
        >>> session.polynomials.num_monomials
        2
        """
        return cls(parse_set(texts), forest)

    @classmethod
    def from_query(
        cls,
        sql: str,
        relations: Mapping[str, Relation],
        params: Callable | None = None,
        forest: ForestSpec = None,
    ) -> ProvenanceSession:
        """Capture provenance by running SQL through :mod:`repro.engine`.

        :param sql: a SPJ + ``SUM`` aggregate query (the §2.1 class).
        :param relations: ``{table_name: Relation}``.
        :param params: optional ``row_dict -> [variable, ...]`` callable
            placing scenario variables on each contributing row (over
            qualified column names, as in
            :func:`repro.engine.sql.execute`).
        :param forest: the abstraction hierarchy (any
            :func:`as_forest` spec).

        Aggregate queries contribute one polynomial per group;
        non-aggregate queries contribute each result row's annotation
        polynomial (constant annotations become constant polynomials).
        """
        from repro.engine.sql import execute
        from repro.engine.table import Relation

        result = execute(sql, relations, params=params)
        if isinstance(result, Relation):
            polynomials = PolynomialSet(
                annotation if isinstance(annotation, Polynomial)
                else Polynomial.constant(annotation)
                for _, annotation in sorted(
                    result.rows.items(), key=lambda item: repr(item[0])
                )
            )
        else:
            polynomials = result.polynomials
        return cls(polynomials, forest)

    # -------------------------------------------------------------- fluent

    def with_forest(self, forest: ForestSpec) -> ProvenanceSession:
        """A new session over the same provenance with ``forest`` attached."""
        return ProvenanceSession(self.polynomials, forest)

    def profile(self) -> ProvenanceProfile:
        """Summary statistics (see :func:`repro.core.statistics.profile`)."""
        from repro.core.statistics import profile

        return profile(self.polynomials)

    def evaluate(
        self, scenario: ScenarioLike, default: float = 1.0
    ) -> list[float | Fraction]:
        """Valuate one scenario against the *raw* provenance."""
        from repro.core.valuation import Valuation

        return Valuation.coerce(scenario, default).evaluate(self.polynomials)

    def ask(
        self,
        scenario: ScenarioLike,
        default: float = 1.0,
        *,
        options: OptionsLike = None,
    ) -> Answer:
        """Answer one scenario against the raw provenance.

        Raw provenance loses nothing, so the returned
        :class:`~repro.api.artifact.Answer` is always ``exact=True`` —
        the uncompressed counterpart of
        :meth:`CompressedProvenance.ask
        <repro.api.artifact.CompressedProvenance.ask>`.
        """
        return self.ask_many([scenario], default=default, options=options)[0]

    def ask_many(
        self,
        scenarios: Iterable[ScenarioLike],
        default: float = 1.0,
        workers: int | None = None,
        engine: str | None = None,
        *,
        options: OptionsLike = None,
    ) -> list[Answer]:
        """Answer a scenario family against the raw provenance.

        :param scenarios: a :class:`~repro.scenarios.sweep.Sweep`, a
            :class:`~repro.scenarios.scenario.ScenarioSuite`, or any
            iterable of Scenario / Valuation / mapping entries.
        :param options: an :class:`~repro.options.EvalOptions` (or a
            mapping of its fields) bundling the evaluation knobs —
            ``engine`` (dense vs. delta; ``"auto"`` picks by scenario
            sparsity), ``workers`` (shard across processes; ``None``
            stays in process) and ``chunk_size``. Answers are
            bit-identical whatever the knobs.
        :param workers: deprecated — use ``options=``.
        :param engine: deprecated — use ``options=``.
        :returns: a list of :class:`~repro.api.artifact.Answer`, one
            per scenario, in order — all ``exact=True`` (nothing was
            abstracted away).
        """
        from repro.api.artifact import Answer
        from repro.scenarios.analysis import evaluate_scenarios

        opts = resolve_options(
            options, where="ProvenanceSession.ask_many", workers=workers,
            engine=engine,
        )
        # Materialize once: the Answer list is O(S) anyway, and a lazy
        # Sweep would otherwise be generated twice (once for evaluation,
        # once here for the names).
        items = scenarios if isinstance(scenarios, list) else list(scenarios)
        matrix = evaluate_scenarios(
            self.polynomials, items, default=default, options=opts,
        )
        answers = []
        for index, (item, row) in enumerate(zip(items, matrix, strict=True)):
            name = getattr(item, "name", None)
            answers.append(Answer(
                str(name) if name is not None else f"scenario-{index}",
                tuple(float(v) for v in row),
                True,
            ))
        return answers

    # ------------------------------------------------------------- compress

    def compress(
        self,
        bound: int,
        algorithm: str = registry.AUTO,
        backend: str | None = None,
        *,
        options: OptionsLike = None,
        **solver_options: object,
    ) -> CompressedProvenance:
        """Select and apply a VVS; package the result as an artifact.

        :param bound: maximum number of monomials ``B``.
        :param algorithm: a registered name (``"optimal"``, ``"greedy"``,
            ``"brute-force"``, …) or ``"auto"`` — pick the optimal DP
            for a single compatible tree, the greedy otherwise (see
            :func:`repro.algorithms.registry.choose`).
        :param options: an :class:`~repro.options.EvalOptions` (or a
            mapping of its fields); only its ``backend`` knob applies
            here — ``"object"`` (the reference tuple-walking path),
            ``"columnar"`` (the vectorized flat-array core of
            :mod:`repro.core.columnar`), or ``"auto"`` (the default:
            columnar for large multisets). The selected VVS, the
            losses and the artifact's monomial structure are identical
            either way; the knob is forwarded to the solver *and* to
            the ``P↓S`` materialization.
        :param backend: deprecated — use ``options=``.
        :param solver_options: forwarded to the solver (e.g.
            ``clean=False``).
        :raises ValueError: when the session has no forest.
        :raises InfeasibleBoundError: propagated from bound-strict
            solvers (``optimal``/``brute-force``); the greedy instead
            compresses as far as the forest allows.
        """
        opts = resolve_options(
            options, where="ProvenanceSession.compress", backend=backend,
        )
        if self.forest is None:
            raise ValueError(
                "this session has no abstraction forest; build one with "
                "with_forest(...) or pass forest= to the constructor"
            )
        name, solver = registry.resolve(
            algorithm, self.polynomials, self.forest
        )
        target = self.forest
        if name == "optimal":
            if algorithm == registry.AUTO:
                # The policy judged the *cleaned* forest (a multi-tree
                # forest whose extra trees vanish under footnote 1 is
                # still a single-tree DP instance) — solve that one.
                target = self.forest.clean(self.polynomials).trees[0]
            elif len(self.forest.trees) != 1:
                raise ValueError(
                    "the optimal algorithm handles exactly one tree "
                    "(the multi-tree problem is NP-hard); use "
                    "algorithm='greedy' or 'auto'"
                )
            else:
                target = self.forest.trees[0]
        if _accepts_backend(solver):
            solver_options = {"backend": opts.backend, **solver_options}
        result = solver(self.polynomials, target, bound, **solver_options)
        return CompressedProvenance.from_result(
            result, self.polynomials, algorithm=name, bound=bound,
            backend=opts.backend,
        )

    # --------------------------------------------------------------- extend

    def extend(
        self,
        polynomials: PolynomialsLike,
        artifact: CompressedProvenance,
        *,
        drift_limit: float | None = None,
        options: OptionsLike = None,
    ) -> MutationResult:
        """Append provenance to the session *and* an artifact it produced.

        The streaming counterpart of :meth:`compress`: ``polynomials``
        (new original provenance — fresh tuples' annotations) are
        appended to this session in place, and ``artifact`` (previously
        compressed from this session's provenance) is maintained
        incrementally — its abstracted polynomials, columnar arrays,
        compiled batch matrix and delta-engine index are *repaired*
        under the existing cut rather than rebuilt (see
        :mod:`repro.api.mutation`). When the appended monomials drift
        the abstracted size more than ``drift_limit`` past the bound
        (default :data:`~repro.api.mutation.DEFAULT_DRIFT_LIMIT`), an
        exact from-scratch recompression over the full extended
        provenance runs instead — that fallback is why the session
        entry point exists; a bare
        :meth:`CompressedProvenance.refresh
        <repro.api.artifact.CompressedProvenance.refresh>` has no
        originals and raises on drift overflow.

        Returns a :class:`~repro.api.mutation.MutationResult`; its
        ``artifact`` replaces the input artifact (which is consumed —
        its polynomial set may have been extended in place), ``path``
        says whether repair (``"repaired"``) or the fallback
        (``"recompressed"``) ran, and ``drift`` quantifies the bound
        overshoot that steered the choice.

        :param options: an :class:`~repro.options.EvalOptions` (or a
            mapping of its fields); only ``backend`` applies — it is
            forwarded to the delta abstraction and, on the fallback
            path, to :meth:`compress`.
        :raises CompatibilityError: when ``polynomials`` mention a
            meta-variable of the forest.
        """
        from repro.api.mutation import extend_artifact

        opts = EvalOptions.coerce(options)
        if isinstance(polynomials, (Polynomial, PolynomialSet)):
            added = ensure_set(polynomials)
        else:
            added = PolynomialSet(polynomials)
        # Grow the session first (repairing its caches in place): the
        # recompress fallback must see the full extended provenance.
        self.polynomials.extend(added.polynomials)
        return extend_artifact(
            artifact,
            added,
            originals=self.polynomials,
            recompress=lambda: self.compress(
                artifact.bound, algorithm=artifact.algorithm, options=opts,
            ),
            drift_limit=drift_limit,
            options=opts,
            where="ProvenanceSession.extend",
        )

    @staticmethod
    def load_artifact(
        path: str | os.PathLike, mmap: bool = True
    ) -> CompressedProvenance:
        """Reload a saved :class:`CompressedProvenance`, either format.

        Binary ``.rpb`` containers load zero-copy via ``mmap`` (pass
        ``mmap=False`` to read the bytes up front instead); JSON
        envelopes parse as before. Formats are told apart by magic
        bytes, not extension.
        """
        return CompressedProvenance.load(path, mmap=mmap)

    # --------------------------------------------------------------- dunder

    def __repr__(self):
        trees = len(self.forest.trees) if self.forest is not None else 0
        return (
            f"ProvenanceSession({len(self.polynomials)} polynomials, "
            f"{self.polynomials.num_monomials} monomials, {trees} trees)"
        )
