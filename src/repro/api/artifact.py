"""The shippable compression artifact: abstracted provenance + its cut.

The paper's deployment story (§1, "Offline vs. Online Compression") is
artifact-shaped: provenance is captured once, compressed under a
budget, and *shipped* to analysts who then valuate many hypothetical
scenarios against it. :class:`CompressedProvenance` is that artifact —
one object (and one tagged JSON envelope, see
:mod:`repro.core.serialize`) bundling everything an analyst needs:

* the abstracted polynomials ``P↓S`` (with the compiled NumPy batch
  evaluator cached on them);
* the abstraction forest and the chosen
  :class:`~repro.core.forest.ValidVariableSet`;
* the loss accounting relative to the original provenance.

Answering is :meth:`~CompressedProvenance.ask` /
:meth:`~CompressedProvenance.ask_many`, which return
:class:`Answer` objects carrying the values *and* an ``exact`` flag:
``True`` exactly when the scenario is uniform on the cut (the lifting
homomorphism applies — no accuracy lost), ``False`` when the
group-mean :func:`~repro.scenarios.analysis.approximate_lift` fallback
answered approximately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.forest import ValidVariableSet
from repro.core.polynomial import PolynomialSet
from repro.core.valuation import Valuation
from repro.core import serialize
from repro.options import resolve_options
from repro.scenarios.analysis import approximate_lift

if TYPE_CHECKING:
    import os
    from collections.abc import Iterable, Iterator, Mapping
    from typing import Union

    from repro.algorithms.result import AbstractionResult
    from repro.api.mutation import MutationResult
    from repro.api.session import PolynomialsLike
    from repro.core.forest import AbstractionForest
    from repro.options import OptionsLike
    from repro.scenarios.scenario import Scenario

    #: Anything :meth:`Valuation.coerce` accepts as a scenario.
    ScenarioLike = Union[Scenario, Valuation, Mapping[str, float]]

__all__ = ["Answer", "CompressedProvenance"]

#: One warning per process for the JSON-ignores-mmap fallback (see
#: :meth:`CompressedProvenance.load`).
_WARNED_JSON_MMAP = False


@dataclass(frozen=True)
class Answer:
    """One scenario's valuation against a compression artifact.

    * ``name`` — the scenario's name (generated for anonymous inputs);
    * ``values`` — one float per polynomial of the artifact, in order;
    * ``exact`` — ``True`` iff the scenario was uniform on the cut, so
      the abstracted answer equals the raw-provenance answer; ``False``
      means the group-mean approximate lift answered best-effort.
    """

    name: str
    values: tuple[float, ...]
    exact: bool

    def __iter__(self) -> Iterator[float]:
        """Iterate the per-polynomial values."""
        return iter(self.values)

    def __len__(self) -> int:
        """Number of polynomials answered."""
        return len(self.values)


class CompressedProvenance:
    """Abstracted provenance bundled with its cut, losses and evaluator.

    Built by :meth:`repro.api.session.ProvenanceSession.compress` (or
    :meth:`from_result` over a raw
    :class:`~repro.algorithms.result.AbstractionResult`); serialized
    with :func:`repro.core.serialize.dumps` and restored with
    :func:`~repro.core.serialize.loads` / :meth:`load`.
    """

    __slots__ = (
        "polynomials",
        "forest",
        "vvs",
        "algorithm",
        "bound",
        "original_size",
        "original_granularity",
        "monomial_loss",
        "variable_loss",
        "revision",
    )

    def __init__(
        self,
        polynomials: PolynomialSet,
        forest: AbstractionForest,
        vvs: ValidVariableSet,
        *,
        algorithm: str,
        bound: int,
        original_size: int,
        original_granularity: int,
        monomial_loss: int,
        variable_loss: int,
        revision: int = 0,
    ) -> None:
        if not isinstance(polynomials, PolynomialSet):
            raise TypeError(
                f"expected PolynomialSet, got {type(polynomials).__name__}"
            )
        if not isinstance(vvs, ValidVariableSet):
            raise TypeError(
                f"expected ValidVariableSet, got {type(vvs).__name__}"
            )
        self.polynomials = polynomials
        self.forest = forest
        self.vvs = vvs
        self.algorithm = str(algorithm)
        self.bound = int(bound)
        self.original_size = int(original_size)
        self.original_granularity = int(original_granularity)
        self.monomial_loss = int(monomial_loss)
        self.variable_loss = int(variable_loss)
        # Lineage counter, bumped by every mutation (extend / refresh).
        # Not part of __eq__: a repaired artifact and a from-scratch one
        # with the same content compare equal whatever their histories.
        self.revision = int(revision)

    @classmethod
    def from_result(
        cls,
        result: AbstractionResult,
        original: PolynomialSet,
        *,
        algorithm: str,
        bound: int,
        backend: str = "auto",
    ) -> CompressedProvenance:
        """Package an :class:`AbstractionResult` computed on ``original``.

        ``backend`` selects the ``P↓S`` materialization engine (see
        :func:`repro.core.abstraction.abstract`) — the monomial
        structure is identical either way.
        """
        from repro.core.abstraction import abstract

        return cls(
            abstract(original, result.vvs, backend=backend),
            result.vvs.forest,
            result.vvs,
            algorithm=algorithm,
            bound=bound,
            original_size=original.num_monomials,
            original_granularity=original.num_variables,
            monomial_loss=result.monomial_loss,
            variable_loss=result.variable_loss,
        )

    # -------------------------------------------------------------- measures

    @property
    def abstracted_size(self) -> int:
        """``|P↓S|_M`` — monomials after compression."""
        return self.polynomials.num_monomials

    @property
    def abstracted_granularity(self) -> int:
        """``|P↓S|_V`` — surviving degrees of freedom."""
        return self.polynomials.num_variables

    @property
    def compression_ratio(self) -> float:
        """``|P↓S|_M / |P|_M`` (1.0 for empty provenance)."""
        if self.original_size == 0:
            return 1.0
        return self.abstracted_size / self.original_size

    @property
    def mmap_active(self) -> bool:
        """``True`` iff the polynomials view an ``mmap`` of the artifact file.

        Only binary (``.rpb``) containers loaded with ``mmap=True`` are
        mmap-backed; JSON envelopes always load eagerly, whatever
        ``mmap=`` said (:meth:`load` warns once about that fallback).
        While ``True``, the artifact file must stay in place.
        """
        return bool(getattr(self.polynomials, "mmap_active", False))

    def stats(self) -> dict[str, object]:
        """The artifact's size/loss accounting plus its load mode.

        One JSON-ready dict — what ``GET /artifacts/{id}`` serves —
        with the paper's measures (sizes, granularities, losses, the
        compression ratio) and ``mmap_active`` making the load mode
        explicit instead of a silent eager fallback.
        """
        return {
            "algorithm": self.algorithm,
            "bound": self.bound,
            "polynomials": len(self.polynomials),
            "original_size": self.original_size,
            "abstracted_size": self.abstracted_size,
            "original_granularity": self.original_granularity,
            "abstracted_granularity": self.abstracted_granularity,
            "monomial_loss": self.monomial_loss,
            "variable_loss": self.variable_loss,
            "compression_ratio": self.compression_ratio,
            "mmap_active": self.mmap_active,
            "revision": self.revision,
        }

    def __len__(self) -> int:
        """Number of polynomials (query result groups)."""
        return len(self.polynomials)

    # ------------------------------------------------------------- answering

    def supports(self, scenario: ScenarioLike, default: float = 1.0) -> bool:
        """``True`` iff ``scenario`` is answered exactly (uniform on the cut)."""
        return Valuation.coerce(scenario, default).is_uniform_on(self.vvs)

    def lift(self, scenario: ScenarioLike, default: float = 1.0) -> Valuation:
        """The scenario on this artifact's meta-variables.

        Exact (the lifting homomorphism) when the scenario is uniform
        on the cut; the group-mean
        :func:`~repro.scenarios.analysis.approximate_lift` otherwise.
        This is the per-scenario transform :meth:`ask_many` applies —
        exposed so analytics (:func:`repro.scenarios.analysis.top_k`,
        :func:`~repro.scenarios.analysis.sensitivity`, the CLI
        ``sweep`` subcommand) can run sweeps against an artifact.
        """
        valuation = Valuation.coerce(scenario, default)
        if valuation.is_uniform_on(self.vvs):
            return valuation.lift(self.vvs)
        return approximate_lift(valuation, self.vvs)

    def ask(
        self,
        scenario: ScenarioLike,
        default: float = 1.0,
        *,
        options: OptionsLike = None,
    ) -> Answer:
        """Answer one scenario (Scenario / Valuation / mapping).

        Uniform-on-the-cut scenarios are lifted exactly onto the
        meta-variables; others fall back to the group-mean
        :func:`~repro.scenarios.analysis.approximate_lift` and are
        flagged ``exact=False``.
        """
        return self.ask_many([scenario], default=default, options=options)[0]

    def ask_many(
        self,
        scenarios: Iterable[ScenarioLike],
        default: float = 1.0,
        workers: int | None = None,
        engine: str | None = None,
        *,
        options: OptionsLike = None,
    ) -> list[Answer]:
        """Answer a whole scenario family in one vectorized pass.

        :param scenarios: a :class:`~repro.scenarios.scenario.ScenarioSuite`,
            a :class:`~repro.scenarios.sweep.Sweep`, or any iterable of
            Scenario / Valuation / mapping entries.
        :param options: an :class:`~repro.options.EvalOptions` (or a
            mapping of its fields) bundling the evaluation knobs —
            ``engine`` (dense vs. delta batch evaluation of the lifted
            valuations; ``"auto"`` picks delta for sparse families —
            lifting onto a cut only shrinks a scenario's change-set,
            so sparse scenarios stay sparse on meta-variables),
            ``workers`` (shard across processes; ``None`` stays in
            process) and ``chunk_size``. Answers are bit-identical
            whatever the knobs.
        :param workers: deprecated — use ``options=``.
        :param engine: deprecated — use ``options=``.
        :returns: a list of :class:`Answer`, one per scenario, in order.
        """
        from repro.scenarios.analysis import evaluate_scenarios

        opts = resolve_options(
            options, where="CompressedProvenance.ask_many", workers=workers,
            engine=engine,
        )
        names = []
        exacts = []
        lifted = []
        for index, item in enumerate(scenarios):
            valuation = Valuation.coerce(item, default)
            name = getattr(item, "name", None)
            names.append(str(name) if name is not None else f"scenario-{index}")
            exact = valuation.is_uniform_on(self.vvs)
            exacts.append(exact)
            if exact:
                lifted.append(valuation.lift(self.vvs))
            else:
                lifted.append(approximate_lift(valuation, self.vvs))
        if not lifted:
            return []
        matrix = evaluate_scenarios(
            self.polynomials, lifted, default=default, options=opts,
        )
        return [
            Answer(name, tuple(float(v) for v in row), exact)
            for name, exact, row in zip(names, exacts, matrix, strict=True)
        ]

    # -------------------------------------------------------------- mutation

    def refresh(
        self,
        polynomials: PolynomialsLike,
        *,
        drift_limit: float | None = None,
        options: OptionsLike = None,
    ) -> MutationResult:
        """Append original provenance to this artifact incrementally.

        ``polynomials`` are *original* (unabstracted) provenance; they
        are abstracted under this artifact's existing cut and appended
        in place — the columnar arrays, the compiled batch matrix and
        the delta-engine index are repaired, not rebuilt (see
        :mod:`repro.api.mutation`). Returns a
        :class:`~repro.api.mutation.MutationResult` whose ``artifact``
        is the extended artifact (revision bumped); this artifact is
        consumed by the mutation.

        A bare artifact has no original provenance, so there is no
        recompress fallback here: when the appended monomials drift the
        abstracted size more than ``drift_limit`` past the bound
        (default :data:`~repro.api.mutation.DEFAULT_DRIFT_LIMIT`), a
        :class:`~repro.errors.CompressionError` is raised — keep the
        originals in a :class:`~repro.api.session.ProvenanceSession`
        and use :meth:`~repro.api.session.ProvenanceSession.extend` to
        get the exact recompression fallback.

        :param options: an :class:`~repro.options.EvalOptions` (or a
            mapping of its fields); only ``backend`` applies — it picks
            the delta-abstraction engine.
        """
        from repro.api.mutation import extend_artifact

        return extend_artifact(
            self,
            polynomials,
            drift_limit=drift_limit,
            options=options,
            where="CompressedProvenance.refresh",
        )

    # ----------------------------------------------------------- persistence

    def dumps(self) -> str:
        """The one-envelope JSON string (``kind: compressed_provenance``)."""
        return serialize.dumps(self)

    def save(
        self, path: str | os.PathLike, format: str = "auto"
    ) -> str | os.PathLike:
        """Write the artifact to ``path``; returns ``path``.

        :param format: ``"json"`` (the portable tagged envelope),
            ``"bin"`` (the zero-copy binary container, see
            :mod:`repro.core.binfmt`) or ``"auto"`` (the default:
            binary when ``path`` ends in ``.rpb`` or ``.bin``, JSON
            otherwise). :meth:`load` auto-detects by magic bytes, so
            the choice only affects size and load speed.
        """
        if format == "auto":
            suffix = str(path).lower()
            format = (
                "bin"
                if suffix.endswith(".rpb") or suffix.endswith(".bin")
                else "json"
            )
        if format == "bin":
            from repro.core import binfmt

            return binfmt.write_artifact(self, path)
        if format != "json":
            raise ValueError(
                f"unknown artifact format {format!r}; "
                "expected 'json', 'bin' or 'auto'"
            )
        with open(path, "w") as handle:
            handle.write(self.dumps())
        return path

    @classmethod
    def load(
        cls, path: str | os.PathLike, mmap: bool = True
    ) -> CompressedProvenance:
        """Read an artifact written by :meth:`save`, either format.

        Binary containers are detected by magic bytes and loaded
        zero-copy (via ``mmap`` unless disabled — see
        :func:`repro.core.binfmt.read_artifact`); anything else parses
        as the JSON envelope. JSON has no zero-copy story, so
        ``mmap=True`` on a JSON artifact falls back to an eager parse —
        the loaded artifact reports :attr:`mmap_active` ``False`` and
        the first such fallback per process warns (convert the file
        with ``save(path, format="bin")`` to actually map it).
        """
        artifact = serialize.load_path(path, mmap=mmap)
        if not isinstance(artifact, cls):
            raise TypeError(
                f"{path}: expected a {cls.__name__} envelope, "
                f"got {type(artifact).__name__}"
            )
        global _WARNED_JSON_MMAP
        if mmap and not artifact.mmap_active and not _WARNED_JSON_MMAP:
            import warnings

            _WARNED_JSON_MMAP = True
            warnings.warn(
                f"{path}: mmap=True has no effect on JSON artifacts — the "
                "envelope was parsed eagerly (mmap_active=False). Save as a "
                "binary container (.rpb) for zero-copy loads. This warning "
                "is emitted once per process.",
                UserWarning,
                stacklevel=2,
            )
        return artifact

    # --------------------------------------------------------------- dunders

    def __eq__(self, other):
        if not isinstance(other, CompressedProvenance):
            return NotImplemented
        return (
            self.polynomials == other.polynomials
            and self.vvs.labels == other.vvs.labels
            and self.algorithm == other.algorithm
            and self.bound == other.bound
            and self.original_size == other.original_size
            and self.original_granularity == other.original_granularity
            and self.monomial_loss == other.monomial_loss
            and self.variable_loss == other.variable_loss
        )

    def __repr__(self):
        return (
            f"CompressedProvenance({len(self.polynomials)} polynomials, "
            f"{self.original_size}->{self.abstracted_size} monomials, "
            f"algorithm={self.algorithm!r}, bound={self.bound})"
        )
