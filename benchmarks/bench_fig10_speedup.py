"""Figure 10: assignment-time speedup as a function of the bound.

Paper shape: the speedup of applying hypothetical scenarios on the
compressed provenance tracks the compression itself — up to ~100% for
Q1/Q5 (few, highly compressible polynomials), just below 80% for the
running example, and negligible for Q10 (whose maximal compression is
~0.03%: many tiny polynomials, nothing to merge).
"""

import pytest

from repro.algorithms.optimal import optimal_vvs
from repro.scenarios import Scenario, assignment_speedup
from benchmarks import common

#: Figure/table benches run minutes at full scale; `-m "not slow"` skips them.
pytestmark = pytest.mark.slow

FRACTIONS = [1.0, 0.75, 0.5, 0.25]
TREE_FANOUTS = (8,)
NUM_SCENARIOS = 10


def _scenarios(provenance):
    variables = sorted(provenance.variables)
    return [
        Scenario.uniform(f"scenario-{i}", variables, 1.0 - 0.02 * i)
        for i in range(NUM_SCENARIOS)
    ]


def _series(workload):
    provenance = common.workload_provenance(workload)
    tree = common.workload_tree(workload, TREE_FANOUTS).clean(
        provenance.variables
    )
    scenarios = _scenarios(provenance)
    rows = []
    for fraction in FRACTIONS:
        bound = common.feasible_bound(provenance, tree, fraction)
        result = optimal_vvs(provenance, tree, bound, clean=False)
        abstracted = result.apply(provenance)
        report = assignment_speedup(
            provenance, abstracted, scenarios, vvs=result.vvs, repeat=3
        )
        rows.append(
            [
                workload,
                bound,
                result.abstracted_size,
                f"{report.raw_seconds * 1e3:.2f}",
                f"{report.abstracted_seconds * 1e3:.2f}",
                f"{report.speedup_percent:.1f}%",
            ]
        )
    return rows


@pytest.mark.parametrize("workload", common.WORKLOADS)
def test_fig10(benchmark, workload):
    rows = benchmark.pedantic(_series, args=(workload,), rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
    common.emit(
        f"fig10_{workload}",
        ["workload", "bound", "|P↓S|_M", "raw [ms]", "compressed [ms]",
         "speedup"],
        rows,
        title=f"Figure 10 — {workload}: assignment speedup vs bound",
    )
    assert rows
    # Shape: the tightest bound yields the (weakly) largest speedup.
    speedups = [float(row[5].rstrip("%")) for row in rows]
    assert max(speedups[0], 0.0) >= min(speedups) - 15.0
