"""The telephony-company benchmark (the paper's running example, §4.2).

Two entry points:

* :func:`figure1_database` — the exact database fragment of Figure 1
  (with customer 1's January duration at 552 minutes so the aggregate
  reproduces the paper's ``220.8·p1·m1`` monomial; the figure prints
  522, an arithmetic slip in the paper — see DESIGN.md);
* :class:`TelephonyBenchmark` — the scaled generator of §4.2: for each
  customer "select randomly one of 128 possible plans, 5 digit zip code
  and the total number of calls durations for each month", prices
  "parametrized by month and plan (by 12 and 128 variables
  respectively)".
"""

from __future__ import annotations

from repro.core.parser import parse_set
from repro.core.tree import AbstractionTree
from repro.engine.query import Query
from repro.engine.table import Relation
from repro.util.rng import derive_rng
from repro.workloads.trees import layered_tree

__all__ = [
    "figure1_database",
    "figure1_plan_variables",
    "example13_polynomials",
    "plans_tree",
    "months_tree",
    "revenue_by_zip",
    "TelephonyBenchmark",
]

# ---------------------------------------------------------------------------
# The Figure 1 / Examples 1-15 fragment.
# ---------------------------------------------------------------------------

#: Plan → parameter variable, per Example 13's naming.
_FIGURE1_PLAN_VARS = {
    "A": "p1",
    "B": "p2",
    "F1": "f1",
    "F2": "f2",
    "F3": "f3",
    "Y1": "y1",
    "Y2": "y2",
    "V": "v",
    "SB1": "b1",
    "SB2": "b2",
    "E": "e",
}


def figure1_plan_variables():
    """The plan→variable naming of Examples 2/13 (copy)."""
    return dict(_FIGURE1_PLAN_VARS)


def figure1_database():
    """The Figure 1 fragment as three relations (Cust, Calls, Plans)."""
    cust = Relation.from_rows(
        ["ID", "Plan", "Zip"],
        [
            (1, "A", 10001),
            (2, "F1", 10001),
            (3, "SB1", 10002),
            (4, "Y1", 10001),
            (5, "V", 10001),
            (6, "E", 10002),
            (7, "SB2", 10002),
        ],
        name="Cust",
    )
    calls = Relation.from_rows(
        ["CID", "Mo", "Dur"],
        [
            # January (the figure prints 522 for customer 1; 552 matches
            # the polynomial 220.8 = 552 * 0.4 used throughout the paper).
            (1, 1, 552),
            (2, 1, 364),
            (3, 1, 779),
            (4, 1, 253),
            (5, 1, 168),
            (6, 1, 1044),
            (7, 1, 697),
            # March
            (1, 3, 480),
            (2, 3, 327),
            (3, 3, 805),
            (4, 3, 290),
            (5, 3, 121),
            (6, 3, 1130),
            (7, 3, 671),
        ],
        name="Calls",
    )
    plans = Relation.from_rows(
        ["Plan", "Mo", "Price"],
        [
            ("A", 1, 0.4),
            ("F1", 1, 0.35),
            ("Y1", 1, 0.3),
            ("V", 1, 0.25),
            ("SB1", 1, 0.1),
            ("SB2", 1, 0.1),
            ("E", 1, 0.05),
            ("A", 3, 0.5),
            ("F1", 3, 0.35),
            ("Y1", 3, 0.25),
            ("V", 3, 0.2),
            ("SB1", 3, 0.1),
            ("SB2", 3, 0.15),
            ("E", 3, 0.05),
        ],
        name="Plans",
    )
    return cust, calls, plans


def example13_polynomials():
    """``{P1, P2}`` of Example 13, exactly as printed."""
    return parse_set(
        [
            "220.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + "
            "75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3",
            "77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + "
            "69.7*b2*m1 + 100.65*b2*m3",
        ]
    )


def plans_tree():
    """The plans abstraction tree of Figure 2."""
    return AbstractionTree.from_nested(
        (
            "Plans",
            [
                ("Standard", ["p1", "p2"]),
                ("Special", [("Y", ["y1", "y2", "y3"]), ("F", ["f1", "f2"]), "v"]),
                ("Business", [("SB", ["b1", "b2"]), "e"]),
            ],
        )
    )


def months_tree():
    """The months/quarters abstraction tree of Figure 3."""
    quarters = []
    for quarter in range(4):
        months = [f"m{quarter * 3 + i}" for i in (1, 2, 3)]
        quarters.append((f"q{quarter + 1}", months))
    return AbstractionTree.from_nested(("Year", quarters))


def revenue_by_zip(cust, calls, plans, plan_variable=None):
    """The running-example query (§1) with plan/month parameterization.

    ``plan_variable`` maps a plan name to its scenario variable
    (defaults to the Figure 1 naming for known plans, identity
    otherwise). Returns an :class:`~repro.engine.aggregates.AggregateResult`
    whose group polynomials are the paper's revenue provenance.
    """
    if plan_variable is None:
        mapping = _FIGURE1_PLAN_VARS

        def plan_variable(plan):
            return mapping.get(plan, str(plan))

    return (
        Query(calls)
        .join(cust, on=("CID", "ID"))
        .join(plans, on=["Plan", "Mo"])
        .group_by("Zip")
        .sum(
            lambda row: row["Dur"] * row["Price"],
            params=lambda row: [plan_variable(row["Plan"]), f"m{row['Mo']}"],
        )
    )


# ---------------------------------------------------------------------------
# The scaled benchmark generator (§4.2).
# ---------------------------------------------------------------------------


class TelephonyBenchmark:
    """Randomly populated telephony database + its provenance (§4.2).

    :param customers: number of customers (the paper sweeps 10K–5M).
    :param num_plans: distinct calling plans (paper: 128).
    :param months: billing months (paper: 12).
    :param zip_pool: how many distinct zip codes to draw from — this is
        the number of result polynomials (paper: ~100,000; scale it with
        ``customers`` to keep groups non-trivial).
    :param seed: deterministic generator seed.

    >>> bench = TelephonyBenchmark(customers=50, zip_pool=5, seed=7)
    >>> provenance = bench.provenance()
    >>> len(provenance) <= 5 and provenance.num_monomials > 0
    True
    """

    def __init__(self, customers=1000, num_plans=128, months=12, zip_pool=100, seed=0):
        self.customers = customers
        self.num_plans = num_plans
        self.months = months
        self.zip_pool = zip_pool
        self.seed = seed
        self._relations = None

    @property
    def plan_names(self):
        return [f"P{i}" for i in range(self.num_plans)]

    def plan_variable(self, plan):
        """Plan ``Pi`` is parameterized by variable ``pi``."""
        return f"p{plan[1:]}"

    @property
    def plan_variables(self):
        return [f"p{i}" for i in range(self.num_plans)]

    @property
    def month_variables(self):
        return [f"m{i}" for i in range(1, self.months + 1)]

    def relations(self):
        """Generate (Cust, Calls, Plans) — cached, deterministic."""
        if self._relations is not None:
            return self._relations
        plan_rng = derive_rng(self.seed, "plans")
        cust_rng = derive_rng(self.seed, "customers")
        call_rng = derive_rng(self.seed, "calls")

        plan_rows = []
        for plan in self.plan_names:
            for month in range(1, self.months + 1):
                price = round(plan_rng.uniform(0.05, 0.5), 2)
                plan_rows.append((plan, month, price))
        plans = Relation.from_rows(["Plan", "Mo", "Price"], plan_rows, name="Plans")

        cust_rows = []
        call_rows = []
        for cid in range(1, self.customers + 1):
            plan = self.plan_names[cust_rng.randrange(self.num_plans)]
            zip_code = 10000 + cust_rng.randrange(self.zip_pool)
            cust_rows.append((cid, plan, zip_code))
            for month in range(1, self.months + 1):
                duration = call_rng.randint(0, 1500)
                call_rows.append((cid, month, duration))
        cust = Relation.from_rows(["ID", "Plan", "Zip"], cust_rows, name="Cust")
        calls = Relation.from_rows(["CID", "Mo", "Dur"], call_rows, name="Calls")
        self._relations = (cust, calls, plans)
        return self._relations

    def provenance(self):
        """Run the revenue query; one polynomial per zip code."""
        cust, calls, plans = self.relations()
        result = revenue_by_zip(cust, calls, plans, self.plan_variable)
        return result.polynomials

    def plans_abstraction_tree(self, fanouts=(8,)):
        """A layered tree over the ``num_plans`` plan variables."""
        return layered_tree(self.plan_variables, fanouts, prefix="plans")

    def months_abstraction_tree(self):
        """Quarter tree over the month variables (Figure 3 shape)."""
        if self.months % 3 != 0:
            return layered_tree(self.month_variables, (1,), prefix="months")
        quarters = []
        for quarter in range(self.months // 3):
            months = [f"m{quarter * 3 + i}" for i in (1, 2, 3)]
            quarters.append((f"q{quarter + 1}", months))
        return AbstractionTree.from_nested(("Year", quarters))
