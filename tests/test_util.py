"""Tests for the utility helpers (rng, timing, tables)."""

import pytest

from repro.util.rng import derive_rng, derive_seed
from repro.util.tables import format_table
from repro.util.timing import Timer, time_call


class TestRng:
    def test_seed_is_deterministic(self):
        assert derive_seed(1, "calls") == derive_seed(1, "calls")

    def test_seed_differs_by_name(self):
        assert derive_seed(1, "calls") != derive_seed(1, "plans")

    def test_seed_differs_by_base(self):
        assert derive_seed(1, "calls") != derive_seed(2, "calls")

    def test_rng_streams_are_independent(self):
        a = derive_rng(1, "a")
        b = derive_rng(1, "b")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]

    def test_rng_reproducible(self):
        a = [derive_rng(7, "x").random() for _ in range(2)]
        b = [derive_rng(7, "x").random() for _ in range(2)]
        assert a == b


class TestTimer:
    def test_measures_nonnegative(self):
        with Timer() as timer:
            sum(range(100))
        assert timer.elapsed >= 0.0

    def test_time_call_returns_result(self):
        seconds, result = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0.0

    def test_time_call_repeat_takes_minimum(self):
        seconds, _ = time_call(lambda: None, repeat=3)
        assert seconds >= 0.0

    def test_time_call_rejects_zero_repeat(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeat=0)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["col", "x"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("col")
        assert all("|" in line for line in lines if "-" not in line)

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text
