"""Table 1: greedy accuracy and runtime speedup vs Opt VVS, per tree type.

Paper shape: type 1 (2-level) trees are solved optimally by the greedy
in (almost) all cases — their middle nodes are interchangeable; deeper
trees lose accuracy, and the loss is worse on the workloads with many
polynomials (Q10, running example) which are "more sensitive to
'locally' greedy selection". Accuracy = VL_opt / VL_greedy; speedup =
1 − t_greedy / t_opt.
"""

import pytest

from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from benchmarks import common

#: Figure/table benches run minutes at full scale; `-m "not slow"` skips them.
pytestmark = pytest.mark.slow


def _accuracy(optimal_vl, greedy_vl):
    if greedy_vl == 0:
        return 100.0
    return 100.0 * optimal_vl / greedy_vl


def _series(workload):
    provenance = common.workload_provenance(workload)
    rows = []
    for tree_type in range(1, 8):
        # The largest configuration of the type that survives clamping.
        fanouts = common.scaled_fanouts(
            common.catalog_fanouts(tree_type)[-1]
        )
        tree = common.workload_tree(workload, fanouts).clean(
            provenance.variables
        )
        if tree is None:
            continue
        bound = common.feasible_bound(provenance, tree)
        opt_seconds, optimal = common.timed(
            optimal_vvs, provenance, tree, bound, clean=False
        )
        greedy_seconds, greedy = common.timed(
            greedy_vvs, provenance, common.forest_of(tree), bound, clean=False
        )
        accuracy = _accuracy(optimal.variable_loss, greedy.variable_loss)
        speedup = 100.0 * (1.0 - greedy_seconds / opt_seconds) if opt_seconds else 0.0
        rows.append(
            [
                workload,
                tree_type,
                str(fanouts),
                optimal.variable_loss,
                greedy.variable_loss,
                f"{accuracy:.2f}%",
                f"{speedup:.1f}%",
            ]
        )
    return rows


@pytest.mark.parametrize("workload", common.WORKLOADS)
def test_table1(benchmark, workload):
    rows = benchmark.pedantic(_series, args=(workload,), rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
    common.emit(
        f"table1_{workload}",
        ["workload", "tree type", "fanouts", "VL opt", "VL greedy",
         "accuracy", "runtime speedup"],
        rows,
        title=f"Table 1 — {workload}: greedy accuracy and speedup",
    )
    assert rows
    # Soundness: greedy can never lose FEWER variables than the optimum
    # while meeting the bound, so accuracy is capped at 100%.
    for row in rows:
        assert float(row[5].rstrip("%")) <= 100.0 + 1e-9
