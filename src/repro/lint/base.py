"""Framework primitives for the ``repro lint`` invariant checkers.

The checkers encode contracts that otherwise live only in docstrings
and property tests (bit-identical engines, read-only mmap views,
leak-free shared memory, exact coefficients, the ``engine=``/
``backend=`` threading). Everything here is pure stdlib — ``ast`` for
structure, ``tokenize`` for suppression pragmas — so the linter can
run in any environment the package itself runs in.

Vocabulary:

* :class:`Finding` — one diagnostic: ``path:line: CODE message``;
* :class:`ModuleSource` — a parsed file handed to checkers (source
  text, AST, import-alias table, dotted-name resolution);
* :class:`Checker` — the plugin base class; subclasses declare a
  ``code`` (``RPLxxx``), the path suffixes they apply to, and a
  :meth:`Checker.check` generator over a module;
* :func:`suppressed_lines` — the ``# repro-lint: ignore[RPLxxx]``
  pragma map the runner uses to drop findings.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass

__all__ = [
    "Checker",
    "Finding",
    "ModuleSource",
    "match_path",
    "suppressed_lines",
]

#: Inline suppression pragma: ``# repro-lint: ignore[RPL001]`` (codes
#: may be comma-separated). The pragma silences the listed codes on the
#: physical line it sits on.
PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")

#: Shape every rule code must have (``RPL`` + digits).
CODE_RE = re.compile(r"^RPL\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, anchored to a source line.

    * ``path`` — the file, as the lint invocation named it;
    * ``line`` — 1-based physical line;
    * ``code`` — the rule (``RPL001`` ... ``RPL100``);
    * ``message`` — what contract is broken and how to fix it.
    """

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """A JSON-ready mapping (the ``--format json`` row shape)."""
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "message": self.message,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.code)


def _norm(path: str) -> str:
    """``path`` with forward slashes (so suffix matching is portable)."""
    return str(path).replace("\\", "/")


def match_path(path: str, suffix: str) -> bool:
    """Does ``path`` end with ``suffix`` on a path-segment boundary?

    ``core/batch.py`` matches ``src/repro/core/batch.py`` but not
    ``src/repro/core/megabatch.py`` — the character before the suffix
    must be a separator (or the suffix must be the whole path).

    >>> match_path("src/repro/core/batch.py", "core/batch.py")
    True
    >>> match_path("src/repro/core/megabatch.py", "batch.py")
    False
    """
    path = _norm(path)
    suffix = _norm(suffix)
    if path == suffix:
        return True
    if suffix.endswith("/"):
        # Directory suffix: any file under a .../<suffix> directory.
        return f"/{suffix}" in f"/{path}"
    return path.endswith(f"/{suffix}")


def suppressed_lines(text: str) -> dict:
    """``{line: frozenset(codes)}`` of the file's suppression pragmas.

    Comments are located with :mod:`tokenize` so pragma-looking text
    inside string literals never suppresses anything; on tokenize
    failure (the file will separately fail to parse) the map is empty.
    """
    suppressions = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            matched = PRAGMA_RE.search(token.string)
            if not matched:
                continue
            codes = frozenset(
                code.strip().upper()
                for code in matched.group(1).split(",")
                if code.strip()
            )
            line = token.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | codes
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return suppressions


class ModuleSource:
    """One source file, parsed once and shared by every checker.

    Besides the AST, carries the module's import-alias table so
    checkers can resolve dotted names robustly: ``np.power`` and
    ``numpy.power`` both resolve to ``numpy.power``, and a local
    variable that merely *shadows* ``random`` resolves to nothing.
    """

    def __init__(self, path: str, text: str):
        self.path = _norm(path)
        self.text = text
        self._tree = None
        self._aliases = None

    @property
    def tree(self) -> ast.Module:
        """The parsed AST (cached; :class:`SyntaxError` propagates)."""
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=self.path)
        return self._tree

    @property
    def aliases(self) -> dict:
        """``{local_name: dotted_origin}`` over every import statement.

        ``import numpy as np`` maps ``np -> numpy``; ``from
        multiprocessing import shared_memory`` maps ``shared_memory ->
        multiprocessing.shared_memory``; ``from random import randint``
        maps ``randint -> random.randint``. Relative imports keep their
        trailing module path (the leading package is unknown from a
        single file and never matters to the checkers).
        """
        if self._aliases is None:
            aliases = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for name in node.names:
                        local = name.asname or name.name.split(".")[0]
                        origin = name.name if name.asname else local
                        aliases[local] = origin
                elif isinstance(node, ast.ImportFrom):
                    base = node.module or ""
                    for name in node.names:
                        if name.name == "*":
                            continue
                        local = name.asname or name.name
                        origin = f"{base}.{name.name}" if base else name.name
                        aliases[local] = origin
            self._aliases = aliases
        return self._aliases

    def resolve(self, node: ast.AST) -> str:
        """The dotted origin of a Name/Attribute chain, or ``""``.

        Only chains rooted at an *imported* name resolve — attribute
        chains on locals or ``self`` yield ``""`` so checkers never
        misfire on coincidental attribute names.
        """
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return ""
        origin = self.aliases.get(node.id)
        if origin is None:
            return ""
        parts.append(origin)
        return ".".join(reversed(parts))


class Checker:
    """Base class every RPL rule subclasses.

    Class attributes declare the rule:

    * ``code`` — the ``RPLxxx`` identifier (unique, validated by the
      registry);
    * ``name`` — a short slug for listings;
    * ``description`` — one line: the contract being enforced;
    * ``paths`` — path suffixes the rule applies to (empty = every
      file); ``exclude_paths`` — suffixes exempted even when matched.

    Subclasses implement :meth:`check` as a generator of
    :class:`Finding` over one :class:`ModuleSource`.
    """

    code = ""
    name = ""
    description = ""
    paths: tuple = ()
    exclude_paths: tuple = ()

    def applies_to(self, path: str) -> bool:
        """Should this rule run on ``path``? (Suffix-matched.)"""
        if any(match_path(path, suffix) for suffix in self.exclude_paths):
            return False
        if not self.paths:
            return True
        return any(match_path(path, suffix) for suffix in self.paths)

    def check(self, module: ModuleSource):
        """Yield :class:`Finding` objects for ``module``."""
        raise NotImplementedError

    def finding(self, module: ModuleSource, node, message: str) -> Finding:
        """A :class:`Finding` at ``node`` (an AST node or a line int)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(module.path, line, self.code, message)
