"""Algorithm 1 — optimal valid variable selection for a single tree (§3.1).

Given a (multi)set of polynomials ``P``, one abstraction tree ``T`` and a
bound ``B``, find the VVS ``S`` with ``|P↓S|_M ≤ B`` that minimizes the
variable loss (equivalently, maximizes the surviving granularity).
Proposition 12: this restricted problem is in PTIME; Proposition 14
bounds the dynamic program by ``O(n · w · k² · |P|_M)`` with
``k = |P|_M − B``.

Why the DP is sound (the paper's "key insight"): compatibility allows at
most one variable of ``T`` per monomial, so VVSs rooted in disjoint
subtrees merge *disjoint* sets of monomials — both ``ML`` and ``VL`` are
additive across siblings, and a per-node table indexed by monomial loss
composes by (saturating) sums.

Two implementations are provided:

* :func:`optimal_vvs` — the optimized version the paper benchmarks
  (§4.1): sparse hash tables instead of dense arrays, Pareto pruning of
  dominated entries, the height-1 shortcut, and the one-pass
  :class:`~repro.core.abstraction.LossIndex` for all per-node ``ML``
  values.
* :func:`optimal_vvs_naive` — a literal transcription of the paper's
  pseudo-code (dense arrays, per-node polynomial traversal for ``ML``).
  It exists as an executable specification: tests assert both versions
  agree, and the ablation benchmark measures the gap the optimizations
  buy.
"""

from __future__ import annotations

from repro.core.abstraction import LossIndex, abstract_counts, ensure_set
from repro.core.forest import AbstractionForest, ValidVariableSet
from repro.core.tree import AbstractionTree
from repro.algorithms.result import AbstractionResult, InfeasibleBoundError

__all__ = ["optimal_vvs", "optimal_vvs_naive"]

# Choice markers for reconstruction.
_SELF = "self"
_CHILDREN = "children"


def _as_single_tree(tree):
    """Accept an AbstractionTree or a one-tree forest; return the tree."""
    if isinstance(tree, AbstractionTree):
        return tree
    if isinstance(tree, AbstractionForest):
        if len(tree.trees) != 1:
            raise ValueError(
                "optimal_vvs handles exactly one abstraction tree "
                f"(got {len(tree.trees)}); the multi-tree problem is NP-hard — "
                "use repro.algorithms.greedy.greedy_vvs"
            )
        return tree.trees[0]
    raise TypeError(f"expected AbstractionTree, got {type(tree).__name__}")


def _pareto(entries):
    """Drop dominated entries: keep, per ml, min vl; then the frontier.

    Entry ``(ml₁, vl₁)`` is dominated by ``(ml₂, vl₂)`` when
    ``ml₂ ≥ ml₁`` and ``vl₂ ≤ vl₁``: more compression for fewer lost
    variables can never hurt the final objective (ML is only constrained
    from below, VL is minimized). Returns ``{ml: (vl, choice)}``.
    """
    best = {}
    for ml, vl, choice in entries:
        current = best.get(ml)
        if current is None or vl < current[0]:
            best[ml] = (vl, choice)
    frontier = {}
    best_vl = None
    for ml in sorted(best, reverse=True):
        vl, choice = best[ml]
        if best_vl is None or vl < best_vl:
            frontier[ml] = (vl, choice)
            best_vl = vl
    return frontier


def _combine_children(child_tables, child_labels, k):
    """The paper's ``computeArray``: knapsack over children tables.

    Returns ``{ml: (vl, ((child_label, child_ml), ...))}`` where ``ml``
    saturates at ``k`` (the paper's ``A_v[k]`` records "ML ≥ k").
    """
    table = {0: (0, ())}
    for label, child in zip(child_labels, child_tables, strict=True):
        merged = {}
        for ml_acc, (vl_acc, picks) in table.items():
            for ml_child, (vl_child, _) in child.items():
                ml = min(k, ml_acc + ml_child)
                vl = vl_acc + vl_child
                current = merged.get(ml)
                if current is None or vl < current[0]:
                    merged[ml] = (vl, picks + ((label, ml_child),))
        table = _pareto(
            (ml, vl, choice) for ml, (vl, choice) in merged.items()
        )
    return table


def optimal_vvs(polynomials, tree, bound, *, clean=True, backend="auto"):
    """Optimal single-tree abstraction (Algorithm 1, optimized).

    :param polynomials: a :class:`Polynomial` or :class:`PolynomialSet`.
    :param tree: the abstraction tree (or a one-tree forest).
    :param bound: desired maximum number of monomials ``B``.
    :param clean: apply footnote 1 (drop absent leaves, splice
        single-child nodes) before solving; disable only if the tree is
        already clean.
    :param backend: engine for the :class:`LossIndex` and the final
        counting pass — ``"object"``, ``"columnar"``, or ``"auto"``
        (see :mod:`repro.core.columnar`; the DP itself runs over tree
        nodes either way and the selected cut is identical).
    :raises InfeasibleBoundError: when even the coarsest cut exceeds
        ``bound``.

    >>> from repro.core.parser import parse_set
    >>> polys = parse_set(["2*b1*m1 + 3*b1*m3 + 4*b2*m1 + 5*b2*m3"])
    >>> tree = AbstractionTree.from_nested(("SB", ["b1", "b2"]))
    >>> result = optimal_vvs(polys, tree, bound=2)
    >>> sorted(result.vvs.labels), result.abstracted_size
    (['SB'], 2)
    """
    polynomials = ensure_set(polynomials)
    tree = _as_single_tree(tree)
    if bound < 1:
        raise ValueError(f"bound must be >= 1, got {bound}")
    if clean:
        tree = tree.clean(polynomials.variables)
    forest = AbstractionForest([tree] if tree is not None else [])
    total_monomials = polynomials.num_monomials
    k = total_monomials - bound
    if tree is None or k <= 0:
        # Nothing to compress (or no usable tree): the identity cut.
        return _finish(polynomials, forest, forest.leaf_vvs(), backend)

    index = LossIndex(polynomials, tree, backend=backend)
    if index.max_ml < k:
        raise InfeasibleBoundError(bound, total_monomials - index.max_ml)

    tables = {}
    # Post-order traversal (children before parents).
    order = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(node.children)
    for node in reversed(order):
        label = node.label
        if node.is_leaf:
            tables[label] = {0: (0, (_SELF,))}
            continue
        height_one = all(child.is_leaf for child in node.children)
        if height_one:
            # §4.1 shortcut: a cut inside a height-1 subtree is either
            # all leaves (ml=0, vl=0) or {v} itself.
            table = {0: (0, (_CHILDREN, tuple((c.label, 0) for c in node.children)))}
        else:
            child_labels = [child.label for child in node.children]
            combined = _combine_children(
                [tables[c] for c in child_labels], child_labels, k
            )
            table = {
                ml: (vl, (_CHILDREN, picks)) for ml, (vl, picks) in combined.items()
            }
        ml_self = min(k, index.ml(label))
        vl_self = index.vl(label)
        current = table.get(ml_self)
        if current is None or vl_self < current[0]:
            table[ml_self] = (vl_self, (_SELF,))
        tables[label] = _pareto(
            (ml, vl, choice) for ml, (vl, choice) in table.items()
        )

    root_table = tables[tree.root.label]
    if k not in root_table:
        # Cannot happen when index.max_ml >= k, but guard for safety.
        raise InfeasibleBoundError(bound, total_monomials - index.max_ml)

    labels = set()
    _reconstruct(tree.root, k, tables, labels)
    vvs = ValidVariableSet(forest, frozenset(labels), _validated=True)
    return _finish(polynomials, forest, vvs, backend)


def _reconstruct(node, ml_key, tables, out):
    """Pointer-chase the DP choices into a concrete cut."""
    vl_choice = tables[node.label][ml_key]
    choice = vl_choice[1]
    if choice[0] == _SELF:
        out.add(node.label)
        return
    _, picks = choice
    children = {child.label: child for child in node.children}
    for child_label, child_ml in picks:
        _reconstruct(children[child_label], child_ml, tables, out)


def _finish(polynomials, forest, vvs, backend="auto"):
    size, granularity = abstract_counts(polynomials, vvs.mapping(), backend=backend)
    return AbstractionResult(
        vvs=vvs,
        monomial_loss=polynomials.num_monomials - size,
        variable_loss=polynomials.num_variables - granularity,
        abstracted_size=size,
        abstracted_granularity=granularity,
    )


# --------------------------------------------------------------------------
# Literal transcription of the paper's pseudo-code (executable spec).
# --------------------------------------------------------------------------


def _naive_ml(polynomials, tree, label):
    """The §4.1 "naive way": substitute and re-count, per node."""
    mapping = {leaf: label for leaf in tree.leaves_under(label) if leaf != label}
    size, _ = abstract_counts(polynomials, mapping)
    return polynomials.num_monomials - size


def _naive_vl(polynomials, tree, label):
    variables = polynomials.variables
    present = sum(1 for leaf in tree.leaves_under(label) if leaf in variables)
    return max(0, present - 1)


def optimal_vvs_naive(polynomials, tree, bound, *, clean=True):
    """Algorithm 1 exactly as printed: dense arrays, per-node ML scans.

    Kept as an executable specification of the pseudo-code; tests assert
    it agrees with :func:`optimal_vvs` on every instance. ``⊥`` is
    modelled as ``None``.
    """
    polynomials = ensure_set(polynomials)
    tree = _as_single_tree(tree)
    if bound < 1:
        raise ValueError(f"bound must be >= 1, got {bound}")
    if clean:
        tree = tree.clean(polynomials.variables)
    forest = AbstractionForest([tree] if tree is not None else [])
    total = polynomials.num_monomials
    k = total - bound
    if tree is None or k <= 0:
        return _finish(polynomials, forest, forest.leaf_vvs())

    arrays = {}  # label -> list of (vl, choice) | None, indexed 0..k
    order = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(node.children)

    for node in reversed(order):
        label = node.label
        if node.is_leaf:
            array = [None] * (k + 1)
            array[0] = (0, (_SELF,))
            arrays[label] = array
            continue
        # computeArray: dynamic program over the children, dense.
        child_labels = [child.label for child in node.children]
        tau = [(arrays[child_labels[0]][j] and
                (arrays[child_labels[0]][j][0],
                 ((child_labels[0], j),)))
               for j in range(k + 1)]
        for child_label in child_labels[1:]:
            child_array = arrays[child_label]
            new_tau = [None] * (k + 1)
            for j in range(k + 1):
                for s in range(j + 1):
                    left = tau[s]
                    right = child_array[j - s]
                    if left is None or right is None:
                        continue
                    # Saturate at k: "ML >= k" bucket.
                    target = min(k, j)
                    vl = left[0] + right[0]
                    picks = left[1] + ((child_label, j - s),)
                    if new_tau[target] is None or vl < new_tau[target][0]:
                        new_tau[target] = (vl, picks)
            # Entries whose exact sum exceeds k also land in bucket k.
            for s in range(k + 1):
                for j in range(k + 1 - s, k + 1):
                    left = tau[s]
                    right = child_array[j]
                    if left is None or right is None:
                        continue
                    vl = left[0] + right[0]
                    picks = left[1] + ((child_label, j),)
                    if new_tau[k] is None or vl < new_tau[k][0]:
                        new_tau[k] = (vl, picks)
            tau = new_tau
        array = [
            (entry and (entry[0], (_CHILDREN, entry[1]))) for entry in tau
        ]
        ml_v = _naive_ml(polynomials, tree, label)
        vl_v = _naive_vl(polynomials, tree, label)
        slot = ml_v if ml_v < k else k
        if array[slot] is None or vl_v < array[slot][0]:
            array[slot] = (vl_v, (_SELF,))
        arrays[label] = array

    root_array = arrays[tree.root.label]
    if root_array[k] is None:
        best = max((j for j in range(k + 1) if root_array[j] is not None), default=0)
        raise InfeasibleBoundError(bound, total - best)

    labels = set()

    def reconstruct(node, slot):
        entry = arrays[node.label][slot]
        choice = entry[1]
        if choice[0] == _SELF:
            labels.add(node.label)
            return
        children = {child.label: child for child in node.children}
        for child_label, child_slot in choice[1]:
            reconstruct(children[child_label], child_slot)

    reconstruct(tree.root, k)
    vvs = ValidVariableSet(forest, frozenset(labels), _validated=True)
    return _finish(polynomials, forest, vvs)
