"""The what-if service: routes, error mapping, lifecycle.

Endpoints (all JSON):

* ``POST /artifacts`` — compress once. The body carries provenance as
  polynomial strings (``"polynomials"``) or as a SQL query over inline
  tables (``"sql"`` + ``"tables"``, executed by :mod:`repro.engine`),
  plus the abstraction ``"forest"`` (nested ``[label, [children...]]``
  specs), the ``"bound"``, and optionally ``"algorithm"`` and
  ``"options"``. Returns ``201`` with the content-hash ``id``.
* ``POST /artifacts/{id}/ask`` — answer scenarios. A single
  ``"scenario"`` rides the micro-batcher (coalescing concurrent
  requests into one evaluator call); a ``"scenarios"`` list is already
  a batch and dispatches directly.
* ``POST /artifacts/{id}/extend`` — append provenance incrementally.
  The body carries the new original polynomials as strings
  (``"polynomials"``), plus optional ``"drift_limit"`` and
  ``"options"``. The artifact is maintained under its existing cut
  (columnar/compiled structures repaired, the warm lift index carried
  over) and re-spooled; returns ``201`` with the **new** content-hash
  ``id`` and the unified :class:`~repro.api.mutation.MutationResult`
  stats (``path``, ``drift``, ``revision``). Drift past the limit maps
  to ``422`` — the service holds no original provenance to recompress
  from.
* ``GET /artifacts/{id}`` — the artifact's stats (sizes, losses,
  ``mmap_active``) and residency.
* ``GET /healthz`` — liveness, store counters, coalescing histogram,
  and the resilience state (deadline/queue config, shed and timed-out
  counts, per-artifact circuit-breaker states).

Errors map by exception family (:mod:`repro.errors`): unknown artifact
→ 404, undecodable payloads → 400, infeasible bounds → 422, evaluation
failures → 500. The mapping lives in :data:`STATUS_OF`.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING

from repro.errors import (
    ArtifactNotFound,
    CompressionError,
    EvaluationError,
    ReproError,
    SerializeError,
)
from repro.faults import inject
from repro.options import EvalOptions
from repro.service.batcher import MicroBatcher
from repro.service.http import HttpError, Request, serve_connection
from repro.service.resilience import CircuitBreaker
from repro.service.store import ArtifactStore

if TYPE_CHECKING:
    import os

    from repro.api.artifact import Answer
    from repro.service.warm import WarmArtifact

__all__ = ["WhatIfService", "ServiceServer", "STATUS_OF", "start_service"]

#: Exception family → HTTP status, checked in order (first match wins).
STATUS_OF: tuple[tuple[type[BaseException], int], ...] = (
    (ArtifactNotFound, 404),
    (SerializeError, 400),
    (CompressionError, 422),  # InfeasibleBoundError and kin
    (EvaluationError, 500),
    (ReproError, 400),  # parse/compatibility/non-uniform input errors
    (ValueError, 400),
    (TypeError, 400),
    (KeyError, 400),
)


def _status_for(error: BaseException) -> int:
    for family, status in STATUS_OF:
        if isinstance(error, family):
            return status
    return 500


class WhatIfService:
    """The request handler: a store, a batcher, and the route table.

    Resilience knobs (all off/neutral by default so embedded uses and
    tests opt in; ``python -m repro serve`` turns them on):

    * ``deadline`` — per-request budget in seconds. The budget is
      enforced at ``await`` points (a request parked in the batcher
      past its deadline answers 504); the CPU-bound evaluator itself
      runs synchronously on the loop and is bounded by ``max_batch``.
    * ``max_pending`` — bounded admission: past this many in-flight
      requests, new ones shed with 503 + ``Retry-After`` instead of
      queueing unboundedly.
    * ``breaker_threshold`` / ``breaker_cooldown`` — the per-artifact
      :class:`~repro.service.resilience.CircuitBreaker` for repeated
      map/eval failures.
    """

    def __init__(
        self,
        store: ArtifactStore,
        *,
        window: float = 0.002,
        max_batch: int = 64,
        options: EvalOptions | None = None,
        warm_lift: bool = True,
        deadline: float | None = None,
        max_pending: int | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
    ) -> None:
        self.store = store
        self.batcher = MicroBatcher(window=window, max_batch=max_batch)
        self.options = EvalOptions.coerce(options)
        #: ``False`` routes asks through the plain facade instead of the
        #: per-artifact lift index — the service bench's reference arm
        #: (what a naive server would do per request); answers are
        #: identical either way.
        self.warm_lift = bool(warm_lift)
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {deadline}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.deadline = deadline
        self.max_pending = max_pending
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold, cooldown=breaker_cooldown
        )
        self.started = time.monotonic()
        self.requests = 0
        self.shed = 0
        self.timed_out = 0
        self.closing = False
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()

    # --------------------------------------------------------------- routing

    async def handle(self, request: Request) -> tuple[int, dict]:
        """Dispatch one request; exceptions map via :data:`STATUS_OF`."""
        if self.closing:
            raise HttpError(503, "server is shutting down")
        inject("service.request")
        if self.max_pending is not None and self._inflight >= self.max_pending:
            self.shed += 1
            raise HttpError(
                503,
                f"admission queue full ({self._inflight} requests in "
                f"flight, max_pending={self.max_pending})",
                headers={"Retry-After": "1"},
            )
        self.requests += 1
        self._inflight += 1
        self._idle.clear()
        try:
            if self.deadline is None:
                return await self._route(request)
            try:
                return await asyncio.wait_for(
                    self._route(request), self.deadline
                )
            except asyncio.TimeoutError:
                self.timed_out += 1
                raise HttpError(
                    504,
                    f"request exceeded its {self.deadline}s deadline",
                ) from None
        except HttpError:
            raise
        except asyncio.CancelledError:
            raise
        except Exception as error:
            raise HttpError(
                _status_for(error),
                f"{type(error).__name__}: {error}",
            ) from error
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    async def _route(self, request: Request) -> tuple[int, dict]:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            return 200, self._healthz()
        if path == "/artifacts":
            if method != "POST":
                raise HttpError(405, f"{method} not allowed on {path}")
            return self._create_artifact(request)
        if path.startswith("/artifacts/"):
            rest = path[len("/artifacts/"):]
            if "/" not in rest:
                if method != "GET":
                    raise HttpError(405, f"{method} not allowed on {path}")
                return 200, self._describe_artifact(rest)
            artifact_id, _, action = rest.partition("/")
            if action == "ask":
                if method != "POST":
                    raise HttpError(405, f"{method} not allowed on {path}")
                return await self._ask(artifact_id, request)
            if action == "extend":
                if method != "POST":
                    raise HttpError(405, f"{method} not allowed on {path}")
                return self._extend(artifact_id, request)
        raise HttpError(404, f"no route for {method} {request.path}")

    # ---------------------------------------------------------------- routes

    def _healthz(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": time.monotonic() - self.started,
            "requests": self.requests,
            "store": self.store.stats(),
            "batcher": {
                "window_seconds": self.batcher.window,
                "max_batch": self.batcher.max_batch,
                "batches": self.batcher.batches,
                "coalesced_requests": self.batcher.coalesced,
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(
                        self.batcher.batch_sizes.items()
                    )
                },
            },
            "resilience": {
                "deadline_seconds": self.deadline,
                "max_pending": self.max_pending,
                "inflight": self._inflight,
                "shed": self.shed,
                "timed_out": self.timed_out,
                "breakers": self.breaker.snapshot(),
            },
        }

    def _create_artifact(self, request: Request) -> tuple[int, dict]:
        body = _require_object(request.json(), "artifact request")
        session = _session_from(body)
        bound = body.get("bound")
        if not isinstance(bound, int) or isinstance(bound, bool):
            raise HttpError(400, "'bound' must be an integer")
        algorithm = body.get("algorithm", "auto")
        options = EvalOptions.coerce(body.get("options"))
        artifact = session.compress(bound, algorithm=algorithm, options=options)
        artifact_id = self.store.put(artifact)
        stored = self.store.get(artifact_id)
        return 201, {"id": artifact_id, "stats": stored.artifact.stats()}

    def _extend(self, artifact_id: str, request: Request) -> tuple[int, dict]:
        import warnings

        from repro.core.parser import parse_set

        body = _require_object(request.json(), "extend request")
        texts = body.get("polynomials")
        if (
            not isinstance(texts, list)
            or not texts
            or not all(isinstance(text, str) for text in texts)
        ):
            raise HttpError(
                400, "'polynomials' must be a non-empty list of strings"
            )
        drift_limit = body.get("drift_limit")
        if drift_limit is not None and (
            not isinstance(drift_limit, (int, float))
            or isinstance(drift_limit, bool)
        ):
            raise HttpError(400, "'drift_limit' must be a number")
        options = EvalOptions.coerce(body.get("options"))
        warm = self._fetch(artifact_id)
        added = parse_set(texts)
        with warnings.catch_warnings():
            # Spooled artifacts are always mmap-backed, so every service
            # extend goes copy-on-extend by construction — the API's
            # one-time advisory about it is noise here.
            warnings.filterwarnings(
                "ignore", message="extending a binary-loaded artifact"
            )
            result = warm.artifact.refresh(
                added, drift_limit=drift_limit, options=options
            )
        # Re-spool under the new content hash; the unchanged cut lets
        # the warm lift index carry over instead of being rebuilt.
        new_id = self.store.put(result.artifact, warm_from=warm)
        self.breaker.record_success(artifact_id)
        return 201, result.with_id(new_id).stats()

    def _describe_artifact(self, artifact_id: str) -> dict:
        warm = self._fetch(artifact_id)
        self.breaker.record_success(artifact_id)
        return {"id": artifact_id, "stats": warm.artifact.stats()}

    async def _ask(
        self, artifact_id: str, request: Request
    ) -> tuple[int, dict]:
        body = _require_object(request.json(), "ask request")
        warm = self._fetch(artifact_id)
        default = body.get("default", 1.0)
        if not isinstance(default, (int, float)) or isinstance(default, bool):
            raise HttpError(400, "'default' must be a number")
        options = EvalOptions.coerce(body.get("options"))
        if "scenario" in body and "scenarios" in body:
            raise HttpError(400, "pass 'scenario' or 'scenarios', not both")
        if "scenario" in body:
            scenario = _scenario_from(body["scenario"], index=0)
            answer = await self.batcher.submit(
                (artifact_id, default, options),
                scenario,
                lambda items: self._evaluate(
                    warm, items, default, options, artifact_id=artifact_id
                ),
            )
            return 200, {"answers": [_answer_json(answer)]}
        if "scenarios" in body:
            entries = body["scenarios"]
            if not isinstance(entries, list):
                raise HttpError(400, "'scenarios' must be a list")
            scenarios = [
                _scenario_from(entry, index=index)
                for index, entry in enumerate(entries)
            ]
            answers = self._evaluate(
                warm, scenarios, default, options, artifact_id=artifact_id
            )
            return 200, {"answers": [_answer_json(a) for a in answers]}
        raise HttpError(400, "missing 'scenario' (one) or 'scenarios' (many)")

    def _fetch(self, artifact_id: str) -> WarmArtifact:
        """Breaker-guarded store fetch.

        Map/decode failures (fault site ``store.map``, tampered files)
        count against the artifact's breaker; a 404 is the client's
        problem, not the artifact's health.
        """
        self.breaker.admit(artifact_id)
        try:
            return self.store.get(artifact_id)
        except ArtifactNotFound:
            raise
        except Exception:
            self.breaker.record_failure(artifact_id)
            raise

    def _evaluate(
        self,
        warm: WarmArtifact,
        scenarios: list,
        default: float,
        options: EvalOptions,
        *,
        artifact_id: str | None = None,
    ) -> list[Answer]:
        """One batched evaluator call; unexpected failures become
        :class:`~repro.errors.EvaluationError` (one 500, not a dropped
        connection per waiter). Outcomes feed the artifact's breaker."""
        try:
            if self.warm_lift:
                answers = warm.ask_many(
                    scenarios, default=default, options=options)
            else:
                answers = warm.artifact.ask_many(
                    scenarios, default=default, options=options)
        except ReproError:
            if artifact_id is not None:
                self.breaker.record_failure(artifact_id)
            raise
        except Exception as error:
            if artifact_id is not None:
                self.breaker.record_failure(artifact_id)
            raise EvaluationError(
                f"scenario evaluation failed: {type(error).__name__}: {error}"
            ) from error
        if artifact_id is not None:
            self.breaker.record_success(artifact_id)
        return answers

    # -------------------------------------------------------------- lifecycle

    async def drain(self, timeout: float = 10.0) -> None:
        """Flush open batches and wait for in-flight requests to finish."""
        self.batcher.drain()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:
            pass


class ServiceServer:
    """A running service bound to a socket; closes gracefully."""

    def __init__(
        self, service: WhatIfService, server: asyncio.base_events.Server
    ) -> None:
        self.service = service
        self.server = server
        self._connections: set[asyncio.Task] = set()

    @property
    def port(self) -> int:
        return self.server.sockets[0].getsockname()[1]

    def track(self) -> None:
        """Register the current connection task for shutdown cleanup."""
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)

    async def aclose(self) -> None:
        """Graceful shutdown: stop accepting, drain batches, finish
        in-flight requests, then drop idle keep-alive connections."""
        self.service.closing = True
        self.server.close()
        await self.service.drain()
        for task in list(self._connections):
            task.cancel()
        await self.server.wait_closed()

    async def serve_forever(self) -> None:
        await self.server.serve_forever()


async def start_service(
    spool: str | os.PathLike,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    capacity: int = 8,
    window: float = 0.002,
    max_batch: int = 64,
    options: EvalOptions | None = None,
    warm_lift: bool = True,
    deadline: float | None = None,
    max_pending: int | None = None,
    breaker_threshold: int = 5,
    breaker_cooldown: float = 30.0,
) -> ServiceServer:
    """Bind the what-if service; returns the running server handle."""
    store = ArtifactStore(spool, capacity=capacity)
    service = WhatIfService(
        store, window=window, max_batch=max_batch, options=options,
        warm_lift=warm_lift, deadline=deadline, max_pending=max_pending,
        breaker_threshold=breaker_threshold,
        breaker_cooldown=breaker_cooldown,
    )
    handle: ServiceServer

    async def on_connection(reader, writer):
        handle.track()
        await serve_connection(reader, writer, service.handle)

    server = await asyncio.start_server(on_connection, host=host, port=port)
    handle = ServiceServer(service, server)
    return handle


# ---------------------------------------------------------------- body schema


def _require_object(document: object, what: str) -> dict:
    if not isinstance(document, dict):
        raise HttpError(400, f"{what} body must be a JSON object")
    return document


def _forest_spec(spec: object) -> object:
    """JSON nested arrays → the tuple specs :func:`as_forest` takes."""
    if isinstance(spec, list):
        if (
            len(spec) == 2
            and isinstance(spec[0], str)
            and isinstance(spec[1], list)
        ):
            return (spec[0], [_forest_spec(child) for child in spec[1]])
        return [_forest_spec(child) for child in spec]
    if isinstance(spec, str):
        return spec
    raise HttpError(
        400,
        "forest specs are nested [label, [children...]] arrays of strings",
    )


def _session_from(body: dict):
    from repro.api.session import ProvenanceSession

    forest = body.get("forest")
    if forest is None:
        raise HttpError(400, "missing 'forest' (the abstraction hierarchy)")
    forest = _forest_spec(forest)
    if "polynomials" in body:
        texts = body["polynomials"]
        if not isinstance(texts, list) or not all(
            isinstance(text, str) for text in texts
        ):
            raise HttpError(400, "'polynomials' must be a list of strings")
        return ProvenanceSession.from_strings(texts, forest=forest)
    if "sql" in body:
        return ProvenanceSession.from_query(
            body["sql"],
            _relations_from(body.get("tables")),
            params=_params_from(body.get("variables")),
            forest=forest,
        )
    raise HttpError(400, "missing provenance: pass 'polynomials' or 'sql'")


def _relations_from(tables: object) -> dict:
    from repro.engine.table import Relation

    if not isinstance(tables, dict) or not tables:
        raise HttpError(400, "'sql' needs 'tables': {name: {columns, rows}}")
    relations = {}
    for name, spec in tables.items():
        if (
            not isinstance(spec, dict)
            or not isinstance(spec.get("columns"), list)
            or not isinstance(spec.get("rows"), list)
        ):
            raise HttpError(
                400, f"table {name!r} needs 'columns' and 'rows' lists"
            )
        relations[name] = Relation.from_rows(
            spec["columns"],
            [tuple(row) for row in spec["rows"]],
            name=name,
        )
    return relations


def _params_from(variables: object):
    """The ``params`` callable for :meth:`ProvenanceSession.from_query`.

    ``variables`` lists qualified column names whose row values become
    scenario variables — the paper's idiom (a row's plan and month
    become the variables hypothetical scenarios scale).
    """
    if variables is None:
        return None
    if not isinstance(variables, list) or not all(
        isinstance(column, str) for column in variables
    ):
        raise HttpError(400, "'variables' must be a list of column names")

    def params(row: dict) -> list[str]:
        return [str(row[column]) for column in variables if column in row]

    return params


def _scenario_from(entry: object, index: int):
    from repro.scenarios.scenario import Scenario

    if not isinstance(entry, dict):
        raise HttpError(
            400,
            "each scenario is an object with 'changes' (variable → "
            "multiplier) and an optional 'name'",
        )
    changes = entry.get("changes", entry if "name" not in entry else None)
    if not isinstance(changes, dict) or not all(
        isinstance(variable, str)
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
        for variable, value in changes.items()
    ):
        raise HttpError(
            400, "scenario 'changes' must map variable names to numbers"
        )
    name = entry.get("name")
    if name is not None and not isinstance(name, str):
        raise HttpError(400, "scenario 'name' must be a string")
    return Scenario(name if name is not None else f"scenario-{index}", changes)


def _answer_json(answer: Answer) -> dict:
    return {
        "name": answer.name,
        "values": list(answer.values),
        "exact": answer.exact,
    }
