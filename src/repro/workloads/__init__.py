"""Benchmark workloads: telephony running example, TPC-H, tree catalog."""

from repro.workloads.induction import induce_forest, induce_tree
from repro.workloads.random_polys import (
    random_compatible_instance,
    random_polynomials,
)
from repro.workloads.telephony import (
    TelephonyBenchmark,
    example13_polynomials,
    figure1_database,
    figure1_plan_variables,
    months_tree,
    plans_tree,
    revenue_by_zip,
)
from repro.workloads.trees import (
    TREE_CATALOG,
    binary_tree,
    catalog_tree,
    layered_tree,
    random_tree,
    table2_rows,
)

__all__ = [
    "TelephonyBenchmark",
    "figure1_database",
    "figure1_plan_variables",
    "example13_polynomials",
    "plans_tree",
    "months_tree",
    "revenue_by_zip",
    "layered_tree",
    "catalog_tree",
    "binary_tree",
    "random_tree",
    "TREE_CATALOG",
    "table2_rows",
    "random_polynomials",
    "random_compatible_instance",
    "induce_tree",
    "induce_forest",
]
