"""repro.faults — deterministic, seeded fault injection.

Chaos tests are only useful when they are reproducible: a worker crash
that fires "sometimes" cannot gate CI. This module makes failure a
first-class, *scheduled* event. Production code declares named
injection sites (:data:`SITES`) by calling :func:`inject`; a
:class:`FaultPlan` — a list of :class:`FaultSpec` entries firing on
exact per-site call counts — decides what happens there. With no plan
installed, :func:`inject` is a dictionary miss and an early return:
the sites cost nothing in the happy path.

The wired sites:

========================  ====================================================
``worker.start``          pool-worker initializer (`scenarios/parallel.py`)
``shard.evaluate``        per-shard evaluation inside a pool worker
``store.map``             artifact mmap/decode (`service/store.py`)
``store.spool_write``     spool file written, before hashing/rename
``service.request``       HTTP request admitted (`service/app.py`)
========================  ====================================================

Fault kinds: ``crash`` (``os._exit``), ``exception`` (raise
:class:`InjectedFault`), ``delay`` (sleep), ``corrupt`` (flip one
deterministically chosen bit of the file named by the site's ``path``
context). Plans propagate to spawned worker processes through the
``REPRO_FAULT_PLAN`` environment variable; a spec with ``once=True``
claims an atomic token file so it fires exactly once across the whole
process tree even though call counters are per-process.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.util.rng import derive_rng

if TYPE_CHECKING:
    from collections.abc import Iterator

__all__ = [
    "ENV_VAR",
    "KINDS",
    "SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "inject",
    "install",
    "installed",
    "uninstall",
]

ENV_VAR = "REPRO_FAULT_PLAN"

#: Injection sites wired into the tree. Plans may also name ad-hoc
#: sites (tests register their own), but a typo'd site never fires, so
#: specs naming an unknown dotted site are rejected unless marked.
SITES = frozenset(
    {
        "worker.start",
        "shard.evaluate",
        "store.map",
        "store.spool_write",
        "service.request",
    }
)

KINDS = ("crash", "exception", "delay", "corrupt")

#: Exit status used by ``crash`` faults — distinguishable from a
#: genuine interpreter death in test assertions.
CRASH_STATUS = 17


class InjectedFault(RuntimeError):
    """Raised by an ``exception`` fault at an injection site."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    :param site: injection-site name (see :data:`SITES`).
    :param kind: one of :data:`KINDS`.
    :param at: 1-based per-process call count on which the fault fires.
    :param count: number of consecutive calls (from ``at``) that fire.
    :param delay: seconds slept by a ``delay`` fault.
    :param offset: byte offset corrupted by a ``corrupt`` fault;
        ``None`` derives one from ``seed`` and the file length.
    :param seed: seed for the corrupt fault's bit choice.
    :param once: fire at most once across the process tree (requires
        the plan's ``token_dir`` for the atomic claim).
    """

    site: str
    kind: str
    at: int = 1
    count: int = 1
    delay: float = 0.05
    offset: int | None = None
    seed: int = 0
    once: bool = False

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; pick from {KINDS}")
        if self.site not in SITES and "." not in self.site:
            raise ValueError(
                f"unknown fault site {self.site!r}; wired sites are "
                f"{sorted(SITES)} (ad-hoc sites need a dotted name)"
            )
        if self.at < 1 or self.count < 1:
            raise ValueError("at and count must be >= 1")

    def token_name(self) -> str:
        """Filename of the once-token claimed by this spec."""
        return f"{self.site}.{self.kind}.{self.at}.token"


class FaultPlan:
    """A reproducible schedule of faults over the injection sites.

    Call counters are per-process (each worker that loads the plan from
    the environment counts its own calls); ``once`` specs coordinate
    across processes through token files under ``token_dir``.
    """

    def __init__(
        self, specs: Iterator[FaultSpec] | list[FaultSpec], token_dir: str | None = None
    ) -> None:
        self.specs = tuple(specs)
        self.token_dir = str(token_dir) if token_dir is not None else None
        if any(spec.once for spec in self.specs) and self.token_dir is None:
            raise ValueError("specs with once=True require a token_dir")
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def counts(self) -> dict[str, int]:
        """Per-site call counts observed by *this process*."""
        with self._lock:
            return dict(self._counts)

    def to_json(self) -> str:
        return json.dumps(
            {
                "token_dir": self.token_dir,
                "specs": [asdict(spec) for spec in self.specs],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> FaultPlan:
        payload = json.loads(text)
        specs = [FaultSpec(**spec) for spec in payload.get("specs", [])]
        return cls(specs, token_dir=payload.get("token_dir"))

    def fire(self, site: str, context: dict) -> None:
        """Count a call at ``site`` and trigger any matching spec."""
        with self._lock:
            count = self._counts.get(site, 0) + 1
            self._counts[site] = count
        for spec in self.specs:
            if spec.site != site:
                continue
            if not (spec.at <= count < spec.at + spec.count):
                continue
            if spec.once and not self._claim(spec):
                continue
            self._trigger(spec, site, count, context)

    def _claim(self, spec: FaultSpec) -> bool:
        """Atomically claim the once-token; False if already taken."""
        assert self.token_dir is not None
        token = os.path.join(self.token_dir, spec.token_name())
        try:
            handle = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(handle)
        return True

    def _trigger(self, spec: FaultSpec, site: str, count: int, context: dict) -> None:
        if spec.kind == "crash":
            os._exit(CRASH_STATUS)
        if spec.kind == "delay":
            time.sleep(spec.delay)
            return
        if spec.kind == "corrupt":
            path = context.get("path")
            if path is None:
                raise ValueError(
                    f"corrupt fault at {site!r} needs a path= context, got none"
                )
            _flip_bit(Path(path), spec)
            return
        raise InjectedFault(f"injected fault at {site!r} (call {count})")


def _flip_bit(path: Path, spec: FaultSpec) -> None:
    """Flip one deterministically chosen bit of ``path`` in place."""
    data = bytearray(path.read_bytes())
    if not data:
        return
    rng = derive_rng(spec.seed, f"{spec.site}:corrupt")
    offset = spec.offset if spec.offset is not None else rng.randrange(len(data))
    data[offset % len(data)] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(data))


_PLAN: FaultPlan | None = None
_ENV_SCANNED = False


def active_plan() -> FaultPlan | None:
    """The plan currently armed in this process, if any."""
    return _PLAN


def install(plan: FaultPlan, *, env: bool = False) -> None:
    """Arm ``plan`` in this process.

    With ``env=True`` the plan is also exported through
    :data:`ENV_VAR`, so worker processes spawned while it is installed
    load it lazily on their first :func:`inject` call. Pair every
    ``install`` with :func:`uninstall` in a ``finally`` (the RPL011
    lint contract), or use :func:`installed`.
    """
    global _PLAN
    _PLAN = plan
    if env:
        os.environ[ENV_VAR] = plan.to_json()


def uninstall() -> None:
    """Disarm any installed plan and forget the environment scan."""
    global _PLAN, _ENV_SCANNED
    _PLAN = None
    _ENV_SCANNED = False
    os.environ.pop(ENV_VAR, None)


@contextmanager
def installed(plan: FaultPlan, *, env: bool = False) -> Iterator[FaultPlan]:
    """Context manager: arm ``plan`` for the block, disarm after."""
    install(plan, env=env)
    try:
        yield plan
    finally:
        uninstall()


def _scan_env() -> FaultPlan | None:
    """Load (once) a plan exported by a parent process."""
    global _PLAN, _ENV_SCANNED
    _ENV_SCANNED = True
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    _PLAN = FaultPlan.from_json(text)
    return _PLAN


def inject(site: str, **context: object) -> None:
    """Declare an injection site; fire any armed plan's matching spec.

    The no-plan path is two global reads and a dict miss — sites are
    free when chaos is off.
    """
    plan = _PLAN
    if plan is None:
        if _ENV_SCANNED or ENV_VAR not in os.environ:
            return
        plan = _scan_env()
        if plan is None:
            return
    plan.fire(site, context)
