"""The ``repro lint`` command-line surface.

Used two ways: ``python -m repro lint ...`` (wired as a subcommand in
:mod:`repro.cli`) and ``python -m repro.lint ...`` standalone. Exit
status is 1 iff findings survive filtering — the blocking-CI contract.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.lint.runner import all_rules, run_lint

__all__ = ["configure_parser", "main"]

#: Default lint scope when no paths are given (only those that exist,
#: so the command works from any checkout shape).
DEFAULT_PATHS = ("src", "tests")


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint arguments + runner to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated RPL codes to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated RPL codes to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings on stdout as lines or as a JSON document",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="also write the JSON findings document to PATH "
        "(the CI artifact hook; written on success too)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule and exit",
    )
    parser.set_defaults(run=_cmd_lint)


def _parse_codes(text):
    if text is None:
        return None
    return frozenset(
        code.strip().upper() for code in text.split(",") if code.strip()
    )


def _document(findings) -> dict:
    return {
        "tool": "repro-lint",
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
    }


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0

    paths = args.paths or [p for p in DEFAULT_PATHS if os.path.exists(p)]
    if not paths:
        print("repro lint: no paths given and none of src/ tests/ exist",
              file=sys.stderr)
        return 2

    findings = run_lint(
        paths,
        select=_parse_codes(args.select),
        ignore=_parse_codes(args.ignore),
    )

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(_document(findings), handle, indent=2)
            handle.write("\n")

    if args.format == "json":
        json.dump(_document(findings), sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for finding in findings:
            print(finding)
        if findings:
            noun = "finding" if len(findings) == 1 else "findings"
            print(f"repro lint: {len(findings)} {noun}", file=sys.stderr)
    return 1 if findings else 0


def main(argv=None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checks for the repro codebase",
    )
    configure_parser(parser)
    args = parser.parse_args(argv)
    return args.run(args)
