"""Flat abstractions (Appendix A, Definition 20) and Claim 23's counts.

The flat abstraction of ``P⟨X, n, I⟩`` is the forest of ``|X|`` depth-1
trees: metavariable ``x^(i)`` over leaves ``x^(i)_1 … x^(i)_n``. Its
cuts pick, per tree, either the root or all leaves — so a cut is fully
described by the set ``Y`` of chosen metavariables, and Claim 23 gives
closed forms for ``|P↓S|_M`` and ``|P↓S|_V`` in terms of ``Y``.
"""

from __future__ import annotations

from repro.core.forest import AbstractionForest, ValidVariableSet
from repro.core.tree import AbstractionTree, TreeNode
from repro.hardness.uniform import meta_name, variable_name

__all__ = ["flat_abstraction", "flat_cut", "claim23_counts"]


def flat_abstraction(num_meta, blowup):
    """The flat abstraction forest of ``P⟨X, n, ·⟩`` (Definition 20).

    >>> forest = flat_abstraction(4, 3)
    >>> len(forest), forest.count_cuts()
    (4, 16)
    """
    trees = []
    for index in range(1, num_meta + 1):
        leaves = [
            TreeNode(variable_name(index, i)) for i in range(1, blowup + 1)
        ]
        trees.append(AbstractionTree(TreeNode(meta_name(index), leaves)))
    return AbstractionForest(trees)


def flat_cut(forest, chosen_meta_indices, num_meta, blowup):
    """The VVS selecting the given metavariables' roots (leaves elsewhere).

    ``chosen_meta_indices`` is the set ``Y`` of Claim 23 (1-based).
    """
    labels = set()
    chosen = set(chosen_meta_indices)
    for index in range(1, num_meta + 1):
        if index in chosen:
            labels.add(meta_name(index))
        else:
            labels.update(variable_name(index, i) for i in range(1, blowup + 1))
    return ValidVariableSet(forest, frozenset(labels))


def claim23_counts(num_meta, blowup, index_pairs, chosen_meta_indices):
    """Claim 23's closed forms for ``(|P↓S|_M, |P↓S|_V)``.

    Per pair ``(i, j) ∈ I``: 1 monomial survives if both metavariables
    are chosen, ``n²`` if neither, ``n`` otherwise; granularity is
    ``|Y| + (|X| − |Y|)·n``.

    >>> claim23_counts(4, 3, [(1, 2), (1, 3), (2, 3), (2, 4)], {1, 3})
    (16, 8)
    """
    chosen = set(chosen_meta_indices)
    monomials = 0
    for i, j in index_pairs:
        in_i = i in chosen
        in_j = j in chosen
        if in_i and in_j:
            monomials += 1
        elif not in_i and not in_j:
            monomials += blowup * blowup
        else:
            monomials += blowup
    granularity = len(chosen) + (num_meta - len(chosen)) * blowup
    return monomials, granularity
