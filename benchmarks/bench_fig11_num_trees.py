"""Figure 11: compression time as a function of the number of trees.

The paper partitions the 128 variables into "a set of eight (3-level)
binary trees, each with 16 leaf[s]" and sweeps how many of them the
algorithm may use. Greedy grows moderately with the tree count; brute
force must enumerate the *product* of the trees' cuts (26 each), so it
drops out almost immediately.
"""

import pytest

from repro.algorithms.brute_force import brute_force_vvs
from repro.algorithms.greedy import greedy_vvs
from repro.core.forest import AbstractionForest
from repro.workloads.telephony import TelephonyBenchmark
from repro.workloads.tpch import generate, query_provenance
from repro.workloads.trees import layered_tree
from benchmarks import common

#: Figure/table benches run minutes at full scale; `-m "not slow"` skips them.
pytestmark = pytest.mark.slow

BRUTE_CAP = 1_000
MAX_TREES = 8


def _figure11_workload(name):
    """Provenance over a 128-variable alphabet (the figure needs 8×16)."""
    if name.startswith("tpch-"):
        db = generate(scale_factor=0.002, seed=7)
        return query_provenance(db, name.split("-", 1)[1], buckets=(128, 128))
    bench = TelephonyBenchmark(
        customers=300, num_plans=128, months=12, zip_pool=50, seed=5
    )
    return bench.provenance()


def _partition_trees(variables, chunk=16):
    """Split the alphabet into 3-level binary trees of 16 leaves each."""
    variables = sorted(variables)
    trees = []
    for start in range(0, len(variables) - chunk + 1, chunk):
        leaves = variables[start : start + chunk]
        trees.append(
            layered_tree(leaves, (2, 2), prefix=f"part{start // chunk}")
        )
    return trees


def _series(workload):
    provenance = _figure11_workload(workload)
    # Partition the largest 128-bucket alphabet actually present. At
    # bench scale TPC-H has few suppliers, so the PART variables (whose
    # keys cover all 128 buckets) stand in for the paper's suppliers.
    alphabet = sorted(
        v for v in provenance.variables if v.startswith("p")
    )
    trees = _partition_trees(alphabet)
    rows = []
    for count in range(2, min(MAX_TREES, len(trees)) + 1):
        forest = AbstractionForest([t.copy() for t in trees[:count]])
        cleaned = forest.clean(provenance)
        bound = common.feasible_bound(provenance, cleaned)
        greedy_seconds, _ = common.timed(
            greedy_vvs, provenance, cleaned, bound, clean=False
        )
        cuts = cleaned.count_cuts()
        if cuts <= BRUTE_CAP:
            brute_seconds, _ = common.timed(
                brute_force_vvs, provenance, cleaned, bound, clean=False
            )
            brute_cell = f"{brute_seconds:.3f}"
        else:
            brute_cell = "-"
        rows.append(
            [workload, count, cuts, f"{greedy_seconds:.3f}", brute_cell]
        )
    return rows


@pytest.mark.parametrize("workload", common.WORKLOADS)
def test_fig11(benchmark, workload):
    rows = benchmark.pedantic(_series, args=(workload,), rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
    common.emit(
        f"fig11_{workload}",
        ["workload", "#trees", "#cuts", "greedy [s]", "brute [s]"],
        rows,
        title=f"Figure 11 — {workload}: time vs number of trees",
    )
    assert rows
