"""Shared result types for the abstraction-selection algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.forest import ValidVariableSet
from repro.errors import CompressionError

__all__ = ["AbstractionResult", "InfeasibleBoundError"]


class InfeasibleBoundError(CompressionError, ValueError):
    """No valid variable set is adequate for the requested bound.

    The paper notes (after Definition 7 / Example 8) that adequacy is
    not guaranteed: even the coarsest abstraction (all roots) may leave
    more than ``B`` monomials. ``min_achievable_size`` reports how far
    the forest can compress at best.
    """

    def __init__(self, bound, min_achievable_size):
        self.bound = bound
        self.min_achievable_size = min_achievable_size
        super().__init__(
            f"no VVS is adequate for bound {bound}: the best achievable "
            f"size is {min_achievable_size} monomials"
        )


@dataclass
class AbstractionResult:
    """Outcome of an abstraction-selection algorithm.

    Attributes mirror the paper's measures:

    * ``vvs`` — the selected valid variable set;
    * ``monomial_loss`` / ``variable_loss`` — ``ML``/``VL`` w.r.t. the
      input polynomials;
    * ``abstracted_size`` — ``|P↓S|_M`` (must be ≤ the bound);
    * ``abstracted_granularity`` — ``|P↓S|_V`` (the surviving degrees of
      freedom for hypothetical reasoning);
    * ``trace`` — algorithm-specific step log (greedy fills this).
    """

    vvs: ValidVariableSet
    monomial_loss: int
    variable_loss: int
    abstracted_size: int
    abstracted_granularity: int
    trace: list = field(default_factory=list)

    def apply(self, polynomials):
        """Convenience: ``P↓S`` for the selected VVS."""
        return self.vvs.apply(polynomials)
