"""Capped exponential backoff with seeded jitter.

:class:`RetryPolicy` is the one retry knob shared by the self-healing
parallel sweeps (`repro.scenarios.parallel`), the artifact store's
spool-write loop (`repro.service.store`), and the CI service probe
(`benchmarks/probe_service.py`). Jitter is drawn from
:func:`repro.util.rng.derive_rng`, so two runs with the same policy and
token sleep for exactly the same spans — chaos tests stay reproducible
down to the backoff schedule.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.rng import derive_rng

if TYPE_CHECKING:
    from collections.abc import Callable

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a fallible operation.

    :param attempts: total tries (first call included); must be >= 1.
    :param base_delay: seconds slept after the first failure.
    :param max_delay: cap on the exponential growth.
    :param jitter: fractional spread added on top of the capped delay
        (``0.25`` → up to +25%); drawn deterministically from ``seed``.
    :param seed: root seed for the jitter stream.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def delay(self, attempt: int, token: str = "retry") -> float:
        """Seconds to sleep after failed attempt ``attempt`` (1-based).

        Capped exponential in ``attempt`` plus deterministic jitter:
        the same ``(policy, token, attempt)`` always yields the same
        span, so a healed run's timing is as reproducible as its data.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        span = min(self.base_delay * (2 ** (attempt - 1)), self.max_delay)
        if not self.jitter or not span:
            return span
        rng = derive_rng(self.seed, f"{token}:{attempt}")
        return span * (1.0 + self.jitter * rng.random())

    def call(
        self,
        operation: Callable[[], object],
        *,
        retry_on: tuple[type[BaseException], ...] = (OSError,),
        token: str = "retry",
        sleep: Callable[[float], None] = time.sleep,
    ) -> object:
        """Run ``operation`` under this policy; return its result.

        Retries on ``retry_on`` with backoff between attempts; the last
        failure propagates unwrapped once the budget is exhausted.
        """
        for attempt in range(1, self.attempts + 1):
            try:
                return operation()
            except retry_on:
                if attempt == self.attempts:
                    raise
                sleep(self.delay(attempt, token))
        raise AssertionError("unreachable")  # pragma: no cover
