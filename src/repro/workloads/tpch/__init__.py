"""Scaled TPC-H workload: deterministic dbgen + parameterized queries."""

from repro.workloads.tpch.generator import NATIONS, REGIONS, TPCHDatabase, generate
from repro.workloads.tpch.queries import (
    PART_BUCKETS,
    SUPPLIER_BUCKETS,
    part_tree,
    part_variables,
    q1_pricing_summary,
    q3_shipping_priority,
    q5_local_supplier_volume,
    q6_forecast_revenue,
    q10_returned_items,
    query_provenance,
    supplier_tree,
    supplier_variables,
)

__all__ = [
    "generate",
    "TPCHDatabase",
    "REGIONS",
    "NATIONS",
    "SUPPLIER_BUCKETS",
    "PART_BUCKETS",
    "supplier_variables",
    "part_variables",
    "supplier_tree",
    "part_tree",
    "q1_pricing_summary",
    "q3_shipping_priority",
    "q5_local_supplier_volume",
    "q6_forecast_revenue",
    "q10_returned_items",
    "query_provenance",
]
