"""Small timing helpers used by the experiment harness.

``pytest-benchmark`` drives the microbenchmarks; these helpers serve the
experiment *tables* (paper figures report wall-clock seconds of whole
algorithm runs, which we measure directly).
"""

import time

__all__ = ["Timer", "time_call"]


class Timer:
    """Context manager measuring wall-clock time.

    >>> with Timer() as t:
    ...     sum(range(1000))
    499500
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self):
        self.elapsed = 0.0
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.elapsed = time.perf_counter() - self._start
        return False


def time_call(fn, *args, repeat=1, **kwargs):
    """Call ``fn`` ``repeat`` times; return ``(best_seconds, last_result)``.

    The *minimum* over repeats is reported, following the usual
    microbenchmark advice (minimum is the least noisy location estimate
    for a deterministic computation).
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    best = None
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result
