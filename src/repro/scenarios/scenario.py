"""Hypothetical scenarios: named, composable parameter changes.

A scenario is a multiplicative change to scenario variables — "what if
the ppm of all plans decreased by 20% in March?" is
``Scenario("march-discount", {"m3": 0.8})``. Applying a scenario to a
provenance polynomial (rather than re-running the query) is the whole
point of provisioning (§1).
"""

from __future__ import annotations

import warnings

from repro.core.valuation import Valuation

__all__ = ["Scenario", "ScenarioOverlapWarning", "ScenarioSuite"]


class ScenarioOverlapWarning(UserWarning):
    """Both sides of a :meth:`Scenario.compose` change the same variable."""


class Scenario:
    """A named assignment of multipliers to scenario variables.

    >>> s = Scenario("q1-discount", {"m1": 0.8, "m2": 0.8, "m3": 0.8})
    >>> s.valuation()["m2"]
    0.8
    """

    __slots__ = ("name", "changes")

    def __init__(self, name, changes):
        self.name = str(name)
        self.changes = dict(changes)

    @classmethod
    def uniform(cls, name, variables, multiplier):
        """The same multiplier on every listed variable.

        >>> Scenario.uniform("all-up", ["a", "b"], 1.1).changes
        {'a': 1.1, 'b': 1.1}
        """
        return cls(name, {var: multiplier for var in variables})

    def valuation(self, default=1.0):
        """The scenario as a :class:`~repro.core.valuation.Valuation`."""
        return Valuation(self.changes, default=default)

    def compose(self, other, name=None):
        """Apply both scenarios, left then right.

        Variables changed by only one side keep that side's multiplier.
        On overlap the multipliers **multiply** — ``other`` never
        overwrites ``self``; composing "March −20%" (0.8) with "March
        −50%" (0.5) yields 0.4, not 0.5. Because a combined multiplier
        is easy to misread as an override, every overlapping variable
        triggers a :class:`ScenarioOverlapWarning` naming it.

        >>> import warnings
        >>> with warnings.catch_warnings():
        ...     warnings.simplefilter("ignore", ScenarioOverlapWarning)
        ...     Scenario("a", {"x": 0.8}).compose(Scenario("b", {"x": 0.5}))
        Scenario('a+b', 1 changes)
        """
        overlap = sorted(var for var in other.changes if var in self.changes)
        if overlap:
            warnings.warn(
                f"composing {self.name!r} with {other.name!r}: both change "
                f"{', '.join(overlap)} — the multipliers multiply "
                "(they do not override)",
                ScenarioOverlapWarning,
                stacklevel=2,
            )
        changes = dict(self.changes)
        for var, multiplier in other.changes.items():
            changes[var] = changes.get(var, 1.0) * multiplier
        return Scenario(name or f"{self.name}+{other.name}", changes)

    def evaluate(self, polynomials):
        """Value(s) of the provenance under this scenario."""
        return self.valuation().evaluate(polynomials)

    def is_supported_by(self, vvs):
        """Can the abstracted provenance answer this scenario exactly?

        True iff the scenario is uniform on every group of the VVS —
        the formal version of "the abstraction supports the anticipated
        hypothetical scenarios".
        """
        return self.valuation().is_uniform_on(vvs)

    def lift(self, vvs, default=1.0):
        """The scenario on meta-variables (raises if unsupported)."""
        return self.valuation(default).lift(vvs)

    def __repr__(self):
        return f"Scenario({self.name!r}, {len(self.changes)} changes)"


class ScenarioSuite:
    """An ordered collection of scenarios evaluated together.

    The paper's use case sends compressed provenance to analysts who
    each run *multiple* scenarios — suites are what the Figure 10
    assignment-speedup experiment times.
    """

    __slots__ = ("scenarios",)

    def __init__(self, scenarios=None):
        self.scenarios = list(scenarios) if scenarios else []

    def add(self, scenario):
        self.scenarios.append(scenario)
        return self

    def __iter__(self):
        return iter(self.scenarios)

    def __len__(self):
        return len(self.scenarios)

    def evaluate(self, polynomials):
        """``{scenario name: value(s)}`` over the provenance."""
        return {s.name: s.evaluate(polynomials) for s in self.scenarios}

    def supported_by(self, vvs):
        """The sub-suite the abstraction answers exactly."""
        return ScenarioSuite([s for s in self.scenarios if s.is_supported_by(vvs)])
