"""``python -m repro`` — the provenance abstraction CLI."""

import sys

from repro.cli import main

sys.exit(main())
