"""Sharded scenario evaluation across a process pool.

:meth:`~repro.core.polynomial.PolynomialSet.evaluate_batch` already
turns a scenario suite into a handful of NumPy array operations, but it
runs them on one core. For the sweep volumes the paper's workload
implies (grids and Monte-Carlo families of 10⁴–10⁶ scenarios), the
remaining wall-clock is CPU-bound and embarrassingly parallel: every
scenario row of the ``(S, P)`` answer matrix is independent.

:func:`evaluate_scenarios_parallel` shards that matrix across a
:class:`concurrent.futures.ProcessPoolExecutor`:

* the compiled :class:`~repro.core.batch.CompiledPolynomialSet` is
  **published once, not pickled per worker**: the parent renders it
  into a :mod:`multiprocessing.shared_memory` segment in the binary
  container format (:func:`repro.core.binfmt.dumps_compiled`) and each
  worker's initializer rebuilds a read-only compiled set as NumPy
  views *directly over the segment* — O(1) start-up per worker however
  large the matrix. Compiled sets that were loaded from a binary
  artifact file skip even that: they pickle as just their path
  (:attr:`CompiledPolynomialSet.source
  <repro.core.batch.CompiledPolynomialSet.source>`) and each worker
  re-maps the file. Either way the column map travels by variable
  name, so workers re-intern and answer bit-identically whatever
  their start method. The segment is unlinked when the pool exits —
  nothing is left in ``/dev/shm``;
* the parent then streams *work descriptions*, not data — for a
  :class:`~repro.scenarios.sweep.Sweep` an ``(start, stop)`` index
  range (workers regenerate their shard from the sweep spec), for a
  generic iterable a chunk of plain ``(assignment, default)`` rows;
* results come back as ``(chunk, P)`` arrays and are concatenated in
  submission order, so the parallel answer is **bit-identical** to the
  serial one (row-wise float operations are unchanged; only the outer
  loop moved).

Every entry point takes ``engine=`` (``"dense"``, ``"delta"``,
``"auto"``; see :mod:`repro.core.batch`). Under the delta engine each
worker computes the baseline monomial values **once** (cached on its
compiled set, which shipped with the pool initializer) and shards
carry only sparse deltas: Sweep workers regenerate bare changes
mappings via :meth:`Sweep.iter_changes
<repro.scenarios.sweep.Sweep.iter_changes>` — no scenario names are
ever built — and generic chunks are already plain sparse rows. For
sweeps, ``"auto"`` is resolved once in the parent from
:meth:`Sweep.mean_changes <repro.scenarios.sweep.Sweep.mean_changes>`
(the spec knows its density); for other inputs each chunk resolves
itself. Engines are bit-identical, so the choice never changes
answers — only the schedule.

Small inputs fall back to the serial compiled path — below
:data:`MIN_PARALLEL_SCENARIOS` rows the pool start-up would dominate.
Serial evaluation of large/unsized inputs is chunked too, so a
million-scenario sweep never materializes a Python list of dicts.
"""

from __future__ import annotations

import itertools
import os
import secrets
from collections import deque
from contextlib import contextmanager

import numpy

from repro.core.batch import ENGINES as _ENGINES
from repro.core.valuation import Valuation
from repro.scenarios.sweep import DEFAULT_CHUNK_SIZE, Sweep

__all__ = [
    "MIN_PARALLEL_SCENARIOS",
    "evaluate_scenarios_parallel",
    "iter_value_blocks",
]

#: Below this many scenarios, parallel requests run serially: pool
#: start-up (fork + one compiled-set pickle per worker) costs more than
#: evaluating the suite outright.
MIN_PARALLEL_SCENARIOS = 512

#: Keep at most this many chunks in flight per worker — bounds parent
#: memory while keeping every worker busy.
_INFLIGHT_PER_WORKER = 4

# ---------------------------------------------------------------- workers

#: The compiled set installed in each worker by the pool initializer.
_WORKER_COMPILED = None

#: The shared-memory segment backing ``_WORKER_COMPILED`` (kept alive
#: for the worker's lifetime; the compiled arrays are views into it).
_WORKER_SEGMENT = None


def _init_worker(compiled):
    """Pool initializer: adopt the compiled set.

    For file-backed compiled sets the pickle shrank to just the source
    path, so ``compiled`` arrived by re-mapping the artifact file —
    O(1) transfer whatever the matrix size.
    """
    global _WORKER_COMPILED
    _WORKER_COMPILED = compiled


def _attach_segment(name):
    """Open an existing shared-memory segment; the parent owns cleanup.

    Python 3.13 has ``track=False`` so attachers skip resource-tracker
    registration outright. Earlier versions register unconditionally —
    but the tracker cache is a *set* shared by the whole process tree,
    so the worker registrations are no-op re-adds and the parent's one
    ``unlink()`` at pool exit balances them. Unregistering per worker
    would over-remove from the set and make the tracker complain.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _init_worker_shm(name):
    """Pool initializer: rebuild the compiled set over shared memory.

    The parent published the container bytes once; this builds
    read-only NumPy views straight over the segment — no pickle, no
    copy, O(1) per worker.
    """
    global _WORKER_COMPILED, _WORKER_SEGMENT
    from repro.core import binfmt

    segment = _attach_segment(name)
    _WORKER_SEGMENT = segment
    _WORKER_COMPILED = binfmt.compiled_from_buffer(segment.buf)


@contextmanager
def _pool_setup(compiled):
    """Yield the pool ``(initializer, initargs)`` publishing ``compiled``.

    Three cases, cheapest transport that applies:

    * file-backed compiled sets (``source`` set — loaded from a binary
      artifact) pickle as just their path; workers re-map the file;
    * ordinary compiled sets are rendered once into a shared-memory
      segment that workers reopen zero-copy; the segment is closed and
      unlinked when the pool exits, so nothing leaks into ``/dev/shm``;
    * objects without container support (test doubles) fall back to
      the plain pickle-per-pool initializer.
    """
    if getattr(compiled, "source", None) is not None or not hasattr(
        compiled, "_state"
    ):
        yield _init_worker, (compiled,)
        return

    from multiprocessing import shared_memory

    from repro.core import binfmt

    blob = binfmt.dumps_compiled(compiled)
    segment = shared_memory.SharedMemory(
        create=True,
        size=len(blob),
        name=f"repro-{os.getpid()}-{secrets.token_hex(4)}",
    )
    try:
        segment.buf[: len(blob)] = blob
        yield _init_worker_shm, (segment.name,)
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


def _evaluate_rows(rows, engine="dense"):
    """Worker task: valuate explicit ``(assignment, default)`` rows."""
    valuations = [
        Valuation(assignment, default=default) for assignment, default in rows
    ]
    return _WORKER_COMPILED.evaluate(valuations, engine=engine)


def _evaluate_span(sweep, start, stop, default, engine="dense"):
    """Worker task: regenerate a sweep shard by index range and valuate.

    Only the changes mappings are regenerated (the sweep's sparse-delta
    form) — scenario names do not affect values, and the delta engine's
    baseline is cached on the worker's compiled set, so it is computed
    once per worker however many shards arrive.
    """
    return _WORKER_COMPILED.evaluate(
        sweep.iter_changes(start, stop), default, engine
    )


# ----------------------------------------------------------------- helpers


def _coerce_rows(scenarios, default):
    """Plain-data ``(assignment, default)`` rows for pickling."""
    rows = []
    for entry in scenarios:
        valuation = Valuation.coerce(entry, default)
        rows.append((valuation.assignment, valuation.default))
    return rows


def _chunked(iterable, size):
    """Yield lists of up to ``size`` items (no full materialization)."""
    iterator = iter(iterable)
    while True:
        chunk = list(itertools.islice(iterator, size))
        if not chunk:
            return
        yield chunk


def _compiled_of(polynomials):
    """The compiled evaluator of a set (or a compiled set, unchanged)."""
    compiled = getattr(polynomials, "compiled", None)
    if callable(compiled):
        return compiled()
    return polynomials


def _resolve_workers(workers):
    """Normalize the ``workers`` argument to an int worker count."""
    if workers is None:
        return 0
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _resolve_engine(compiled, scenarios, engine):
    """Pin down ``engine`` as far as the input shape allows.

    Sweeps declare their per-scenario density in the spec, so
    ``"auto"`` resolves here — once, in the parent — and every shard
    runs the same engine. Other inputs keep ``"auto"`` and let each
    evaluated chunk decide (bit-identical either way). Unknown names
    raise immediately rather than inside a worker.
    """
    if engine == "auto" and isinstance(scenarios, Sweep):
        return compiled.resolve_engine(
            engine, mean_changes=scenarios.mean_changes()
        )
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {_ENGINES}"
        )
    return engine


# ---------------------------------------------------------------- serial


def _evaluate_serial(compiled, scenarios, default, chunk_size, engine):
    """Chunked single-process evaluation (bounded memory)."""
    if isinstance(scenarios, Sweep):
        blocks = [
            compiled.evaluate(
                scenarios.iter_changes(start, stop), default, engine
            )
            for start, stop in scenarios.chunks(chunk_size)
        ]
    else:
        blocks = [
            compiled.evaluate(chunk, default, engine)
            for chunk in _chunked(scenarios, chunk_size)
        ]
    if not blocks:
        return numpy.zeros((0, compiled.num_polynomials), dtype=numpy.float64)
    if len(blocks) == 1:
        return blocks[0]
    return numpy.concatenate(blocks, axis=0)


# --------------------------------------------------------------- parallel


def _submit_stream(executor, tasks, max_inflight):
    """Submit ``(fn, args)`` tasks with backpressure; yield ordered results.

    Results come back in submission order — the reassembled matrix is
    bit-identical to a serial pass over the same chunks.
    """
    pending = deque()
    for fn, args in tasks:
        while len(pending) >= max_inflight:
            yield pending.popleft().result()
        pending.append(executor.submit(fn, *args))
    while pending:
        yield pending.popleft().result()


def evaluate_scenarios_parallel(polynomials, scenarios, *, workers,
                                default=1.0, chunk_size=None,
                                min_parallel=MIN_PARALLEL_SCENARIOS,
                                engine="auto"):
    """Valuate a scenario family sharded across worker processes.

    :param polynomials: a :class:`~repro.core.polynomial.PolynomialSet`
        (compiled on demand, cached) or a prebuilt
        :class:`~repro.core.batch.CompiledPolynomialSet`.
    :param scenarios: a :class:`~repro.scenarios.sweep.Sweep` (workers
        regenerate shards from the spec — nothing but index ranges
        cross the pipe) or any iterable of Scenario / Valuation /
        mapping entries (streamed in chunks of plain rows).
    :param workers: process count; ``None``/``0``/``1`` evaluates
        serially (still chunked), as does any input smaller than
        ``min_parallel``.
    :param chunk_size: scenarios per shard (default
        :data:`~repro.scenarios.sweep.DEFAULT_CHUNK_SIZE`).
    :param min_parallel: the serial-fallback threshold; pass ``0`` to
        force the pool (the equivalence tests do).
    :param engine: ``"dense"``, ``"delta"`` or ``"auto"`` (the
        default; see the module docstring). Bit-identical answers
        whichever engine runs.
    :returns: the ``(S, P)`` answer matrix — bit-identical to
        :meth:`PolynomialSet.evaluate_batch
        <repro.core.polynomial.PolynomialSet.evaluate_batch>` on the
        same scenarios.
    """
    compiled = _compiled_of(polynomials)
    workers = _resolve_workers(workers)
    engine = _resolve_engine(compiled, scenarios, engine)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    total = len(scenarios) if hasattr(scenarios, "__len__") else None
    if workers <= 1 or (total is not None and total < min_parallel):
        return _evaluate_serial(compiled, scenarios, default, chunk_size,
                                engine)

    from concurrent.futures import ProcessPoolExecutor

    if isinstance(scenarios, Sweep):
        tasks = (
            (_evaluate_span, (scenarios, start, stop, default, engine))
            for start, stop in scenarios.chunks(chunk_size)
        )
    else:
        tasks = (
            (_evaluate_rows, (_coerce_rows(chunk, default), engine))
            for chunk in _chunked(scenarios, chunk_size)
        )

    blocks = []
    with _pool_setup(compiled) as (initializer, initargs):
        with ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        ) as executor:
            blocks.extend(
                _submit_stream(executor, tasks, workers * _INFLIGHT_PER_WORKER)
            )
    if not blocks:
        return numpy.zeros((0, compiled.num_polynomials), dtype=numpy.float64)
    if len(blocks) == 1:
        return blocks[0]
    return numpy.concatenate(blocks, axis=0)


def iter_value_blocks(polynomials, scenarios, *, default=1.0, workers=None,
                      chunk_size=None, transform=None, materialize=True,
                      engine="auto"):
    """Stream ``(start, scenarios_chunk, values_chunk)`` blocks.

    The O(k)-memory backbone of :func:`~repro.scenarios.analysis.top_k`
    and :func:`~repro.scenarios.analysis.sensitivity`: the full
    ``(S, P)`` matrix is never held — each yielded block pairs a chunk
    of the original scenario objects with its ``(chunk, P)`` values.
    With ``workers > 1``, chunk evaluation shards across a process pool
    for every input shape: Sweep shards ship as index ranges;
    generic iterables (and transformed entries — transforms run in the
    parent, they may close over un-picklable state) ship as plain rows.

    :param transform: optional per-scenario callable applied before
        evaluation (e.g. lifting onto an artifact's meta-variables);
        the yielded scenario objects stay untransformed so callers keep
        names and change-sets.
    :param materialize: when ``False`` and the input is a
        :class:`~repro.scenarios.sweep.Sweep` evaluated without a
        transform, blocks carry ``None`` instead of the scenario chunk
        — the caller indexes ``scenarios[i]`` for the few entries it
        keeps instead of the parent regenerating every shard the
        workers already generated.
    :param engine: ``"dense"``, ``"delta"`` or ``"auto"`` (the
        default; see the module docstring).
    """
    compiled = _compiled_of(polynomials)
    workers = _resolve_workers(workers)
    engine = _resolve_engine(compiled, scenarios, engine)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    use_pool = workers > 1 and (
        not hasattr(scenarios, "__len__")
        or len(scenarios) >= MIN_PARALLEL_SCENARIOS
    )
    span_mode = isinstance(scenarios, Sweep) and transform is None

    if not use_pool:
        start = 0
        if span_mode and not materialize:
            for start, stop in scenarios.chunks(chunk_size):
                values = compiled.evaluate(
                    scenarios.iter_changes(start, stop), default, engine
                )
                yield start, None, values
            return
        for chunk in _chunked(scenarios, chunk_size):
            entries = chunk if transform is None else [
                transform(entry) for entry in chunk
            ]
            yield start, chunk, compiled.evaluate(entries, default, engine)
            start += len(chunk)
        return

    from concurrent.futures import ProcessPoolExecutor

    if span_mode:
        def tasks():
            for start, stop in scenarios.chunks(chunk_size):
                chunk = None if not materialize else (start, stop)
                yield start, chunk, (
                    _evaluate_span, (scenarios, start, stop, default, engine)
                )
    else:
        def tasks():
            start = 0
            for chunk in _chunked(scenarios, chunk_size):
                entries = chunk if transform is None else [
                    transform(entry) for entry in chunk
                ]
                rows = _coerce_rows(entries, default)
                yield start, chunk, (_evaluate_rows, (rows, engine))
                start += len(chunk)

    max_inflight = workers * _INFLIGHT_PER_WORKER
    with _pool_setup(compiled) as (initializer, initargs):
        with ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        ) as executor:
            pending = deque()
            for start, chunk, (fn, args) in tasks():
                while len(pending) >= max_inflight:
                    done_start, done_chunk, future = pending.popleft()
                    yield (
                        done_start,
                        _realize(scenarios, done_chunk),
                        future.result(),
                    )
                pending.append((start, chunk, executor.submit(fn, *args)))
            while pending:
                done_start, done_chunk, future = pending.popleft()
                yield (
                    done_start,
                    _realize(scenarios, done_chunk),
                    future.result(),
                )


def _realize(scenarios, chunk):
    """Materialize a deferred ``(start, stop)`` span chunk (or pass through)."""
    if isinstance(chunk, tuple):
        return scenarios.materialize(*chunk)
    return chunk
