"""One exception hierarchy for the whole public surface.

Before this module, each layer raised its own ad-hoc ``ValueError``
subclass — :class:`~repro.core.serialize.SerializeError` for payload
problems, :class:`~repro.algorithms.result.InfeasibleBoundError` for
impossible bounds, and so on — with no common ancestor. The what-if
service (:mod:`repro.service`) needs one family it can catch at the
boundary and map to HTTP status codes, and callers of the facade
deserve ``except ReproError`` instead of a laundry list.

Hierarchy::

    ReproError
    ├── SerializeError          (also ValueError — the historical base)
    ├── CompressionError
    │   └── InfeasibleBoundError   (defined in repro.algorithms.result)
    ├── EvaluationError
    └── ArtifactNotFound        (also KeyError)

Every pre-existing exception keeps its historical base (``ValueError``
etc.), so code catching the old types keeps working; it additionally
gains :class:`ReproError` as an ancestor. The historical definition
sites re-export from here (``repro.core.serialize.SerializeError`` is
this module's class), and this module re-exports the layer-specific
types (:class:`InfeasibleBoundError`, :class:`CompatibilityError`,
:class:`NonUniformError`, :class:`ParseError`) lazily so importing
``repro.errors`` stays dependency-free and cycle-free.

The service maps the family to HTTP statuses (see
:data:`repro.service.app.STATUS_OF`): malformed payloads → 400,
unknown artifacts → 404, infeasible bounds → 422, evaluation
failures → 500.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SerializeError",
    "CompressionError",
    "EvaluationError",
    "ArtifactNotFound",
    # Lazily re-exported aliases (defined at their historical sites):
    "InfeasibleBoundError",
    "ColumnarUnsupportedError",
    "CompatibilityError",
    "NonUniformError",
    "ParseError",
]


class ReproError(Exception):
    """Base class of every error this package raises on purpose."""


class SerializeError(ReproError, ValueError):
    """A payload could not be decoded (unknown kind, corrupt or truncated
    envelope, malformed binary container). Subclasses :class:`ValueError`
    so callers catching the historical error type keep working. Defined
    here; :mod:`repro.core.serialize` re-exports it from its historical
    site."""


class CompressionError(ReproError):
    """Compression failed: no adequate cut, solver misuse, or a backend
    refusing its input. :class:`InfeasibleBoundError` is the concrete
    bound-infeasibility subclass (defined with the solvers)."""


class EvaluationError(ReproError):
    """Scenario evaluation failed. The service raises this around the
    batch evaluator so a poisoned scenario maps to a clean HTTP 500
    instead of tearing down the connection handler."""


class ArtifactNotFound(ReproError, KeyError):
    """No artifact with the requested id (in-memory cache *and* spool
    directory both miss). Subclasses :class:`KeyError` because store
    lookups are mapping-shaped."""

    def __str__(self) -> str:
        # KeyError.__str__ repr()s the message; keep it readable.
        return self.args[0] if self.args else KeyError.__str__(self)


#: Lazily-resolved aliases: attribute → (module, member). These classes
#: live where they historically lived (and where their context is);
#: re-exporting them here gives service/facade code one import site
#: without creating import cycles.
_LAZY_ALIASES = {
    "InfeasibleBoundError": ("repro.algorithms.result", "InfeasibleBoundError"),
    "ColumnarUnsupportedError": ("repro.core.columnar", "ColumnarUnsupportedError"),
    "CompatibilityError": ("repro.core.forest", "CompatibilityError"),
    "NonUniformError": ("repro.core.valuation", "NonUniformError"),
    "ParseError": ("repro.core.parser", "ParseError"),
}


def __getattr__(name: str) -> object:
    try:
        module_name, member = _LAZY_ALIASES[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), member)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_ALIASES))
