"""Property tests: the incremental greedy is *exactly* the reference.

:func:`greedy_vvs` maintains candidate ranks with collision counters
and a priority queue; :func:`_reference_greedy` re-ranks and
re-simulates every candidate each round. They must agree byte for byte
— same chosen labels in the same order, same per-step and cumulative
losses, same final cut — on every compatible instance, in both
tie-break modes. Seeded-random instances keep the suite deterministic.
"""

import pytest

from repro.algorithms.greedy import _reference_greedy, greedy_vvs
from repro.core.forest import AbstractionForest
from repro.workloads.random_polys import (
    random_compatible_instance,
    random_polynomials,
)
from repro.workloads.trees import layered_tree


def trace_tuples(result):
    return [
        (s.chosen, s.delta_ml, s.delta_vl, s.cumulative_ml, s.cumulative_vl)
        for s in result.trace
    ]


def assert_identical(instance, bound, ml_tie_break):
    polynomials, forest = instance
    incremental = greedy_vvs(
        polynomials, forest, bound, ml_tie_break=ml_tie_break
    )
    reference = _reference_greedy(
        polynomials, forest, bound, ml_tie_break=ml_tie_break
    )
    assert trace_tuples(incremental) == trace_tuples(reference)
    assert incremental.vvs.labels == reference.vvs.labels
    assert incremental.monomial_loss == reference.monomial_loss
    assert incremental.variable_loss == reference.variable_loss
    assert incremental.abstracted_size == reference.abstracted_size
    assert (
        incremental.abstracted_granularity == reference.abstracted_granularity
    )


class TestRandomForests:
    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("ml_tie_break", [True, False])
    def test_multi_tree_instances(self, seed, ml_tie_break):
        instance = random_compatible_instance(
            seed=seed, num_trees=3, leaves_per_tree=9,
            num_polynomials=6, monomials_per_polynomial=15,
        )
        bound = max(1, instance[0].num_monomials // 3)
        assert_identical(instance, bound, ml_tie_break)

    @pytest.mark.parametrize("seed", range(10))
    def test_deep_binary_trees(self, seed):
        instance = random_compatible_instance(
            seed=100 + seed, num_trees=2, leaves_per_tree=16,
            num_polynomials=5, monomials_per_polynomial=20, max_fanout=2,
        )
        bound = max(1, instance[0].num_monomials // 4)
        assert_identical(instance, bound, True)

    @pytest.mark.parametrize("seed", range(10))
    def test_single_tree_instances(self, seed):
        instance = random_compatible_instance(
            seed=200 + seed, num_trees=1, leaves_per_tree=12,
            num_polynomials=8, monomials_per_polynomial=10,
        )
        bound = max(1, instance[0].num_monomials // 2)
        assert_identical(instance, bound, True)

    @pytest.mark.parametrize("bound_divisor", [1, 2, 4, 1000])
    def test_bound_sweep(self, bound_divisor):
        """From no-op (k <= 0) to exhausting every candidate."""
        instance = random_compatible_instance(
            seed=7, num_trees=2, leaves_per_tree=8,
            num_polynomials=5, monomials_per_polynomial=12,
        )
        bound = max(1, instance[0].num_monomials // bound_divisor)
        assert_identical(instance, bound, True)


class TestStructuredWorkloads:
    def test_layered_forest_with_free_variables(self):
        """The regression benchmark's shape, shrunk."""
        pool = [f"s{i}" for i in range(32)]
        side = [f"m{i}" for i in range(8)]
        polynomials = random_polynomials(
            8, 25, [pool, side], seed=5, extra_variables=6
        )
        forest = AbstractionForest([
            layered_tree(pool, (4, 4), prefix="sup"),
            layered_tree(side, (4,), prefix="q"),
        ]).clean(polynomials)
        bound = max(1, polynomials.num_monomials // 3)
        assert_identical((polynomials, forest), bound, True)

    def test_paper_example(self, ex13_polys, paper_forest):
        """Example 15 end to end through both implementations."""
        assert_identical((ex13_polys, paper_forest), 4, True)
