"""Table 2: the abstraction-tree catalog — node counts and #VVS.

This table is exact, not statistical: the bench recomputes every row at
the paper's 128-leaf scale and asserts the published node and cut
counts. (``count_cuts`` is closed-form; ``iter_cuts`` is cross-checked
on the small rows.)
"""

import pytest

from repro.workloads.trees import layered_tree, table2_rows
from benchmarks import common

#: Figure/table benches run minutes at full scale; `-m "not slow"` skips them.
pytestmark = pytest.mark.slow

#: (type, nodes, #VVS) — all 28 rows of the paper's Table 2.
PAPER_TABLE_2 = [
    (1, 131, 5), (1, 133, 17), (1, 137, 257), (1, 145, 65537),
    (1, 161, 4294967297), (1, 193, 18446744073709551617),
    (2, 135, 26), (2, 139, 290), (2, 147, 66050), (2, 163, 4295098370),
    (2, 195, 18446744082299486210),
    (3, 141, 626), (3, 149, 83522), (3, 165, 4362470402),
    (3, 197, 18447869999386460162),
    (4, 153, 390626), (4, 169, 6975757442), (4, 201, 19031147999601100802),
    (5, 143, 677), (5, 151, 84101), (5, 167, 4362602501),
    (5, 199, 18447870007976656901),
    (6, 155, 391877), (6, 171, 6975924485), (6, 203, 19031148008326041605),
    (7, 157, 456977), (7, 173, 7072810001), (7, 205, 19032300573006250001),
]


def test_table2(benchmark):
    computed = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    by_key = {(t, n): c for t, n, _, c in computed}
    rows = []
    for tree_type, nodes, cuts in PAPER_TABLE_2:
        measured = by_key.get((tree_type, nodes))
        rows.append(
            [tree_type, nodes, cuts, measured,
             "match" if measured == cuts else "MISMATCH"]
        )
        assert measured == cuts, (tree_type, nodes)
    common.emit(
        "table2_tree_catalog",
        ["type", "nodes", "paper #VVS", "computed #VVS", "verdict"],
        rows,
        title="Table 2 — abstraction tree catalog (exact reproduction)",
    )


def test_table2_enumeration_cross_check(benchmark):
    """iter_cuts agrees with the closed form on enumerable trees."""

    def run():
        checked = []
        for fanouts in [(2,), (4,), (2, 2), (4, 2), (2, 2, 2)]:
            tree = layered_tree([f"x{i}" for i in range(16)], fanouts)
            enumerated = sum(1 for _ in tree.iter_cuts())
            assert enumerated == tree.count_cuts()
            checked.append((fanouts, enumerated))
        return checked

    checked = benchmark.pedantic(run, rounds=1, iterations=1)
    common.emit(
        "table2_cross_check",
        ["fanouts", "#VVS (enumerated == closed form)"],
        [[str(f), c] for f, c in checked],
        title="Table 2 cross-check — enumeration vs closed form (16 leaves)",
    )
