"""Commutative semirings — the algebraic substrate of K-relations.

Green, Karvounarakis & Tannen (PODS 2007, the paper's reference [36])
annotate database tuples with elements of a commutative semiring
``(K, ⊕, ⊗, 0, 1)``; positive relational algebra then combines
annotations: joins multiply, unions/projections add. The provenance
polynomials this repository abstracts are the elements of the *free*
(universal) semiring ``N[X]``; evaluating them in another semiring (via
:mod:`repro.semiring.homomorphism`) specializes provenance to set/bag
semantics, trust, cost, probability, …

A semiring here is an object with ``zero``, ``one``, ``plus`` and
``times`` — plain and explicit, per the style guide, rather than any
metaclass magic.
"""

from __future__ import annotations

__all__ = ["Semiring"]


class Semiring:
    """Base class for commutative semirings.

    Subclasses must provide ``zero``, ``one`` attributes and
    ``plus``/``times`` methods. The base class supplies n-ary folds and
    a generic natural-number embedding (``n ↦ 1 ⊕ … ⊕ 1``), which
    subclasses override when a faster embedding exists.
    """

    #: Human-readable name used in reprs and error messages.
    name = "semiring"

    zero = None
    one = None

    def plus(self, a, b):
        raise NotImplementedError

    def times(self, a, b):
        raise NotImplementedError

    def sum(self, values):
        """``⊕``-fold of an iterable (``zero`` for an empty one)."""
        total = self.zero
        for value in values:
            total = self.plus(total, value)
        return total

    def product(self, values):
        """``⊗``-fold of an iterable (``one`` for an empty one)."""
        total = self.one
        for value in values:
            total = self.times(total, value)
        return total

    def power(self, value, exponent):
        """``value ⊗ … ⊗ value`` (``exponent`` times; ``one`` for 0)."""
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        result = self.one
        for _ in range(exponent):
            result = self.times(result, value)
        return result

    def from_int(self, n):
        """Embed a natural number: ``n ↦ Σⁿ 1``.

        This is the unique semiring homomorphism from ``N`` and is what
        lets integer polynomial coefficients evaluate anywhere.
        """
        if n < 0:
            raise ValueError(f"cannot embed negative {n} into a semiring")
        result = self.zero
        for _ in range(n):
            result = self.plus(result, self.one)
        return result

    def is_zero(self, value):
        """Annotation-is-absent test (used to drop tuples)."""
        return value == self.zero

    def __repr__(self):
        return f"<{self.name}>"
