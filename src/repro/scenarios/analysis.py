"""Raw-vs-abstracted what-if analysis: speedup and accuracy.

Two quantities matter once provenance is abstracted:

* **assignment speedup** (Figure 10): how much faster scenarios valuate
  on the compressed polynomials — compression is useful precisely
  because each analyst applies many valuations;
* **accuracy**: scenarios uniform on the chosen groups are answered
  *exactly* (the lifting homomorphism); non-uniform scenarios are
  answered approximately by valuating each meta-variable at a
  representative of its group's values — the "reasonable loss of
  accuracy" the abstract trades for size.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.valuation import Valuation
from repro.options import resolve_options
from repro.util.timing import time_call

__all__ = [
    "SpeedupReport",
    "TopKEntry",
    "VariableSensitivity",
    "assignment_speedup",
    "approximate_lift",
    "evaluate_scenarios",
    "scenario_error",
    "sensitivity",
    "top_k",
]


def evaluate_scenarios(polynomials, scenarios, default=1.0, *, options=None,
                       workers=None, chunk_size=None, engine=None):
    """Valuate a whole scenario family in one vectorized pass.

    :param scenarios: a :class:`~repro.scenarios.sweep.Sweep`, a
        :class:`~repro.scenarios.scenario.ScenarioSuite`, or any
        iterable of :class:`Scenario`,
        :class:`~repro.core.valuation.Valuation` or plain dicts.
    :param options: an :class:`~repro.options.EvalOptions` (or a
        mapping of its fields) bundling the evaluation knobs —
        ``engine`` (dense vs. delta batch evaluation; ``"auto"`` picks
        delta for sparse families, see
        :func:`repro.core.batch.choose_engine`), ``workers`` (shard
        across processes via :func:`repro.scenarios.parallel.\
evaluate_scenarios_parallel`; ``None`` stays in process) and
        ``chunk_size`` (scenarios per shard/block). Answers are
        bit-identical whatever the knobs.
    :param workers: deprecated — use ``options=EvalOptions(workers=…)``.
    :param chunk_size: deprecated — use ``options=``.
    :param engine: deprecated — use ``options=EvalOptions(engine=…)``.
    :returns: a ``(num_scenarios, num_polynomials)`` NumPy array — row
        ``i`` is ``scenarios[i].evaluate(polynomials)``.

    The polynomial set is compiled to coefficient/exponent arrays once
    (cached on the set), so a suite of hundreds of scenarios costs a few
    matrix operations instead of hundreds of per-monomial Python loops;
    sweeps are consumed lazily in chunks, so a million-scenario grid
    never materializes a scenario list.
    """
    from repro.scenarios.parallel import evaluate_scenarios_parallel

    opts = resolve_options(
        options, where="evaluate_scenarios", workers=workers,
        chunk_size=chunk_size, engine=engine,
    )
    return evaluate_scenarios_parallel(
        polynomials, scenarios, workers=opts.workers, default=default,
        chunk_size=opts.chunk_size, engine=opts.engine,
    )


@dataclass(frozen=True)
class TopKEntry:
    """One ranked scenario from :func:`top_k`.

    * ``rank`` — 1-based position in the ranking;
    * ``index`` — the scenario's position in the input family;
    * ``name`` — the scenario's name (generated for anonymous inputs);
    * ``score`` — the objective value the ranking ordered by;
    * ``values`` — the scenario's per-polynomial valuations.
    """

    rank: int
    index: int
    name: str
    score: float
    values: tuple


def top_k(polynomials, scenarios, k=10, *, objective=None, largest=True,
          default=1.0, options=None, workers=None, chunk_size=None,
          transform=None, engine=None):
    """The ``k`` scenarios with the most extreme objective values.

    Answers the analyst question sweeps exist for — "*which* what-if
    moves the result most?" — without holding the full answer matrix:
    evaluation streams in chunks (optionally sharded across
    ``workers`` processes) and only a ``k``-entry heap persists, so
    million-scenario sweeps rank in O(k) memory.

    :param objective: ``row -> float`` over a scenario's per-polynomial
        values (a NumPy vector); the default sums them (total output).
    :param largest: rank by highest objective (default) or lowest.
    :param transform: optional per-scenario callable applied before
        evaluation (e.g. lifting onto an artifact's cut); names and
        indexes still refer to the original scenarios.
    :param options: an :class:`~repro.options.EvalOptions` (or mapping)
        bundling ``engine``/``workers``/``chunk_size``; rankings are
        identical whatever the knobs.
    :param workers: deprecated — use ``options=``.
    :param chunk_size: deprecated — use ``options=``.
    :param engine: deprecated — use ``options=``.
    :returns: a list of :class:`TopKEntry`, best first; ties break
        toward the earlier scenario index, so rankings are
        deterministic.
    """
    from repro.scenarios.parallel import iter_value_blocks

    opts = resolve_options(
        options, where="top_k", workers=workers, chunk_size=chunk_size,
        engine=engine,
    )
    k = int(k)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    sign = 1.0 if largest else -1.0
    heap = []  # (keyed score, -index, name, values) — heap[0] is worst kept
    # materialize=False lets Sweep shards skip a second parent-side
    # generation pass: only the k kept entries get their names resolved
    # (by index) after the stream is drained.
    for start, chunk, values in iter_value_blocks(
        polynomials, scenarios, default=default, workers=opts.workers,
        chunk_size=opts.chunk_size, transform=transform, materialize=False,
        engine=opts.engine,
    ):
        for offset in range(values.shape[0]):
            row = values[offset]
            score = float(objective(row) if objective else row.sum())
            index = start + offset
            if chunk is None:
                name = None  # resolved from the Sweep at the end
            else:
                name = getattr(chunk[offset], "name", None)
                name = str(name) if name is not None else f"scenario-{index}"
            item = (
                sign * score,
                -index,
                name,
                tuple(float(v) for v in row),
            )
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heapreplace(heap, item)
    ranked = sorted(heap, reverse=True)
    return [
        TopKEntry(
            rank=position + 1,
            index=-negated_index,
            name=(name if name is not None
                  else scenarios[-negated_index].name),
            score=sign * keyed_score,
            values=values,
        )
        for position, (keyed_score, negated_index, name, values)
        in enumerate(ranked)
    ]


@dataclass(frozen=True)
class VariableSensitivity:
    """One variable's aggregate effect across a scenario family.

    * ``variable`` — the scenario variable;
    * ``mean_delta`` — mean L1 output delta (vs. the all-default
      baseline) over the scenarios that change the variable;
    * ``max_delta`` — the largest such delta;
    * ``scenarios`` — how many scenarios changed the variable.
    """

    variable: str
    mean_delta: float
    max_delta: float
    scenarios: int


def sensitivity(polynomials, scenarios, *, default=1.0, options=None,
                workers=None, chunk_size=None, transform=None, engine=None):
    """Rank variables by the output delta their scenarios induce.

    For each scenario the L1 distance between its per-polynomial values
    and the all-``default`` baseline's is attributed to every variable
    the scenario changes; variables are then ranked by mean attributed
    delta. Over a :meth:`Sweep.one_at_a_time
    <repro.scenarios.sweep.Sweep.one_at_a_time>` family each scenario
    touches one variable, so the ranking is a clean per-variable
    tornado; over grids/Monte-Carlo it is a screening estimate (deltas
    of co-changed variables are attributed to each).

    Evaluation streams in chunks (optionally across worker processes);
    memory stays O(variables), not O(scenarios). ``options`` bundles
    the ``engine``/``workers``/``chunk_size`` knobs (the legacy
    keywords still work but warn ``DeprecationWarning``); the report is
    identical whatever the knobs — the engines are bit-identical.

    :returns: a list of :class:`VariableSensitivity`, largest
        ``mean_delta`` first (ties break by variable name).
    """
    import numpy

    from repro.scenarios.parallel import iter_value_blocks

    opts = resolve_options(
        options, where="sensitivity", workers=workers,
        chunk_size=chunk_size, engine=engine,
    )
    compiled = (
        polynomials.compiled() if hasattr(polynomials, "compiled")
        else polynomials
    )
    baseline_entry = (
        Valuation({}, default=default) if transform is None
        else transform(Valuation({}, default=default))
    )
    # A single all-default row: the dense path is the cheap one here
    # (no point building the delta index for one baseline scenario).
    baseline = compiled.evaluate([baseline_entry], engine="dense")[0]

    totals = {}
    maxima = {}
    counts = {}
    for _, chunk, values in iter_value_blocks(
        compiled, scenarios, default=default, workers=opts.workers,
        chunk_size=opts.chunk_size, transform=transform, engine=opts.engine,
    ):
        deltas = numpy.abs(values - baseline).sum(axis=1)
        for offset, entry in enumerate(chunk):
            delta = float(deltas[offset])
            changed = Valuation.coerce(entry, default).assignment
            for variable in changed:
                totals[variable] = totals.get(variable, 0.0) + delta
                counts[variable] = counts.get(variable, 0) + 1
                if delta > maxima.get(variable, -1.0):
                    maxima[variable] = delta
    report = [
        VariableSensitivity(
            variable=variable,
            mean_delta=totals[variable] / counts[variable],
            max_delta=maxima[variable],
            scenarios=counts[variable],
        )
        for variable in totals
    ]
    report.sort(key=lambda entry: (-entry.mean_delta, entry.variable))
    return report


@dataclass
class SpeedupReport:
    """Timing comparison of scenario application, raw vs abstracted."""

    raw_seconds: float
    abstracted_seconds: float
    raw_size: int
    abstracted_size: int

    @property
    def speedup_percent(self):
        """``100 · (1 − t_abstracted / t_raw)`` (Figure 10's y-axis)."""
        if self.raw_seconds == 0:
            return 0.0
        return 100.0 * (1.0 - self.abstracted_seconds / self.raw_seconds)

    @property
    def compression_ratio(self):
        """``|P↓S|_M / |P|_M``."""
        if self.raw_size == 0:
            return 1.0
        return self.abstracted_size / self.raw_size


def assignment_speedup(polynomials, abstracted, scenarios, vvs=None, repeat=3,
                       batch=True, engine=None, *, options=None):
    """Time a scenario suite on raw vs abstracted provenance.

    Scenarios are lifted onto meta-variables when a ``vvs`` is given
    (exactly, when uniform; via :func:`approximate_lift` otherwise) so
    both sides do equivalent work.

    ``batch=True`` (the default) valuates each side through the
    compiled :meth:`~repro.core.polynomial.PolynomialSet.evaluate_batch`
    — the whole suite per matrix product; ``batch=False`` keeps the
    per-scenario interpreter loop (the pre-vectorization behaviour,
    useful for measuring what batching itself buys). ``options`` (an
    :class:`~repro.options.EvalOptions`) pins the batch evaluator
    (``dense``/``delta``/``auto``) so timed runs can fix the engine
    like every other evaluation surface; the positional ``engine``
    keyword is deprecated.
    """
    opts = resolve_options(options, where="assignment_speedup", engine=engine)
    raw_valuations = [s.valuation() for s in scenarios]
    if vvs is None:
        abstracted_valuations = raw_valuations
    else:
        abstracted_valuations = [
            s.lift(vvs) if s.is_supported_by(vvs) else approximate_lift(s, vvs)
            for s in scenarios
        ]

    if batch:
        def run(polys, valuations):
            return polys.evaluate_batch(valuations, engine=opts.engine)
    else:
        def run(polys, valuations):
            out = []
            for valuation in valuations:
                out.append(valuation.evaluate(polys))
            return out

    raw_seconds, _ = time_call(run, polynomials, raw_valuations, repeat=repeat)
    abstracted_seconds, _ = time_call(
        run, abstracted, abstracted_valuations, repeat=repeat
    )
    return SpeedupReport(
        raw_seconds=raw_seconds,
        abstracted_seconds=abstracted_seconds,
        raw_size=polynomials.num_monomials,
        abstracted_size=abstracted.num_monomials,
    )


def approximate_lift(scenario, vvs, default=1.0):
    """Best-effort valuation on meta-variables for a non-uniform scenario.

    Each group's meta-variable takes the *mean* of its leaves' values —
    the least-squares representative. Exact when the scenario is
    uniform on the group. ``scenario`` may be a :class:`Scenario`, a
    :class:`~repro.core.valuation.Valuation` or a plain mapping.
    """
    valuation = Valuation.coerce(scenario, default)
    default = valuation.default
    lifted = dict(valuation.assignment)
    for label in vvs.labels:
        group = vvs.group(label)
        values = [valuation[leaf] for leaf in group]
        for leaf in group:
            lifted.pop(leaf, None)
        mean = sum(values) / len(values)
        if mean != default:
            lifted[label] = mean
    return Valuation(lifted, default=default)


def scenario_error(polynomials, abstracted, vvs, scenario):
    """Per-polynomial relative error of the abstracted answer.

    Returns a list of ``|approx − exact| / max(1, |exact|)`` values —
    all zeros when the scenario is uniform on the VVS (the lossless
    case, asserted by property tests).
    """
    exact = scenario.valuation().evaluate(polynomials)
    if scenario.is_supported_by(vvs):
        lifted = scenario.lift(vvs)
    else:
        lifted = approximate_lift(scenario, vvs)
    approx = lifted.evaluate(abstracted)
    return [
        abs(a - e) / max(1.0, abs(e)) for a, e in zip(approx, exact, strict=True)
    ]
