"""Core provenance model: polynomials, abstraction trees, VVSs, losses.

This package implements §2 of the paper — the data model everything else
builds on:

* :class:`~repro.core.polynomial.Polynomial` /
  :class:`~repro.core.polynomial.PolynomialSet` — provenance polynomials
  and multisets thereof, with the paper's size (``|P|_M``) and
  granularity (``|P|_V``) measures;
* :class:`~repro.core.tree.AbstractionTree` /
  :class:`~repro.core.forest.AbstractionForest` — user-provided
  hierarchies over variables;
* :class:`~repro.core.forest.ValidVariableSet` — a cut per tree
  (Definition 4), i.e., a concrete choice of abstraction;
* :func:`~repro.core.abstraction.abstract` and the loss measures
  ``ML``/``VL`` plus the §4.1 :class:`~repro.core.abstraction.LossIndex`;
* :class:`~repro.core.valuation.Valuation` — hypothetical scenarios.
"""

from repro.core.abstraction import (
    LossIndex,
    abstract,
    abstract_counts,
    losses,
    monomial_loss,
    variable_loss,
)
from repro.core.interning import VARIABLES, VariableTable
from repro.core.forest import (
    AbstractionForest,
    CompatibilityError,
    ValidVariableSet,
)
from repro.core.parser import ParseError, parse, parse_set
from repro.core.polynomial import Monomial, Polynomial, PolynomialSet
from repro.core.statistics import ProvenanceProfile, profile, variable_cooccurrence
from repro.core.tree import AbstractionTree, TreeNode
from repro.core.valuation import NonUniformError, Valuation


def __getattr__(name):
    # Lazy: repro.core.batch imports numpy; defer that to first use so
    # `import repro` stays light (PolynomialSet.compiled() does the same).
    if name == "CompiledPolynomialSet":
        from repro.core.batch import CompiledPolynomialSet

        return CompiledPolynomialSet
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Monomial",
    "Polynomial",
    "PolynomialSet",
    "CompiledPolynomialSet",
    "VariableTable",
    "VARIABLES",
    "AbstractionTree",
    "TreeNode",
    "AbstractionForest",
    "ValidVariableSet",
    "CompatibilityError",
    "LossIndex",
    "abstract",
    "abstract_counts",
    "losses",
    "monomial_loss",
    "variable_loss",
    "Valuation",
    "NonUniformError",
    "parse",
    "parse_set",
    "ParseError",
    "profile",
    "ProvenanceProfile",
    "variable_cooccurrence",
]
