"""Relation schemas: ordered, uniquely-named columns."""

from __future__ import annotations

__all__ = ["Schema", "SchemaError"]


class SchemaError(ValueError):
    """Raised on schema mismatches (unknown columns, name clashes, …)."""


class Schema:
    """An ordered sequence of uniquely-named columns.

    >>> s = Schema(["ID", "Plan", "Zip"])
    >>> s.index("Plan")
    1
    >>> s.project(["Zip", "ID"]).columns
    ('Zip', 'ID')
    """

    __slots__ = ("columns", "_index")

    def __init__(self, columns):
        self.columns = tuple(str(c) for c in columns)
        self._index = {}
        for position, column in enumerate(self.columns):
            if column in self._index:
                raise SchemaError(f"duplicate column name {column!r}")
            self._index[column] = position

    def index(self, column):
        """Position of ``column`` (SchemaError if absent)."""
        try:
            return self._index[column]
        except KeyError:
            raise SchemaError(
                f"unknown column {column!r}; schema has {list(self.columns)}"
            ) from None

    def __contains__(self, column):
        return column in self._index

    def __iter__(self):
        return iter(self.columns)

    def __len__(self):
        return len(self.columns)

    def __eq__(self, other):
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self):
        return hash(self.columns)

    def project(self, columns):
        """Schema restricted to ``columns`` (in the given order)."""
        for column in columns:
            self.index(column)
        return Schema(columns)

    def rename(self, mapping):
        """Schema with columns renamed via ``mapping``."""
        return Schema(mapping.get(c, c) for c in self.columns)

    def concat(self, other, drop_from_other=()):
        """Schema of a join output: self + (other − dropped join columns).

        Raises :class:`SchemaError` on residual name clashes — callers
        should rename first, which keeps provenance columns explicit.
        """
        dropped = set(drop_from_other)
        extra = [c for c in other.columns if c not in dropped]
        clash = set(self.columns) & set(extra)
        if clash:
            raise SchemaError(
                f"join output would duplicate columns {sorted(clash)}; "
                "rename one side first"
            )
        return Schema(self.columns + tuple(extra))

    def row_to_dict(self, row):
        """Zip a value tuple with the column names."""
        return dict(zip(self.columns, row, strict=True))

    def dict_to_row(self, mapping):
        """Project a dict onto this schema's column order."""
        try:
            return tuple(mapping[c] for c in self.columns)
        except KeyError as missing:
            raise SchemaError(f"row is missing column {missing}") from None

    def __repr__(self):
        return f"Schema({list(self.columns)!r})"
