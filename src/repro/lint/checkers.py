"""The RPL001–RPL011 AST checkers: the repo's contracts, enforced.

Each rule guards an invariant that was introduced by a specific PR and
is otherwise protected only by review attention (INVARIANTS.md at the
repository root documents every code, its origin and the legitimate
suppression story). The checkers are deliberately narrow: each one
matches the concrete idiom the contract is stated in, so a clean run
means the contract holds in the form the property tests pin down —
not that the rule outsmarted an adversary.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, ModuleSource

__all__ = [
    "PowGroupingChecker",
    "ReadOnlyViewChecker",
    "SharedMemoryLifecycleChecker",
    "GlobalRngChecker",
    "PickledCacheChecker",
    "KeywordContractChecker",
    "ExactCoefficientChecker",
    "PublicAnnotationChecker",
    "OptionsContractChecker",
    "MutationContractChecker",
    "ResourceLifecycleChecker",
    "AST_CHECKERS",
]


def _call_name(node: ast.Call) -> str:
    """The bare called name: ``f`` for ``f(...)`` and ``o.f(...)``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_numeric_constant(node: ast.AST) -> bool:
    """Is ``node`` a literal number (allowing a leading unary minus)?"""
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    )


def _keyword(node: ast.Call, name: str):
    """The keyword argument ``name`` of a call, or ``None``."""
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword
    return None


def _functions(tree: ast.Module):
    """Yield every function/method definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class PowGroupingChecker(Checker):
    """RPL001 — the pow-grouping bit-identity rule (PR 4).

    NumPy's ``**`` ufunc rounds grouping-dependently (SIMD inner loop
    vs. scalar tail), so a value computed inside a large dense layer
    and the same value recomputed in a small delta patch can differ in
    the last bit — breaking the engines' bit-identity contract. Inside
    the evaluation kernels every integer power must go through the
    ``_int_power`` left-associated multiply chain: ``**`` and
    ``numpy.power`` are banned except between literal numbers
    (constants like ``2**63`` are computed once, at import).
    """

    code = "RPL001"
    name = "pow-grouping"
    description = (
        "no **/numpy.power on arrays in the evaluation kernels; integer "
        "powers go through the _int_power multiply chain"
    )
    paths = ("core/batch.py", "core/columnar.py")

    def check(self, module: ModuleSource):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
                if _is_numeric_constant(node.left) and _is_numeric_constant(
                    node.right
                ):
                    continue  # e.g. 2**63: folded once, grouping-free
                yield self.finding(
                    module, node,
                    "`**` is not bit-reproducible across array groupings; "
                    "use _int_power (left-associated multiply chain) so "
                    "dense and delta engines stay bit-identical",
                )
            elif isinstance(node, ast.Call):
                if module.resolve(node.func) == "numpy.power":
                    yield self.finding(
                        module, node,
                        "numpy.power is not bit-reproducible across array "
                        "groupings; use _int_power so dense and delta "
                        "engines stay bit-identical",
                    )


class ReadOnlyViewChecker(Checker):
    """RPL002 — buffer-backed views must be frozen before escaping (PR 6).

    ``read_artifact`` hands NumPy views *directly over an mmap* of the
    artifact file; a writable view would let evaluation code corrupt
    the artifact on disk. Every ``numpy.frombuffer`` result must be
    bound to a local name and made read-only (``x.flags.writeable =
    False``) inside the same function before anything else can see it.
    """

    code = "RPL002"
    name = "read-only-views"
    description = (
        "numpy.frombuffer views must set flags.writeable = False in the "
        "same function before escaping"
    )
    paths = ("core/binfmt.py",)

    def check(self, module: ModuleSource):
        for function in _functions(module.tree):
            bound = {}  # local name -> the frombuffer call node
            loose = []  # frombuffer calls not bound to a simple name
            frozen = set()  # names assigned .flags.writeable = False
            for node in ast.walk(function):
                if isinstance(node, ast.Call) and (
                    module.resolve(node.func) == "numpy.frombuffer"
                ):
                    # A second pass below pairs calls with assignments.
                    loose.append(node)
                elif isinstance(node, ast.Assign):
                    self._collect_freeze(node, frozen)
            # Pair frombuffer calls with simple-name assignments.
            for node in ast.walk(function):
                if not isinstance(node, ast.Assign):
                    continue
                if node.value in loose and len(node.targets) == 1 and (
                    isinstance(node.targets[0], ast.Name)
                ):
                    bound[node.targets[0].id] = node.value
                    loose.remove(node.value)
            for call in loose:
                yield self.finding(
                    module, call,
                    "numpy.frombuffer view escapes without being bound to "
                    "a name and frozen (flags.writeable = False) — a "
                    "writable view aliases the mmap'd artifact file",
                )
            for name, call in bound.items():
                if name not in frozen:
                    yield self.finding(
                        module, call,
                        f"buffer view {name!r} is never made read-only; "
                        f"set {name}.flags.writeable = False before it "
                        "escapes (writable views alias the mmap'd file)",
                    )

    @staticmethod
    def _collect_freeze(node: ast.Assign, frozen: set):
        """Record ``X.flags.writeable = False`` targets into ``frozen``."""
        if not (
            isinstance(node.value, ast.Constant) and node.value.value is False
        ):
            return
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "writeable"
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "flags"
                and isinstance(target.value.value, ast.Name)
            ):
                frozen.add(target.value.value.id)


class SharedMemoryLifecycleChecker(Checker):
    """RPL003 — the shared-memory segment lifecycle (PR 6).

    The parent creates exactly one segment and its single ``unlink()``
    at pool exit balances the resource tracker; a worker that unlinks
    (or a creator that never unlinks) either leaks ``/dev/shm`` or
    over-removes from the tracker's shared set. Enforced shape: a
    module that calls ``SharedMemory(create=True)`` must also call
    ``.unlink()`` somewhere, and a function that *attaches* (a
    ``SharedMemory`` call without ``create=True`` — worker-side code)
    must never call ``.unlink()`` itself.
    """

    code = "RPL003"
    name = "shm-lifecycle"
    description = (
        "SharedMemory(create=True) pairs with unlink() in the same "
        "module; attach-side (worker) code never unlinks"
    )

    def check(self, module: ModuleSource):
        creators = []
        has_unlink = False
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                if _call_name(node) == "unlink":
                    has_unlink = True
                if self._is_create(node):
                    creators.append(node)
        if creators and not has_unlink:
            for creator in creators:
                yield self.finding(
                    module, creator,
                    "SharedMemory(create=True) has no paired unlink() in "
                    "this module — the segment would leak in /dev/shm",
                )
        for function in _functions(module.tree):
            attaches = False
            creates = False
            unlinks = []
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                if self._is_create(node):
                    creates = True
                elif _call_name(node) == "SharedMemory":
                    attaches = True
                elif _call_name(node) == "unlink":
                    unlinks.append(node)
            if attaches and not creates:
                for unlink in unlinks:
                    yield self.finding(
                        module, unlink,
                        "worker-side (attaching) code must never unlink "
                        "the segment — the resource-tracker cache is one "
                        "set per process tree and the parent's single "
                        "unlink() balances it",
                    )

    @staticmethod
    def _is_create(node: ast.Call) -> bool:
        if _call_name(node) != "SharedMemory":
            return False
        keyword = _keyword(node, "create")
        return keyword is not None and (
            isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
        )


class GlobalRngChecker(Checker):
    """RPL004 — all randomness flows through seeded generators.

    Module-global RNG state (``random.random()``, the legacy
    ``numpy.random.*`` API) makes results depend on import order and
    call history — the reproducibility story of
    :mod:`repro.util.rng` (per-component SHA-derived sub-seeds) only
    holds if nothing else draws from shared state. Constructing seeded
    generator *objects* (``random.Random(seed)``,
    ``numpy.random.default_rng(seed)``) is the sanctioned idiom.
    """

    code = "RPL004"
    name = "no-global-rng"
    description = (
        "no module-global RNG (random.*, legacy numpy.random.*) — "
        "randomness flows through seeded generators (util/rng.py)"
    )
    exclude_paths = ("util/rng.py", "workloads/")

    #: Seeded-generator constructors (not shared state) — allowed.
    _ALLOWED = frozenset({
        "random.Random",
        "random.SystemRandom",
        "numpy.random.Generator",
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
    })

    def check(self, module: ModuleSource):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve(node.func)
            if not dotted or dotted in self._ALLOWED:
                continue
            if dotted.startswith("random.") or dotted.startswith(
                "numpy.random."
            ):
                yield self.finding(
                    module, node,
                    f"{dotted} draws from module-global RNG state; "
                    "derive a seeded generator via repro.util.rng "
                    "(derive_rng) or numpy.random.default_rng(seed)",
                )


class PickledCacheChecker(Checker):
    """RPL005 — pickled state excludes lazily-rebuilt caches.

    Compiled-set delta indexes, baseline caches and columnar views are
    derived data: shipping them to workers wastes bandwidth and — for
    buffer-backed views — pickles arrays that alias an mmap. Classes
    defining ``__getstate__`` must not reference the known cache
    attributes (they rebuild on demand after unpickling), and must not
    return ``self.__dict__`` wholesale.
    """

    code = "RPL005"
    name = "no-pickled-caches"
    description = (
        "__getstate__ must exclude cache attributes (_delta, "
        "_baselines, _compiled, _columnar, ...) — caches rebuild lazily"
    )

    #: Attribute names recognized as caches across the codebase (the
    #: PR-4/5/6 lazily-rebuilt structures, plus their historical names).
    CACHE_ATTRS = frozenset({
        "_compiled",
        "_columnar",
        "_columnar_cache",
        "_delta",
        "_delta_index",
        "_baselines",
        "_baseline_cache",
        "_materialized",
    })

    def check(self, module: ModuleSource):
        for function in _functions(module.tree):
            if function.name != "__getstate__":
                continue
            for node in ast.walk(function):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr in self.CACHE_ATTRS
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    yield self.finding(
                        module, node,
                        f"__getstate__ references cache attribute "
                        f"{node.attr!r}; caches must be dropped from the "
                        "pickled state and rebuilt lazily on load",
                    )
                elif (
                    isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and node.value in self.CACHE_ATTRS
                ):
                    yield self.finding(
                        module, node,
                        f"__getstate__ names cache attribute "
                        f"{node.value!r}; caches must be dropped from the "
                        "pickled state and rebuilt lazily on load",
                    )
                elif (
                    isinstance(node, ast.Attribute)
                    and node.attr == "__dict__"
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    yield self.finding(
                        module, node,
                        "__getstate__ returns self.__dict__ wholesale — "
                        "cache attributes would travel; build the state "
                        "explicitly",
                    )


class KeywordContractChecker(Checker):
    """RPL006 — the ``engine=``/``backend=`` threading contract (PRs 4–5).

    Every public evaluation surface accepts the knob and forwards it to
    the sink it reaches, so callers can pin an engine end to end and
    the ``auto`` policies resolve exactly once. A public callable that
    reaches a sink without accepting/forwarding the keyword silently
    re-defaults the choice mid-stack.

    Since PR 8 the knobs may travel bundled: an ``options`` parameter
    (an :class:`repro.options.EvalOptions`) carries every knob at once,
    so accepting ``options`` / forwarding ``options=`` satisfies the
    contract exactly like the bare keyword does.
    """

    code = "RPL006"
    name = "keyword-contract"
    description = (
        "public callables reaching evaluation/solver sinks must accept "
        "and forward the engine=/backend= keywords"
    )
    paths = (
        "api/session.py",
        "api/artifact.py",
        "scenarios/analysis.py",
        "scenarios/parallel.py",
    )

    #: keyword -> the sink callable names that consume it.
    CONTRACTS = {
        "engine": frozenset({
            "evaluate_batch",
            "evaluate_scenarios",
            "evaluate_scenarios_parallel",
            "iter_value_blocks",
        }),
        "backend": frozenset({
            "abstract",
            "abstract_counts",
            "greedy_vvs",
            "optimal_vvs",
            "brute_force_vvs",
        }),
    }

    def check(self, module: ModuleSource):
        for function in self._public_callables(module.tree):
            params = self._parameter_names(function)
            has_var_kw = function.args.kwarg is not None
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                called = _call_name(node)
                for keyword, sinks in self.CONTRACTS.items():
                    if called not in sinks:
                        continue
                    if (
                        keyword not in params
                        and "options" not in params
                        and not has_var_kw
                    ):
                        yield self.finding(
                            module, node,
                            f"public callable {function.name!r} reaches "
                            f"{called}() but does not accept {keyword}= "
                            "or options= — the knob must thread through "
                            "every public evaluation surface",
                        )
                    elif (
                        _keyword(node, keyword) is None
                        and _keyword(node, "options") is None
                        and not any(
                            kw.arg is None for kw in node.keywords  # **kwargs
                        )
                    ):
                        yield self.finding(
                            module, node,
                            f"public callable {function.name!r} does not "
                            f"forward {keyword}= (or options=) to "
                            f"{called}() — the caller's choice would be "
                            "silently re-defaulted",
                        )

    @staticmethod
    def _public_callables(tree: ast.Module):
        """Public module functions and public methods of public classes
        (nested defs are attributed to their enclosing callable)."""
        def is_public(name):
            return not name.startswith("_")

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if is_public(node.name):
                    yield node
            elif isinstance(node, ast.ClassDef) and is_public(node.name):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and is_public(item.name):
                        yield item

    @staticmethod
    def _parameter_names(function) -> set:
        args = function.args
        names = {a.arg for a in args.posonlyargs}
        names.update(a.arg for a in args.args)
        names.update(a.arg for a in args.kwonlyargs)
        return names


class ExactCoefficientChecker(Checker):
    """RPL007 — exact coefficients never pass through floats (PR 6).

    The serialization layer round-trips big ints and Fractions
    *exactly*; one ``float()`` coercion (or a float literal smuggled
    into a comparison) silently destroys the COBRA-style exactness the
    provenance semantics rest on. Float handling is confined to the
    designated f64 buffer branch (``_encode_coeffs``/
    ``_decode_coeffs`` in the binary container).
    """

    code = "RPL007"
    name = "exact-coefficients"
    description = (
        "no float() coercion or float literals on the exact-coefficient "
        "serialization paths (outside the designated f64 buffer branch)"
    )
    paths = ("core/serialize.py", "core/binfmt.py")

    #: Functions that ARE the f64 buffer branch — float handling is
    #: their job (kinds are tagged per row; floats stay bit-exact).
    ALLOWED_FUNCTIONS = frozenset({"_encode_coeffs", "_decode_coeffs"})

    def check(self, module: ModuleSource):
        allowed_ranges = []
        for function in _functions(module.tree):
            if function.name in self.ALLOWED_FUNCTIONS:
                allowed_ranges.append(
                    (function.lineno, function.end_lineno or function.lineno)
                )

        def is_allowed(node):
            line = getattr(node, "lineno", 0)
            return any(lo <= line <= hi for lo, hi in allowed_ranges)

        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
                and not is_allowed(node)
            ):
                yield self.finding(
                    module, node,
                    "float() coercion on an exact-coefficient path — big "
                    "ints and Fractions must round-trip exactly; confine "
                    "float handling to the f64 buffer branch",
                )
            elif (
                isinstance(node, ast.Constant)
                and type(node.value) is float
                and not is_allowed(node)
            ):
                yield self.finding(
                    module, node,
                    f"float literal {node.value!r} on an exact-"
                    "coefficient path — keep exact and float handling "
                    "in the designated f64 buffer branch",
                )


class PublicAnnotationChecker(Checker):
    """RPL008 — the public facade carries type annotations.

    The package ships a ``py.typed`` marker, so downstream type
    checkers consume these signatures; an unannotated public callable
    in the facade degrades every caller to ``Any``.
    """

    code = "RPL008"
    name = "typed-facade"
    description = (
        "public functions/methods of the api facade must annotate "
        "parameters and return types"
    )
    paths = (
        "api/session.py",
        "api/artifact.py",
        "api/__init__.py",
        "repro/__init__.py",
    )

    def check(self, module: ModuleSource):
        for function, is_method in self._public_surface(module.tree):
            skip_first = is_method and not any(
                isinstance(d, ast.Name) and d.id == "staticmethod"
                for d in function.decorator_list
            )
            args = function.args
            positional = list(args.posonlyargs) + list(args.args)
            if skip_first and positional:
                positional = positional[1:]
            for arg in positional + list(args.kwonlyargs):
                if arg.annotation is None:
                    yield self.finding(
                        module, function,
                        f"public callable {function.name!r}: parameter "
                        f"{arg.arg!r} has no type annotation",
                    )
            for arg in (args.vararg, args.kwarg):
                if arg is not None and arg.annotation is None:
                    yield self.finding(
                        module, function,
                        f"public callable {function.name!r}: parameter "
                        f"{arg.arg!r} has no type annotation",
                    )
            if function.returns is None:
                yield self.finding(
                    module, function,
                    f"public callable {function.name!r} has no return "
                    "annotation",
                )

    @staticmethod
    def _public_surface(tree: ast.Module):
        """``(function, is_method)`` for the module's public surface.

        Public module-level functions, and — in public classes —
        public methods plus ``__init__``; other dunders are exempt
        (their types are structural).
        """
        def wanted(name):
            return not name.startswith("_") or name == "__init__"

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if wanted(node.name):
                    yield node, False
            elif isinstance(node, ast.ClassDef) and not node.name.startswith(
                "_"
            ):
                dataclass_like = any(
                    (isinstance(d, ast.Name) and d.id == "dataclass")
                    or (
                        isinstance(d, ast.Call)
                        and isinstance(d.func, ast.Name)
                        and d.func.id == "dataclass"
                    )
                    for d in node.decorator_list
                )
                for item in node.body:
                    if not isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if item.name == "__init__" and dataclass_like:
                        continue  # generated by @dataclass
                    if wanted(item.name):
                        yield item, True


class OptionsContractChecker(Checker):
    """RPL009 — public eval entry points accept ``options=`` (PR 8).

    :class:`repro.options.EvalOptions` is the one bundled knob object
    of the public evaluation surface; legacy bare keywords survive only
    behind deprecation shims. Any public callable of the facade or the
    analysis layer that reaches an evaluation sink (directly, or via
    ``ask_many``) must therefore accept an ``options`` parameter — a
    new entry point shipped without it would fracture the unified
    signature the deprecation cycle is converging on.
    """

    code = "RPL009"
    name = "options-contract"
    description = (
        "public eval entry points (facade/analysis callables reaching "
        "an evaluation sink) must accept options="
    )
    paths = (
        "api/session.py",
        "api/artifact.py",
        "scenarios/analysis.py",
    )

    #: Reaching any of these means the callable is an eval entry point:
    #: the RPL006 engine sinks, plus the facade's own batch entry.
    SINKS = frozenset({
        "evaluate_batch",
        "evaluate_scenarios",
        "evaluate_scenarios_parallel",
        "iter_value_blocks",
        "ask_many",
    })

    def check(self, module: ModuleSource):
        for function in KeywordContractChecker._public_callables(module.tree):
            params = KeywordContractChecker._parameter_names(function)
            if "options" in params or function.args.kwarg is not None:
                continue
            for node in ast.walk(function):
                if (
                    isinstance(node, ast.Call)
                    and _call_name(node) in self.SINKS
                ):
                    yield self.finding(
                        module, function,
                        f"public eval entry point {function.name!r} "
                        f"reaches {_call_name(node)}() but does not "
                        "accept options= — new evaluation surfaces must "
                        "take the bundled EvalOptions knob",
                    )
                    break


class MutationContractChecker(Checker):
    """RPL010 — mutation surfaces take ``options=``, never bare knobs (PR 9).

    Artifact mutation (``session.extend`` / ``artifact.refresh`` /
    ``extend_artifact`` and the service route over them) is a new
    public surface born *after* the ``EvalOptions`` unification — so
    unlike the evaluation facade there is no legacy to deprecate:
    every public callable reaching a mutation sink must accept the
    bundled ``options=`` knob, and must not accept any of the bare
    per-knob keywords (``engine``/``backend``/``workers``/
    ``chunk_size``) the PR-8 deprecation cycle is retiring. Mirrors
    RPL009, one generation stricter.
    """

    code = "RPL010"
    name = "mutation-contract"
    description = (
        "public mutation entry points (callables reaching extend/refresh/"
        "extend_artifact) must accept options= and no bare eval knobs"
    )
    paths = (
        "api/session.py",
        "api/artifact.py",
        "api/mutation.py",
        "service/app.py",
    )

    #: Reaching any of these means the callable mutates an artifact.
    SINKS = frozenset({"extend", "refresh", "extend_artifact"})

    #: The bare per-knob keywords EvalOptions bundles — banned outright
    #: on mutation signatures (no deprecation grace here).
    KNOBS = frozenset({"engine", "backend", "workers", "chunk_size"})

    def check(self, module: ModuleSource):
        for function in KeywordContractChecker._public_callables(module.tree):
            sink = next(
                (
                    _call_name(node)
                    for node in ast.walk(function)
                    if isinstance(node, ast.Call)
                    and _call_name(node) in self.SINKS
                ),
                None,
            )
            if sink is None:
                continue
            params = KeywordContractChecker._parameter_names(function)
            for knob in sorted(params & self.KNOBS):
                yield self.finding(
                    module, function,
                    f"mutation entry point {function.name!r} accepts the "
                    f"bare {knob}= keyword — mutation surfaces bundle "
                    "every evaluation knob in options=EvalOptions(...)",
                )
            if "options" not in params and function.args.kwarg is None:
                yield self.finding(
                    module, function,
                    f"public mutation entry point {function.name!r} "
                    f"reaches {sink}() but does not accept options= — "
                    "mutation surfaces must take the bundled EvalOptions "
                    "knob",
                )


class ResourceLifecycleChecker(Checker):
    """RPL011 — leak-prone acquisitions sit under try/finally (PR 10).

    Three acquisitions in this codebase survive their creator if an
    exception lands between acquire and release: a shared-memory
    segment (stays in ``/dev/shm``), an ``mkstemp`` temp file (stays
    in the spool and poisons crash recovery statistics), and an
    installed fault plan (leaks scheduled chaos into unrelated code).
    Each such call must be protected: inside a ``with`` block, inside
    a ``try`` that has a ``finally``, or — the acquisition-assignment
    idiom — as the statement *immediately* followed by a
    ``try``/``finally`` that owns the cleanup. A bare call with the
    release further down the happy path leaks on the first exception
    in between (the PR-10 shared-memory leak, exactly).
    """

    code = "RPL011"
    name = "resource-lifecycle"
    description = (
        "SharedMemory(create=True), mkstemp and fault-plan install() "
        "must sit inside try/finally or a context manager"
    )

    def check(self, module: ModuleSource):
        parents = {
            child: parent
            for parent in ast.walk(module.tree)
            for child in ast.iter_child_nodes(parent)
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            what = self._acquisition(module, node)
            if what is None or self._protected(node, parents):
                continue
            yield self.finding(
                module, node,
                f"{what} is not protected by try/finally or a context "
                "manager — an exception before the release leaks the "
                "resource; put the cleanup in a finally immediately "
                "following the acquisition",
            )

    @staticmethod
    def _acquisition(module: ModuleSource, node: ast.Call) -> str | None:
        """The acquisition kind of a call, or ``None`` for other calls."""
        if SharedMemoryLifecycleChecker._is_create(node):
            return "SharedMemory(create=True)"
        dotted = module.resolve(node.func)
        if dotted == "tempfile.mkstemp":
            return "tempfile.mkstemp()"
        if dotted == "repro.faults.install" or dotted.endswith(
            ".faults.install"
        ):
            return "fault-plan install()"
        return None

    @staticmethod
    def _protected(node: ast.Call, parents: dict) -> bool:
        """Is ``node`` under a ``with``, a ``try``/``finally``, or an
        acquisition statement immediately followed by one?"""
        child: ast.AST = node
        while True:
            parent = parents.get(child)
            if parent is None:
                return False
            if isinstance(parent, (ast.With, ast.AsyncWith)):
                return True
            if isinstance(parent, ast.Try) and parent.finalbody:
                return True
            if isinstance(child, ast.stmt):
                for fieldname in ("body", "orelse", "finalbody"):
                    block = getattr(parent, fieldname, None)
                    if isinstance(block, list) and child in block:
                        index = block.index(child)
                        if index + 1 < len(block):
                            after = block[index + 1]
                            if isinstance(after, ast.Try) and after.finalbody:
                                return True
            child = parent


#: Registration order == report order for same-line findings.
AST_CHECKERS = (
    PowGroupingChecker,
    ReadOnlyViewChecker,
    SharedMemoryLifecycleChecker,
    GlobalRngChecker,
    PickledCacheChecker,
    KeywordContractChecker,
    ExactCoefficientChecker,
    PublicAnnotationChecker,
    OptionsContractChecker,
    MutationContractChecker,
    ResourceLifecycleChecker,
)
