"""JSON serialization for provenance artifacts.

The paper's use case ships pre-computed provenance from a capture site
to analysts (§1, "Offline vs. Online Compression"); serialized size is
the communication/storage cost that abstraction reduces. This module
provides a stable JSON round-trip for polynomials, trees, forests and
VVSs, plus byte-size accounting used by the experiment harness.
"""

from __future__ import annotations

import json
import sys
from fractions import Fraction

from repro.core.forest import AbstractionForest, ValidVariableSet
from repro.core.polynomial import Monomial, Polynomial, PolynomialSet
from repro.core.tree import AbstractionTree

# SerializeError now lives in repro.errors (the unified hierarchy); this
# re-export keeps the historical import site working.
from repro.errors import SerializeError

__all__ = [
    "SerializeError",
    "polynomial_to_dict",
    "polynomial_from_dict",
    "polynomial_set_to_dict",
    "polynomial_set_from_dict",
    "tree_to_dict",
    "tree_from_dict",
    "forest_to_dict",
    "forest_from_dict",
    "vvs_to_dict",
    "vvs_from_dict",
    "vvs_envelope_to_dict",
    "vvs_envelope_from_dict",
    "artifact_to_dict",
    "artifact_from_dict",
    "dumps",
    "loads",
    "load_path",
    "serialized_size",
]


def _coeff_to_json(coeff):
    """A coefficient as a JSON value (Fractions become tagged objects).

    int and float pass through unchanged (json round-trips both exactly
    — float via shortest-repr); ``Fraction`` has no JSON form, so it
    travels as ``{"fraction": "n/d"}``.
    """
    if isinstance(coeff, Fraction):
        return {"fraction": f"{coeff.numerator}/{coeff.denominator}"}
    return coeff


def _coeff_from_json(value):
    """Inverse of :func:`_coeff_to_json`."""
    if isinstance(value, dict):
        try:
            return Fraction(value["fraction"])
        except (KeyError, ValueError, ZeroDivisionError) as error:
            raise SerializeError(f"bad coefficient {value!r}: {error}") from error
    return value


def polynomial_to_dict(polynomial):
    """``{"terms": [[coeff, [[var, exp], ...]], ...]}`` (sorted, stable)."""
    return {
        "terms": [
            [_coeff_to_json(coeff), [[var, exp] for var, exp in monomial.powers]]
            for coeff, monomial in polynomial
        ]
    }


def polynomial_from_dict(data):
    """Inverse of :func:`polynomial_to_dict`."""

    return Polynomial(
        (Monomial(powers), _coeff_from_json(coeff))
        for coeff, powers in data["terms"]
    )


def polynomial_set_to_dict(polynomials):
    """``{"polynomials": [...]}`` — one entry per polynomial."""

    return {"polynomials": [polynomial_to_dict(p) for p in polynomials]}


def polynomial_set_from_dict(data):
    """Inverse of :func:`polynomial_set_to_dict`."""

    return PolynomialSet(polynomial_from_dict(d) for d in data["polynomials"])


def tree_to_dict(tree):
    """Nested ``{"label": ..., "children": [...]}`` (leaves omit children)."""

    def build(node):
        if node.is_leaf:
            return {"label": node.label}
        return {"label": node.label, "children": [build(c) for c in node.children]}

    return build(tree.root)


def tree_from_dict(data):
    """Inverse of :func:`tree_to_dict`."""

    def build(spec):
        if "children" not in spec:
            return spec["label"]
        return (spec["label"], [build(c) for c in spec["children"]])

    return AbstractionTree.from_nested(build(data))


def forest_to_dict(forest):
    """``{"trees": [...]}`` — one nested dict per tree."""

    return {"trees": [tree_to_dict(t) for t in forest]}


def forest_from_dict(data):
    """Inverse of :func:`forest_to_dict`."""

    return AbstractionForest([tree_from_dict(t) for t in data["trees"]])


def vvs_to_dict(vvs):
    """``{"labels": [...]}`` — the cut's chosen labels, sorted."""

    return {"labels": sorted(vvs.labels)}


def vvs_from_dict(data, forest):
    """Rebuild (and re-validate) a VVS against ``forest``."""

    return ValidVariableSet(forest, frozenset(data["labels"]))


def vvs_envelope_to_dict(vvs):
    """Self-contained VVS payload: the labels *and* their forest.

    Unlike :func:`vvs_to_dict` (labels only, for callers that already
    hold the forest), this form round-trips through :func:`dumps` /
    :func:`loads` on its own.
    """
    return {
        "labels": sorted(vvs.labels),
        "forest": forest_to_dict(vvs.forest),
    }


def vvs_envelope_from_dict(data):
    """Inverse of :func:`vvs_envelope_to_dict`."""
    return vvs_from_dict(data, forest_from_dict(data["forest"]))


def artifact_to_dict(artifact):
    """A :class:`~repro.api.artifact.CompressedProvenance` as one payload.

    Everything the analyst side needs: the abstracted polynomials, the
    forest, the chosen cut, the loss accounting and the build
    parameters (algorithm name + bound).
    """
    return {
        "algorithm": artifact.algorithm,
        "bound": artifact.bound,
        "forest": forest_to_dict(artifact.forest),
        "vvs": sorted(artifact.vvs.labels),
        "polynomials": polynomial_set_to_dict(artifact.polynomials),
        "stats": {
            "original_size": artifact.original_size,
            "original_granularity": artifact.original_granularity,
            "monomial_loss": artifact.monomial_loss,
            "variable_loss": artifact.variable_loss,
            "revision": artifact.revision,
        },
    }


def artifact_from_dict(data):
    """Inverse of :func:`artifact_to_dict`."""
    from repro.api.artifact import CompressedProvenance

    forest = forest_from_dict(data["forest"])
    stats = data["stats"]
    return CompressedProvenance(
        polynomial_set_from_dict(data["polynomials"]),
        forest,
        vvs_from_dict({"labels": data["vvs"]}, forest),
        algorithm=data["algorithm"],
        bound=data["bound"],
        original_size=stats["original_size"],
        original_granularity=stats["original_granularity"],
        monomial_loss=stats["monomial_loss"],
        variable_loss=stats["variable_loss"],
        revision=stats.get("revision", 0),
    )


_TO_DICT = {
    Polynomial: ("polynomial", polynomial_to_dict),
    PolynomialSet: ("polynomial_set", polynomial_set_to_dict),
    AbstractionTree: ("tree", tree_to_dict),
    AbstractionForest: ("forest", forest_to_dict),
    ValidVariableSet: ("vvs", vvs_envelope_to_dict),
}

_FROM_DICT = {
    "polynomial": polynomial_from_dict,
    "polynomial_set": polynomial_set_from_dict,
    "tree": tree_from_dict,
    "forest": forest_from_dict,
    "vvs": vvs_envelope_from_dict,
    "compressed_provenance": artifact_from_dict,
}


def _artifact_class():
    """The CompressedProvenance class, if its module is loaded.

    :mod:`repro.api.artifact` imports this module, so the import cannot
    be top-level; and if the module was never imported, no instance can
    exist for :func:`dumps` to see — ``sys.modules`` is sufficient.
    """
    module = sys.modules.get("repro.api.artifact")
    return getattr(module, "CompressedProvenance", None)


def dumps(obj):
    """Serialize a provenance artifact to a tagged JSON string.

    >>> loads(dumps(Polynomial.variable("x"))) == Polynomial.variable("x")
    True
    """
    for cls, (tag, encode) in _TO_DICT.items():
        if isinstance(obj, cls):
            return json.dumps({"kind": tag, "data": encode(obj)}, sort_keys=True)
    artifact_cls = _artifact_class()
    if artifact_cls is not None and isinstance(obj, artifact_cls):
        return json.dumps(
            {"kind": "compressed_provenance", "data": artifact_to_dict(obj)},
            sort_keys=True,
        )
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def loads(text):
    """Inverse of :func:`dumps`."""
    try:
        envelope = json.loads(text)
    except ValueError as error:
        raise SerializeError(f"not a serialized payload: {error}") from error
    kind = envelope.get("kind") if isinstance(envelope, dict) else None
    if kind not in _FROM_DICT:
        raise SerializeError(f"unknown payload kind {kind!r}")
    return _FROM_DICT[kind](envelope["data"])


def load_path(path, mmap=True):
    """Load a serialized payload from a file, auto-detecting the envelope.

    Files starting with the :data:`repro.core.binfmt.MAGIC` bytes are
    binary artifact containers (read zero-copy, via ``mmap`` unless
    disabled); anything else is parsed as a tagged JSON envelope. This
    is what the CLI's ``ask``/``sweep``/``inspect`` loaders call, so
    both formats are accepted everywhere a path is.
    """
    from repro.core import binfmt

    with open(path, "rb") as handle:
        head = handle.read(len(binfmt.MAGIC))
    if head == binfmt.MAGIC:
        return binfmt.read_artifact(path, mmap=mmap)
    try:
        with open(path, encoding="utf-8") as handle:
            return loads(handle.read())
    except UnicodeDecodeError as error:
        # A torn/corrupted binary container whose magic no longer
        # matches must fail as a serialization error, not a codec one.
        raise SerializeError(
            f"neither a binary container nor a JSON payload: {error}"
        ) from error


def serialized_size(obj):
    """Size in bytes of the JSON form — the paper's storage/shipping cost."""
    return len(dumps(obj).encode("utf-8"))
