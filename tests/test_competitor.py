"""Tests for the Ainy-et-al. pairwise-merge competitor."""

import pytest

from repro.algorithms.competitor import TreeOracle, summarize
from repro.core.forest import AbstractionForest
from repro.core.parser import parse, parse_set
from repro.core.tree import AbstractionTree


@pytest.fixture
def forest():
    tree = AbstractionTree.from_nested(
        ("r", [("g1", ["a", "b"]), ("g2", ["c", "d"])])
    )
    return AbstractionForest([tree])


class TestOracle:
    def test_merge_within_group(self, forest):
        oracle = TreeOracle(forest)
        outcome = oracle.merge((("a", 1), ("x", 1)), (("b", 1), ("x", 1)))
        assert outcome is not None
        merged, loss = outcome
        assert merged == (("g1", 1), ("x", 1))
        assert loss == 0  # g1 drags in no extra leaves beyond a, b

    def test_merge_across_groups_costs_more(self, forest):
        oracle = TreeOracle(forest)
        merged, loss = oracle.merge((("a", 1),), (("c", 1),))
        assert merged == (("r", 1),)
        assert loss == 2  # r has 4 leaves; a∪c is 2; 4 - 2 = 2 extra

    def test_merge_requires_equal_residual(self, forest):
        oracle = TreeOracle(forest)
        assert oracle.merge((("a", 1), ("x", 1)), (("b", 1), ("y", 1))) is None

    def test_merge_requires_equal_exponents(self, forest):
        oracle = TreeOracle(forest)
        assert oracle.merge((("a", 2),), (("b", 1),)) is None

    def test_merge_requires_same_tree_presence(self, forest):
        oracle = TreeOracle(forest)
        assert oracle.merge((("a", 1),), (("x", 1),)) is None

    def test_identical_keys_not_mergeable(self, forest):
        oracle = TreeOracle(forest)
        assert oracle.merge((("a", 1),), (("a", 1),)) is None

    def test_calls_are_counted(self, forest):
        oracle = TreeOracle(forest)
        oracle.merge((("a", 1),), (("b", 1),))
        oracle.merge((("a", 1),), (("c", 1),))
        assert oracle.calls == 2


class TestSummarize:
    def test_reaches_bound(self, forest):
        polys = parse_set(["2*a*x + 3*b*x + 4*c*y + 5*d*y"])
        result = summarize(polys, forest, bound=2)
        assert result.abstracted_size == 2
        assert result.converged

    def test_coefficients_sum_on_merge(self, forest):
        polys = parse_set(["2*a*x + 3*b*x"])
        result = summarize(polys, forest, bound=1)
        assert result.polynomials[0] == parse("5*g1*x")

    def test_prefers_cheapest_merge(self, forest):
        polys = parse_set(["2*a*x + 3*b*x + 4*c*x"])
        result = summarize(polys, forest, bound=2)
        # Merging a+b (loss 0) must beat merging with c (needs root).
        assert "g1" in result.polynomials.variables

    def test_stops_when_no_merge_possible(self, forest):
        polys = parse_set(["a*x + b*y"])  # residuals differ: no merge
        result = summarize(polys, forest, bound=1)
        assert not result.converged
        assert result.abstracted_size == 2

    def test_does_not_merge_across_polynomials(self, forest):
        polys = parse_set(["a*x", "b*x"])
        result = summarize(polys, forest, bound=1)
        assert not result.converged
        assert len(result.polynomials) == 2

    def test_loose_bound_no_merges(self, forest):
        polys = parse_set(["a*x + b*y"])
        result = summarize(polys, forest, bound=5)
        assert result.merges == 0
        assert result.polynomials == polys

    def test_max_iterations_cap(self, forest):
        polys = parse_set(["2*a*x + 3*b*x + 4*c*x + 5*d*x"])
        result = summarize(polys, forest, bound=1, max_iterations=1)
        assert result.merges == 1

    def test_invalid_bound(self, forest):
        with pytest.raises(ValueError):
            summarize(parse_set(["a"]), forest, bound=0)

    def test_converges_on_example13(self, ex13_polys, figure2_tree):
        """The competitor meets the bound on the Example 13 instance.

        Its merges are per-monomial rather than a global cut, so its
        granularity may exceed the optimal VVS's (no global consistency
        is enforced) — but never the original granularity.
        """
        from repro.algorithms.optimal import optimal_vvs

        bound = 9
        optimal = optimal_vvs(ex13_polys, figure2_tree, bound)
        competitor = summarize(
            ex13_polys, AbstractionForest([figure2_tree]), bound
        )
        assert competitor.abstracted_size <= bound
        assert (
            optimal.abstracted_granularity
            <= competitor.abstracted_granularity
            <= ex13_polys.num_variables
        )

    def test_oracle_calls_grow_as_bound_shrinks(self, ex13_polys, figure2_tree):
        forest = AbstractionForest([figure2_tree])
        loose = summarize(ex13_polys, forest, bound=12)
        tight = summarize(ex13_polys, forest, bound=6)
        assert tight.oracle_calls >= loose.oracle_calls
