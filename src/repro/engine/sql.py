"""A small SQL front-end for the provenance engine.

Supports exactly the query class the paper works with (SPJ + one
commutative SUM aggregate, §2.1) so the running example can be written
as it appears in §1::

    SELECT Zip, SUM(Calls.Dur * Plans.Price)
    FROM Calls, Cust, Plans
    WHERE Cust.Plan = Plans.Plan
      AND Cust.ID = Calls.CID
      AND Calls.Mo = Plans.Mo
    GROUP BY Cust.Zip

Grammar (case-insensitive keywords)::

    query   := SELECT items FROM tables [WHERE conj] [GROUP BY cols]
    items   := item (',' item)*        item := column | SUM '(' expr ')'
    tables  := NAME (',' NAME)*
    conj    := pred (AND pred)*
    pred    := operand op operand      op ∈ {=, !=, <>, <, <=, >, >=}
    expr    := arithmetic over columns, numbers, + - * / and parentheses
    column  := NAME | NAME '.' NAME

Planning is deliberately simple: table-equality predicates drive hash
joins in FROM order; remaining predicates become selections; a SUM item
becomes a provenance aggregate (``params`` may be supplied at execution
time to place scenario variables, exactly like the DSL).
"""

from __future__ import annotations

import re

from repro.engine.aggregates import aggregate_sum
from repro.engine.operators import join, project, rename, select

__all__ = ["execute", "parse_sql", "SqlError", "SqlQuery"]


class SqlError(ValueError):
    """Raised on SQL syntax or planning errors."""


_TOKEN = re.compile(
    r"\s*(?:(?P<number>\d+\.\d+|\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<string>'[^']*')"
    r"|(?P<op><=|>=|!=|<>|[=<>*/+\-(),.])"
    r")"
)

_KEYWORDS = {"select", "from", "where", "group", "by", "and", "sum", "as"}


def _tokenize(text):
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise SqlError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        if match.group("number") is not None:
            literal = match.group("number")
            tokens.append(
                ("number", float(literal) if "." in literal else int(literal))
            )
        elif match.group("name") is not None:
            name = match.group("name")
            if name.lower() in _KEYWORDS:
                tokens.append(("keyword", name.lower()))
            else:
                tokens.append(("name", name))
        elif match.group("string") is not None:
            tokens.append(("string", match.group("string")[1:-1]))
        else:
            tokens.append(("op", match.group("op")))
    tokens.append(("end", None))
    return tokens


class _ColumnRef:
    """A (possibly table-qualified) column reference."""

    __slots__ = ("table", "column")

    def __init__(self, table, column):
        self.table = table
        self.column = column

    def __repr__(self):
        return f"{self.table}.{self.column}" if self.table else self.column


class _Predicate:
    __slots__ = ("left", "op", "right")

    def __init__(self, left, op, right):
        self.left = left
        self.op = op
        self.right = right


# Expression nodes for the SUM argument: ("col", ref) | ("lit", value)
# | (operator, left, right).


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    def peek(self):
        return self.tokens[self.index]

    def advance(self):
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind, value=None):
        actual_kind, actual_value = self.advance()
        if actual_kind != kind or (value is not None and actual_value != value):
            raise SqlError(f"expected {value or kind}, got {actual_value!r}")
        return actual_value

    def at_keyword(self, word):
        kind, value = self.peek()
        return kind == "keyword" and value == word

    def at_op(self, op):
        kind, value = self.peek()
        return kind == "op" and value == op

    # ------------------------------------------------------------- grammar

    def parse_query(self):
        self.expect("keyword", "select")
        items = [self.parse_item()]
        while self.at_op(","):
            self.advance()
            items.append(self.parse_item())
        self.expect("keyword", "from")
        tables = [self.expect("name")]
        while self.at_op(","):
            self.advance()
            tables.append(self.expect("name"))
        predicates = []
        if self.at_keyword("where"):
            self.advance()
            predicates.append(self.parse_predicate())
            while self.at_keyword("and"):
                self.advance()
                predicates.append(self.parse_predicate())
        group_by = []
        if self.at_keyword("group"):
            self.advance()
            self.expect("keyword", "by")
            group_by.append(self.parse_column())
            while self.at_op(","):
                self.advance()
                group_by.append(self.parse_column())
        kind, value = self.peek()
        if kind != "end":
            raise SqlError(f"trailing input starting at {value!r}")
        return SqlQuery(items, tables, predicates, group_by)

    def parse_item(self):
        if self.at_keyword("sum"):
            self.advance()
            self.expect("op", "(")
            expression = self.parse_expression()
            self.expect("op", ")")
            return ("sum", expression)
        return ("column", self.parse_column())

    def parse_column(self):
        first = self.expect("name")
        if self.at_op("."):
            self.advance()
            second = self.expect("name")
            return _ColumnRef(first, second)
        return _ColumnRef(None, first)

    def parse_predicate(self):
        left = self.parse_operand()
        kind, op = self.advance()
        if kind != "op" or op not in {"=", "!=", "<>", "<", "<=", ">", ">="}:
            raise SqlError(f"expected comparison operator, got {op!r}")
        right = self.parse_operand()
        return _Predicate(left, "!=" if op == "<>" else op, right)

    def parse_operand(self):
        kind, value = self.peek()
        if kind in ("number", "string"):
            self.advance()
            return ("lit", value)
        return ("col", self.parse_column())

    def parse_expression(self):
        node = self.parse_term()
        while self.at_op("+") or self.at_op("-"):
            _, op = self.advance()
            node = (op, node, self.parse_term())
        return node

    def parse_term(self):
        node = self.parse_factor()
        while self.at_op("*") or self.at_op("/"):
            _, op = self.advance()
            node = (op, node, self.parse_factor())
        return node

    def parse_factor(self):
        kind, value = self.peek()
        if kind == "number":
            self.advance()
            return ("lit", value)
        if kind == "op" and value == "(":
            self.advance()
            node = self.parse_expression()
            self.expect("op", ")")
            return node
        if kind == "op" and value == "-":
            self.advance()
            return ("-", ("lit", 0), self.parse_factor())
        return ("col", self.parse_column())


class SqlQuery:
    """A parsed query; ``plan`` executes it against named relations."""

    def __init__(self, items, tables, predicates, group_by):
        self.items = items
        self.tables = tables
        self.predicates = predicates
        self.group_by = group_by

    @property
    def has_aggregate(self):
        return any(kind == "sum" for kind, _ in self.items)


def parse_sql(text):
    """Parse SQL text into a :class:`SqlQuery` (no execution)."""
    return _Parser(_tokenize(text)).parse_query()


# ---------------------------------------------------------------------------
# Planning / execution
# ---------------------------------------------------------------------------


def _qualify(relation, table_name):
    """Prefix every column with ``Table.`` so references stay unambiguous."""
    return rename(
        relation,
        {column: f"{table_name}.{column}" for column in relation.schema.columns},
    )


class _Resolver:
    """Maps parsed column references onto qualified schema columns.

    Joins drop the right side's join columns; ``alias`` records where
    those values live on (their left counterpart), and ``live`` follows
    the alias chain into the executed plan's schema.
    """

    def __init__(self, relations):
        self.columns = {}
        self.aliases = {}
        for table_name, relation in relations.items():
            for column in relation.schema.columns:
                self.columns.setdefault(column, []).append(
                    f"{table_name}.{column}"
                )

    def resolve(self, ref):
        if ref.table is not None:
            return f"{ref.table}.{ref.column}"
        candidates = self.columns.get(ref.column, [])
        if not candidates:
            raise SqlError(f"unknown column {ref.column!r}")
        if len(candidates) > 1:
            raise SqlError(
                f"ambiguous column {ref.column!r}: {sorted(candidates)}"
            )
        return candidates[0]

    def alias(self, dropped_column, surviving_column):
        self.aliases[dropped_column] = surviving_column

    def live(self, ref, schema):
        qualified = self.resolve(ref)
        seen = set()
        while qualified not in schema and qualified in self.aliases:
            if qualified in seen:
                break
            seen.add(qualified)
            qualified = self.aliases[qualified]
        if qualified not in schema:
            raise SqlError(f"column {ref!r} is not available in the result")
        return qualified


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _operand_getter(operand, resolver, schema):
    kind, value = operand
    if kind == "lit":
        return lambda row: value
    qualified = resolver.live(value, schema)
    return lambda row: row[qualified]


def _expression_evaluator(node, resolver, schema):
    kind = node[0]
    if kind == "lit":
        value = node[1]
        return lambda row: value
    if kind == "col":
        qualified = resolver.live(node[1], schema)
        return lambda row: row[qualified]
    op, left_node, right_node = node
    left = _expression_evaluator(left_node, resolver, schema)
    right = _expression_evaluator(right_node, resolver, schema)
    if op == "+":
        return lambda row: left(row) + right(row)
    if op == "-":
        return lambda row: left(row) - right(row)
    if op == "*":
        return lambda row: left(row) * right(row)
    if op == "/":
        return lambda row: left(row) / right(row)
    raise SqlError(f"unknown operator {op!r}")


def execute(text, relations, params=None):
    """Parse and execute SQL against ``{table_name: Relation}``.

    Aggregate queries return an
    :class:`~repro.engine.aggregates.AggregateResult` (whose group
    polynomials carry the scenario variables produced by ``params``, a
    ``row_dict -> [variable, ...]`` callable over *qualified* column
    names); non-aggregate queries return a
    :class:`~repro.engine.table.Relation`.

    >>> from repro.workloads.telephony import figure1_database
    >>> cust, calls, plans = figure1_database()
    >>> result = execute(
    ...     "SELECT Zip, SUM(Calls.Dur * Plans.Price) "
    ...     "FROM Calls, Cust, Plans "
    ...     "WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID "
    ...     "AND Calls.Mo = Plans.Mo GROUP BY Cust.Zip",
    ...     {"Cust": cust, "Calls": calls, "Plans": plans})
    >>> round(result.value((10001,)), 2)
    917.25
    """
    query = parse_sql(text)
    missing = [t for t in query.tables if t not in relations]
    if missing:
        raise SqlError(f"unknown tables {missing}; have {sorted(relations)}")
    qualified = {
        name: _qualify(relations[name], name) for name in query.tables
    }
    resolver = _Resolver({name: relations[name] for name in query.tables})

    # Split predicates: column=column equalities feed joins, the rest
    # become selections once both sides' tables are in the plan.
    equalities = []
    filters = []
    for predicate in query.predicates:
        if (
            predicate.op == "="
            and predicate.left[0] == "col"
            and predicate.right[0] == "col"
        ):
            equalities.append(predicate)
        else:
            filters.append(predicate)

    def tables_of(predicate):
        out = set()
        for operand in (predicate.left, predicate.right):
            if operand[0] == "col":
                out.add(resolver.resolve(operand[1]).split(".", 1)[0])
        return out

    plan = qualified[query.tables[0]]
    joined = {query.tables[0]}
    remaining_tables = list(query.tables[1:])
    pending_equalities = list(equalities)
    while remaining_tables:
        table_name = remaining_tables.pop(0)
        on = []
        for predicate in list(pending_equalities):
            involved = tables_of(predicate)
            if table_name in involved and involved - {table_name} <= joined:
                left_ref, right_ref = predicate.left[1], predicate.right[1]
                left_q = resolver.resolve(left_ref)
                right_q = resolver.resolve(right_ref)
                if left_q.split(".", 1)[0] == table_name:
                    left_q, right_q = right_q, left_q
                on.append((left_q, right_q))
                pending_equalities.remove(predicate)
        if not on:
            raise SqlError(
                f"no join condition connects {table_name!r}; "
                "cartesian products are not supported"
            )
        right = qualified[table_name]
        plan = join(plan, right, on=on)
        joined.add(table_name)
        # The join drops the right-side join columns; their values live
        # on in the left counterpart.
        for left_q, right_q in on:
            resolver.alias(right_q, left_q)

    # Any equality not consumed (e.g. same-table comparisons) plus the
    # literal filters become selections over the joined plan.
    for predicate in pending_equalities + filters:
        left = _operand_getter(predicate.left, resolver, plan.schema)
        right = _operand_getter(predicate.right, resolver, plan.schema)
        comparator = _COMPARATORS[predicate.op]
        plan = select(
            plan,
            lambda row, l=left, r=right, c=comparator: c(l(row), r(row)),
        )

    if query.has_aggregate:
        group_columns = [
            resolver.live(ref, plan.schema) for ref in query.group_by
        ]
        sums = [item for item in query.items if item[0] == "sum"]
        if len(sums) != 1:
            raise SqlError("exactly one SUM(...) item is supported")
        evaluator = _expression_evaluator(sums[0][1], resolver, plan.schema)
        return aggregate_sum(plan, group_columns, evaluator, params=params)

    columns = [
        resolver.live(ref, plan.schema)
        for kind, ref in query.items
        if kind == "column"
    ]
    return project(plan, columns)
