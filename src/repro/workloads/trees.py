"""Abstraction-tree generators — the seven tree types of §4.2 / Table 2.

The paper evaluates against balanced trees over 128 variables with
layer fan-outs chosen so that the number of valid variable sets (cuts)
sweeps from a handful to ~1.9·10¹⁹. A *layer spec* ``(f₁, …, f_k)``
means: the root has ``f₁`` children, each of those has ``f₂`` children,
…; the bottom internal layer splits the leaf labels evenly.

``TREE_CATALOG`` reproduces the paper's Table 2 configurations exactly —
:func:`table2_rows` recomputes the table's node and VVS counts, and the
Table 2 benchmark prints it.
"""

from __future__ import annotations

from repro.core.tree import AbstractionTree, TreeNode
from repro.util.rng import derive_rng

__all__ = [
    "layered_tree",
    "TREE_CATALOG",
    "catalog_tree",
    "table2_rows",
    "random_tree",
    "binary_tree",
]

#: Layer fan-outs per paper tree type (over 128 leaves). Types 1 are
#: 2-level trees, 2–4 are 3-level (root fan-out 2/4/8), 5–7 are 4-level.
TREE_CATALOG = {
    1: [(2,), (4,), (8,), (16,), (32,), (64,)],
    2: [(2, 2), (2, 4), (2, 8), (2, 16), (2, 32)],
    3: [(4, 2), (4, 4), (4, 8), (4, 16)],
    4: [(8, 2), (8, 4), (8, 8)],
    5: [(2, 2, 2), (2, 2, 4), (2, 2, 8), (2, 2, 16)],
    6: [(2, 4, 2), (2, 4, 4), (2, 4, 8)],
    7: [(4, 2, 2), (4, 2, 4), (4, 2, 8)],
}


def layered_tree(leaf_labels, fanouts, prefix="g", root_label=None):
    """A balanced abstraction tree over ``leaf_labels``.

    ``fanouts = (f₁, …, f_k)`` gives each internal layer's fan-out; the
    product must divide the number of leaves, which are distributed
    evenly below the bottom internal layer. Internal labels are
    ``{prefix}_{layer}_{ordinal}``; the root is ``root_label`` or
    ``{prefix}_root``.

    >>> t = layered_tree([f"s{i}" for i in range(8)], (2, 2), prefix="sp")
    >>> t.size, t.count_cuts()
    (15, 26)
    """
    leaf_labels = list(leaf_labels)
    total_groups = 1
    for fanout in fanouts:
        if fanout < 1:
            raise ValueError(f"fan-out must be >= 1, got {fanout}")
        total_groups *= fanout
    if total_groups == 0 or len(leaf_labels) % total_groups != 0:
        raise ValueError(
            f"{len(leaf_labels)} leaves cannot split evenly into "
            f"{total_groups} bottom groups (fanouts {fanouts})"
        )
    per_group = len(leaf_labels) // total_groups
    if per_group == 0:
        raise ValueError("more bottom groups than leaves")

    counters = {}

    def fresh(layer):
        counters[layer] = counters.get(layer, 0)
        label = f"{prefix}_{layer}_{counters[layer]}"
        counters[layer] += 1
        return label

    def build(layer, chunk):
        if layer == len(fanouts):
            # Bottom: `chunk` is a list of leaf labels.
            return [TreeNode(label) for label in chunk]
        fanout = fanouts[layer]
        width = len(chunk) // fanout
        nodes = []
        for i in range(fanout):
            sub = chunk[i * width : (i + 1) * width]
            children = build(layer + 1, sub)
            nodes.append(TreeNode(fresh(layer + 1), children))
        return nodes

    children = build(0, leaf_labels)
    root = TreeNode(root_label or f"{prefix}_root", children)
    return AbstractionTree(root)


def catalog_tree(tree_type, config_index, leaf_labels, prefix="g"):
    """The ``config_index``-th Table 2 configuration of ``tree_type``.

    ``leaf_labels`` defaults in the paper to 128 variables; any evenly
    divisible count works.
    """
    configs = TREE_CATALOG.get(tree_type)
    if configs is None:
        raise ValueError(f"tree type must be 1..7, got {tree_type}")
    fanouts = configs[config_index]
    return layered_tree(leaf_labels, fanouts, prefix=prefix)


def table2_rows(num_leaves=128):
    """Recompute the paper's Table 2: (type, nodes, fanouts, #VVS).

    >>> rows = table2_rows()
    >>> [r for r in rows if r[0] == 1][0]
    (1, 131, (2,), 5)
    """
    rows = []
    leaves = [f"x{i}" for i in range(num_leaves)]
    for tree_type, configs in TREE_CATALOG.items():
        for fanouts in configs:
            tree = layered_tree(leaves, fanouts)
            rows.append((tree_type, tree.size, fanouts, tree.count_cuts()))
    return rows


def binary_tree(leaf_labels, prefix="g"):
    """A (possibly padded-at-the-top) full binary tree over the leaves.

    The Figure 11 experiment uses "eight (3-level) binary trees, each
    with 16 leaf[s]": ``binary_tree`` over 16 leaves yields exactly that
    shape when built as ``layered_tree(leaves, (2, 2))`` — this helper
    generalizes to any power-of-two leaf count with log₂(n)−1 internal
    layers collapsed to the paper's 3 levels via ``fanouts``.
    """
    leaf_labels = list(leaf_labels)
    count = len(leaf_labels)
    if count & (count - 1) or count < 4:
        raise ValueError(f"binary_tree wants a power-of-two >= 4, got {count}")
    # 3-level shape used in Figure 11: root -> 2 -> 2 -> leaves/4 each.
    return layered_tree(leaf_labels, (2, 2), prefix=prefix)


def random_tree(leaf_labels, seed=0, max_fanout=4, prefix="g"):
    """A random abstraction tree (used by property-based tests).

    Builds bottom-up: repeatedly groups 2..max_fanout adjacent nodes
    until one root remains. Deterministic for a given seed.
    """
    rng = derive_rng(seed, f"random_tree:{prefix}")
    nodes = [TreeNode(label) for label in leaf_labels]
    if not nodes:
        raise ValueError("random_tree needs at least one leaf")
    counter = 0
    while len(nodes) > 1:
        grouped = []
        i = 0
        while i < len(nodes):
            take = min(len(nodes) - i, rng.randint(2, max_fanout))
            if take == 1:
                grouped.append(nodes[i])
                i += 1
                continue
            children = nodes[i : i + take]
            grouped.append(TreeNode(f"{prefix}_n{counter}", children))
            counter += 1
            i += take
        nodes = grouped
    root = nodes[0]
    if root.is_leaf:
        # Single leaf: wrap so the tree still offers (trivial) structure.
        root = TreeNode(f"{prefix}_root", [root])
    return AbstractionTree(root)
