"""repro — reproduction of "Hypothetical Reasoning via Provenance Abstraction".

(Deutch, Moskovitch, Rinetzky; SIGMOD 2019 / arXiv:2007.05400)

The package provides:

* ``repro.core`` — provenance polynomials, abstraction trees/forests,
  valid variable sets, loss measures, valuations;
* ``repro.algorithms`` — the paper's optimal single-tree DP
  (Algorithm 1), the multi-tree greedy (Algorithm 2), the brute-force
  baseline and the Ainy-et-al. competitor;
* ``repro.semiring`` + ``repro.engine`` — a K-relation query engine
  that *produces* provenance polynomials from SPJU + aggregate queries;
* ``repro.scenarios`` — hypothetical ("what-if") reasoning over raw and
  abstracted provenance, plus the §6 sampling-based online pipeline;
* ``repro.workloads`` — the telephony running example, a scaled TPC-H
  generator with queries Q1/Q5/Q10, and abstraction-tree generators;
* ``repro.hardness`` — the Appendix A NP-hardness machinery, executable.

* ``repro.api`` — the session facade tying it all together:
  ``ProvenanceSession`` (query → compress) and ``CompressedProvenance``
  (the shippable artifact answering scenario suites).

Quickstart::

    from repro import ProvenanceSession, Scenario
    session = ProvenanceSession.from_strings(
        ["2*b1*m1 + 3*b1*m3 + 4*b2*m1 + 5*b2*m3"],
        forest=("SB", ["b1", "b2"]),
    )
    artifact = session.compress(bound=2)          # algorithm="auto"
    answer = artifact.ask(Scenario("cheap Jan", {"m1": 0.5}))
    print(answer.values, answer.exact)
"""

from repro.core import (
    AbstractionForest,
    AbstractionTree,
    CompatibilityError,
    LossIndex,
    Monomial,
    NonUniformError,
    ParseError,
    Polynomial,
    PolynomialSet,
    TreeNode,
    ValidVariableSet,
    Valuation,
    abstract,
    abstract_counts,
    losses,
    monomial_loss,
    parse,
    parse_set,
    variable_loss,
)

__version__ = "1.0.0"

__all__ = [
    "Monomial",
    "Polynomial",
    "PolynomialSet",
    "AbstractionTree",
    "TreeNode",
    "AbstractionForest",
    "ValidVariableSet",
    "CompatibilityError",
    "LossIndex",
    "abstract",
    "abstract_counts",
    "losses",
    "monomial_loss",
    "variable_loss",
    "Valuation",
    "NonUniformError",
    "parse",
    "parse_set",
    "ParseError",
    "optimal_vvs",
    "greedy_vvs",
    "brute_force_vvs",
    "Scenario",
    "ScenarioSuite",
    "Sweep",
    "evaluate_scenarios",
    "top_k",
    "sensitivity",
    "serialize",
    "service",
    "errors",
    "ReproError",
    "SerializeError",
    "CompressionError",
    "EvaluationError",
    "ArtifactNotFound",
    "EvalOptions",
    "ProvenanceSession",
    "CompressedProvenance",
    "Answer",
    "MutationResult",
    "__version__",
]

#: Lazily-imported public names: attribute → (module, member). Keeps
#: `import repro` light (no numpy, no engine) and cycle-free; resolved
#: on first access by ``__getattr__`` and advertised by ``__dir__``.
_LAZY_EXPORTS = {
    "optimal_vvs": ("repro.algorithms.optimal", "optimal_vvs"),
    "greedy_vvs": ("repro.algorithms.greedy", "greedy_vvs"),
    "brute_force_vvs": ("repro.algorithms.brute_force", "brute_force_vvs"),
    "Scenario": ("repro.scenarios.scenario", "Scenario"),
    "ScenarioSuite": ("repro.scenarios.scenario", "ScenarioSuite"),
    "Sweep": ("repro.scenarios.sweep", "Sweep"),
    "evaluate_scenarios": ("repro.scenarios.analysis", "evaluate_scenarios"),
    "top_k": ("repro.scenarios.analysis", "top_k"),
    "sensitivity": ("repro.scenarios.analysis", "sensitivity"),
    "serialize": ("repro.core.serialize", None),
    "service": ("repro.service", None),
    "errors": ("repro.errors", None),
    "ReproError": ("repro.errors", "ReproError"),
    "SerializeError": ("repro.errors", "SerializeError"),
    "CompressionError": ("repro.errors", "CompressionError"),
    "EvaluationError": ("repro.errors", "EvaluationError"),
    "ArtifactNotFound": ("repro.errors", "ArtifactNotFound"),
    "EvalOptions": ("repro.options", "EvalOptions"),
    "ProvenanceSession": ("repro.api.session", "ProvenanceSession"),
    "CompressedProvenance": ("repro.api.artifact", "CompressedProvenance"),
    "Answer": ("repro.api.artifact", "Answer"),
    "MutationResult": ("repro.api.mutation", "MutationResult"),
}


def __getattr__(name: str) -> object:
    try:
        module_name, member = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = module if member is None else getattr(module, member)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    # Advertise the lazy names too, so dir(repro)/tab-completion sees
    # the full public surface before anything has been resolved.
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
