"""The `repro lint` invariant checkers: framework, rules, CLI.

Each RPL rule gets a fire-on-bad / silent-on-good fixture pair written
into a tmp tree whose layout mirrors the path suffixes the rule scopes
to (``<tmp>/core/batch.py`` matches ``core/batch.py``). The tier-1
guard is `test_whole_tree_is_clean`: the real ``src``/``tests`` trees
must produce zero findings, so any future edit that breaks a contract
fails this suite even if CI's dedicated lint step is skipped.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint import Finding, run_lint, suppressed_lines
from repro.lint.base import match_path
from repro.lint.runner import all_rules

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_tree(tmp_path, files, **kwargs):
    """Write ``{relpath: source}`` under ``tmp_path`` and lint it."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    kwargs.setdefault("data_checks", False)
    return run_lint([str(tmp_path)], **kwargs)


def codes(findings):
    return [finding.code for finding in findings]


# ---------------------------------------------------------------- framework


class TestFramework:
    def test_match_path_segment_boundaries(self):
        assert match_path("src/repro/core/batch.py", "core/batch.py")
        assert match_path("core/batch.py", "core/batch.py")
        assert not match_path("src/repro/core/megabatch.py", "batch.py")
        assert not match_path("src/repro/encore/batch.py", "core/batch.py")

    def test_match_path_directory_suffix(self):
        assert match_path("src/repro/workloads/tpch/gen.py", "workloads/")
        assert not match_path("src/repro/scenarios/sweep.py", "workloads/")

    def test_finding_str_is_path_line_code(self):
        finding = Finding("src/x.py", 12, "RPL001", "no pow")
        assert str(finding) == "src/x.py:12: RPL001 no pow"

    def test_suppressed_lines_ignores_strings(self):
        text = (
            'x = "# repro-lint: ignore[RPL001]"\n'
            "y = 1  # repro-lint: ignore[RPL002, RPL003]\n"
        )
        assert suppressed_lines(text) == {2: frozenset({"RPL002", "RPL003"})}

    def test_all_rules_have_unique_wellformed_codes(self):
        rules = all_rules()
        seen = {rule.code for rule in rules}
        assert len(seen) == len(rules)
        assert all(code.startswith("RPL") for code in seen)

    def test_syntax_error_reports_rpl000(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/batch.py": "def broken(:\n"})
        assert codes(findings) == ["RPL000"]

    def test_findings_are_sorted(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/batch.py": """\
                import numpy as np
                def f(a, b):
                    x = a ** b
                    return np.power(a, 3)
                """,
        })
        assert [f.line for f in findings] == sorted(f.line for f in findings)


# -------------------------------------------------------------- RPL001-008


class TestPowGrouping:
    def test_fires_on_pow_operator(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/batch.py": "def f(base):\n    return base ** 3\n",
        })
        assert codes(findings) == ["RPL001"]
        assert findings[0].line == 2

    def test_fires_on_numpy_power_via_alias(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/columnar.py": """\
                import numpy as np
                def f(a):
                    return np.power(a, 2)
                """,
        })
        assert codes(findings) == ["RPL001"]

    def test_silent_on_constant_pow_and_other_files(self, tmp_path):
        assert lint_tree(tmp_path, {
            "core/batch.py": "LIMIT = 2 ** 63\nNEG = (-2) ** 7\n",
            "core/polynomial.py": "def f(a):\n    return a ** 2\n",
        }) == []


class TestReadOnlyViews:
    def test_fires_when_view_never_frozen(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/binfmt.py": """\
                import numpy
                def views(buf):
                    array = numpy.frombuffer(buf, dtype="u1")
                    return array
                """,
        })
        assert codes(findings) == ["RPL002"]

    def test_fires_when_view_escapes_unbound(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/binfmt.py": """\
                import numpy
                def views(buf):
                    return numpy.frombuffer(buf, dtype="u1")
                """,
        })
        assert codes(findings) == ["RPL002"]

    def test_silent_on_frozen_view(self, tmp_path):
        assert lint_tree(tmp_path, {
            "core/binfmt.py": """\
                import numpy
                def views(buf):
                    array = numpy.frombuffer(buf, dtype="u1")
                    if array.flags.writeable:
                        array.flags.writeable = False
                    return array
                """,
        }) == []


class TestSharedMemoryLifecycle:
    def test_fires_on_create_without_unlink(self, tmp_path):
        # try/finally keeps RPL011 quiet: this fixture isolates the
        # missing-unlink contract, not the leak-on-exception one.
        findings = lint_tree(tmp_path, {
            "scenarios/pool.py": """\
                from multiprocessing.shared_memory import SharedMemory
                def setup(size):
                    segment = SharedMemory(create=True, size=size)
                    try:
                        return segment
                    finally:
                        segment.close()
                """,
        })
        assert codes(findings) == ["RPL003"]

    def test_fires_on_worker_side_unlink(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "scenarios/worker.py": """\
                from multiprocessing.shared_memory import SharedMemory
                def attach(name):
                    segment = SharedMemory(name=name)
                    segment.unlink()
                    return segment
                """,
        })
        assert codes(findings) == ["RPL003"]

    def test_silent_on_paired_lifecycle(self, tmp_path):
        assert lint_tree(tmp_path, {
            "scenarios/pool.py": """\
                from multiprocessing.shared_memory import SharedMemory
                def setup(size):
                    segment = SharedMemory(create=True, size=size)
                    try:
                        yield segment
                    finally:
                        segment.close()
                        segment.unlink()
                def attach(name):
                    return SharedMemory(name=name)
                """,
        }) == []


class TestGlobalRng:
    def test_fires_on_global_random_and_legacy_numpy(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "scenarios/sampling.py": """\
                import random
                import numpy as np
                def draw():
                    return random.random() + np.random.rand()
                """,
        })
        assert codes(findings) == ["RPL004", "RPL004"]

    def test_silent_on_seeded_generators_and_excluded_paths(self, tmp_path):
        assert lint_tree(tmp_path, {
            "scenarios/sampling.py": """\
                import random
                import numpy as np
                def draw(seed):
                    rng = random.Random(seed)
                    gen = np.random.default_rng(seed)
                    return rng.random() + gen.random()
                """,
            "util/rng.py": "import random\nVALUE = random.random()\n",
            "workloads/tpch/gen.py": "import random\nV = random.random()\n",
        }) == []


class TestPickledCaches:
    def test_fires_on_cache_attribute_in_getstate(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/compiled.py": """\
                class Compiled:
                    def __getstate__(self):
                        return {"delta": self._delta, "src": self._source}
                """,
        })
        assert codes(findings) == ["RPL005"]

    def test_fires_on_wholesale_dict(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/compiled.py": """\
                class Compiled:
                    def __getstate__(self):
                        return dict(self.__dict__)
                """,
        })
        assert codes(findings) == ["RPL005"]

    def test_silent_on_explicit_state(self, tmp_path):
        assert lint_tree(tmp_path, {
            "core/compiled.py": """\
                class Compiled:
                    def __getstate__(self):
                        return {"source": self._source}
                """,
        }) == []


class TestKeywordContract:
    def test_fires_when_engine_not_accepted(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "scenarios/analysis.py": """\
                def run_all(polys, scenarios):
                    return polys.evaluate_batch(scenarios)
                """,
        }, select={"RPL006"})
        assert codes(findings) == ["RPL006"]

    def test_fires_when_engine_not_forwarded(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "scenarios/analysis.py": """\
                def run_all(polys, scenarios, engine="auto"):
                    return polys.evaluate_batch(scenarios)
                """,
        }, select={"RPL006"})
        assert codes(findings) == ["RPL006"]
        assert "forward" in findings[0].message

    def test_silent_when_threaded_or_private(self, tmp_path):
        assert lint_tree(tmp_path, {
            "scenarios/analysis.py": """\
                def run_all(polys, scenarios, engine="auto", *, options=None):
                    return polys.evaluate_batch(scenarios, engine=engine)

                def run_kwargs(polys, scenarios, **options):
                    return polys.evaluate_batch(scenarios, **options)

                def _internal(polys, scenarios):
                    return polys.evaluate_batch(scenarios)
                """,
        }) == []

    def test_options_carrier_satisfies_contract(self, tmp_path):
        # Forwarding the bundled options= knob counts as threading the
        # engine contract end to end (the EvalOptions carrier, PR 8).
        assert lint_tree(tmp_path, {
            "scenarios/analysis.py": """\
                def run_all(polys, scenarios, *, options=None):
                    return polys.evaluate_batch(scenarios, options=options)
                """,
        }, select={"RPL006"}) == []

    def test_backend_contract_on_solver_sinks(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "api/session.py": """\
                from repro.core.abstraction import abstract
                def compress(polys, vvs):
                    return abstract(polys, vvs)
                """,
        }, select={"RPL006"})
        assert codes(findings) == ["RPL006"]
        assert "backend" in findings[0].message


class TestOptionsContract:
    def test_fires_when_entry_point_lacks_options(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "api/artifact.py": """\
                def answer_all(artifact, scenarios):
                    return artifact.ask_many(scenarios)
                """,
        }, select={"RPL009"})
        assert codes(findings) == ["RPL009"]
        assert "options=" in findings[0].message

    def test_silent_with_options_param_or_kwargs_or_private(self, tmp_path):
        assert lint_tree(tmp_path, {
            "scenarios/analysis.py": """\
                def run_all(polys, scenarios, *, options=None):
                    return polys.evaluate_batch(scenarios, options=options)

                def run_kwargs(polys, scenarios, **kwargs):
                    return polys.evaluate_batch(scenarios, **kwargs)

                def _internal(polys, scenarios):
                    return polys.evaluate_batch(scenarios)
                """,
        }, select={"RPL009"}) == []

    def test_silent_outside_entry_point_paths(self, tmp_path):
        # The mechanism layer (scenarios/parallel.py) keeps its plain
        # keyword signatures — RPL009 only binds the facade/analysis.
        assert lint_tree(tmp_path, {
            "scenarios/parallel.py": """\
                def evaluate_scenarios_parallel(polys, scenarios):
                    return polys.evaluate_batch(scenarios, engine="auto")
                """,
        }, select={"RPL009"}) == []


class TestMutationContract:
    def test_fires_when_mutation_entry_lacks_options(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "api/mutation.py": """\
                def grow(artifact, polynomials):
                    return artifact.refresh(polynomials)
                """,
        }, select={"RPL010"})
        assert codes(findings) == ["RPL010"]
        assert "options=" in findings[0].message

    def test_fires_on_bare_knob_even_with_options(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "api/session.py": """\
                def grow(session, polynomials, *, backend="auto", options=None):
                    return session.extend(polynomials, options=options)
                """,
        }, select={"RPL010"})
        assert codes(findings) == ["RPL010"]
        assert "backend=" in findings[0].message

    def test_silent_with_options_or_private_or_no_sink(self, tmp_path):
        assert lint_tree(tmp_path, {
            "api/artifact.py": """\
                def grow(artifact, polynomials, *, options=None):
                    return artifact.refresh(polynomials, options=options)

                def _internal(artifact, polynomials):
                    return artifact.refresh(polynomials)

                def describe(artifact):
                    return artifact.stats()
                """,
        }, select={"RPL010"}) == []

    def test_silent_outside_mutation_paths(self, tmp_path):
        # list.extend in the core is not an artifact mutation surface.
        assert lint_tree(tmp_path, {
            "core/polynomial.py": """\
                def merge(target, polynomials):
                    return target.extend(polynomials)
                """,
        }, select={"RPL010"}) == []


class TestResourceLifecycle:
    def test_fires_on_unprotected_mkstemp(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "service/store.py": """\
                import tempfile
                def spool(root):
                    handle, name = tempfile.mkstemp(dir=root)
                    return handle, name
                """,
        }, select={"RPL011"})
        assert codes(findings) == ["RPL011"]
        assert "mkstemp" in findings[0].message

    def test_fires_on_bare_create_and_install(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "tests/test_chaos.py": """\
                from multiprocessing.shared_memory import SharedMemory
                from repro import faults
                def run(plan, size):
                    faults.install(plan)
                    segment = SharedMemory(create=True, size=size)
                    return segment
                """,
        }, select={"RPL011"})
        assert codes(findings) == ["RPL011", "RPL011"]
        assert "install" in findings[0].message
        assert "SharedMemory" in findings[1].message

    def test_silent_on_protected_acquisitions(self, tmp_path):
        assert lint_tree(tmp_path, {
            "service/store.py": """\
                import os
                import tempfile
                def spool(root, blob):
                    handle, name = tempfile.mkstemp(dir=root)
                    try:
                        os.write(handle, blob)
                    finally:
                        os.close(handle)
                        os.unlink(name)
                    return name
                """,
            "tests/test_chaos.py": """\
                from repro import faults
                def run_ctx(plan):
                    with faults.installed(plan):
                        return 1
                def run_manual(plan):
                    faults.install(plan)
                    try:
                        return 1
                    finally:
                        faults.uninstall()
                """,
        }, select={"RPL011"}) == []


class TestExactCoefficients:
    def test_fires_on_float_coercion_and_literal(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/serialize.py": """\
                def encode(value):
                    return float(value) + 0.5
                """,
        })
        assert codes(findings) == ["RPL007", "RPL007"]

    def test_silent_inside_designated_f64_branch(self, tmp_path):
        assert lint_tree(tmp_path, {
            "core/binfmt.py": """\
                def _encode_coeffs(values):
                    return [float(v) * 1.0 for v in values]
                """,
            "core/polynomial.py": "def f(v):\n    return float(v)\n",
        }) == []


class TestTypedFacade:
    def test_fires_on_unannotated_public_callable(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "api/__init__.py": """\
                def build(spec):
                    return spec
                """,
        })
        assert codes(findings) == ["RPL008", "RPL008"]  # param + return

    def test_silent_on_annotated_and_private(self, tmp_path):
        assert lint_tree(tmp_path, {
            "api/__init__.py": """\
                def build(spec: str) -> str:
                    return spec

                def _helper(spec):
                    return spec
                """,
            "core/anything.py": "def build(spec):\n    return spec\n",
        }) == []


# ------------------------------------------------------------------ RPL100


def write_bench_repo(tmp_path, *, rows, stages, results):
    """A minimal repo with a bench harness + baseline for RPL100."""
    bench = tmp_path / "benchmarks" / "bench_regression.py"
    bench.parent.mkdir(parents=True)
    row_lines = "\n".join(f"    {row!r}," for row in rows)
    bench.write_text(
        f"STAGES = {tuple(stages)!r}\n"
        f"CHECK_FIELDS = [\n{row_lines}\n]\n"
    )
    (tmp_path / "BENCH_core.json").write_text(json.dumps({
        "schema": "repro-bench-core/7",
        "runs": {"full": {"results": results}},
    }))
    source = tmp_path / "src"
    source.mkdir()
    (source / "module.py").write_text("VALUE = 1\n")
    return source


class TestBenchGateConsistency:
    ROWS = [("greedy", "speedup", "higher", 2.0, None),
            ("sweep", "speedup", "higher", 2.0, 2)]
    RESULTS = {"greedy": {"speedup": 3.0}, "sweep": {"speedup": 4.0}}

    def test_silent_when_consistent(self, tmp_path):
        source = write_bench_repo(
            tmp_path, rows=self.ROWS, stages=["greedy", "sweep"],
            results=self.RESULTS,
        )
        assert run_lint([str(source)]) == []

    def test_fires_on_silently_ungated_field(self, tmp_path):
        source = write_bench_repo(
            tmp_path, rows=self.ROWS[:1], stages=["greedy", "sweep"],
            results=self.RESULTS,
        )
        findings = run_lint([str(source)])
        assert codes(findings) == ["RPL100"]
        assert "un-gated" in findings[0].message

    def test_fires_on_stale_gate_row(self, tmp_path):
        source = write_bench_repo(
            tmp_path, rows=self.ROWS, stages=["greedy", "sweep"],
            results={"greedy": {"speedup": 3.0}, "sweep": {}},
        )
        findings = run_lint([str(source)])
        assert codes(findings) == ["RPL100"]
        assert "gates nothing" in findings[0].message

    def test_fires_on_unknown_stage(self, tmp_path):
        source = write_bench_repo(
            tmp_path,
            rows=self.ROWS + [("gone", "speedup", "higher", 1.0, None)],
            stages=["greedy", "sweep"], results=self.RESULTS,
        )
        findings = run_lint([str(source)])
        assert codes(findings) == ["RPL100"]
        assert "dead" in findings[0].message

    def test_skips_quietly_without_repo_files(self, tmp_path):
        (tmp_path / "module.py").write_text("VALUE = 1\n")
        assert run_lint([str(tmp_path)]) == []

    def test_removing_real_check_fields_row_fails(self, tmp_path):
        """Acceptance: deleting a CHECK_FIELDS row from the *real* bench
        harness makes the gate fail with a path:line:code diagnostic."""
        bench_text = (
            REPO_ROOT / "benchmarks" / "bench_regression.py"
        ).read_text()
        target = '("artifact_io", "speedup"'
        assert target in bench_text
        kept = [line for line in bench_text.splitlines()
                if target not in line]
        bench = tmp_path / "benchmarks" / "bench_regression.py"
        bench.parent.mkdir(parents=True)
        bench.write_text("\n".join(kept) + "\n")
        baseline = (REPO_ROOT / "BENCH_core.json").read_text()
        (tmp_path / "BENCH_core.json").write_text(baseline)
        source = tmp_path / "src"
        source.mkdir()
        (source / "module.py").write_text("VALUE = 1\n")

        findings = run_lint([str(source)])
        assert codes(findings) == ["RPL100"]
        assert "artifact_io" in findings[0].message
        rendered = str(findings[0])
        path, line, rest = rendered.split(":", 2)
        assert path.endswith("bench_regression.py")
        assert int(line) > 0
        assert rest.lstrip().startswith("RPL100")


# ----------------------------------------------------------------- pragmas


class TestPragmas:
    def test_pragma_suppresses_named_code(self, tmp_path):
        assert lint_tree(tmp_path, {
            "core/batch.py": (
                "def f(a):\n"
                "    return a ** 3  # repro-lint: ignore[RPL001]\n"
            ),
        }) == []

    def test_pragma_for_other_code_does_not_suppress(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/batch.py": (
                "def f(a):\n"
                "    return a ** 3  # repro-lint: ignore[RPL007]\n"
            ),
        })
        assert codes(findings) == ["RPL001"]


# ------------------------------------------------------------------ filters


class TestSelectIgnore:
    FILES = {
        "core/batch.py": "def f(a):\n    return a ** 3\n",
        "scenarios/sampling.py": (
            "import random\n"
            "def draw():\n"
            "    return random.random()\n"
        ),
    }

    def test_select_runs_only_named_codes(self, tmp_path):
        findings = lint_tree(tmp_path, self.FILES, select={"RPL001"})
        assert codes(findings) == ["RPL001"]

    def test_ignore_drops_named_codes(self, tmp_path):
        findings = lint_tree(tmp_path, self.FILES, ignore={"RPL001"})
        assert codes(findings) == ["RPL004"]


# ------------------------------------------------------------- whole tree


class TestWholeTree:
    def test_whole_tree_is_clean(self):
        """Tier-1: `python -m repro lint src tests` must exit 0."""
        findings = run_lint(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
        )
        assert findings == [], "\n".join(str(f) for f in findings)


# ------------------------------------------------------------------- CLI


class TestCli:
    BAD = {"core/batch.py": "def f(a):\n    return a ** 3\n"}

    def write(self, tmp_path, files=None):
        for relpath, source in (files or self.BAD).items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source)

    def test_exit_one_and_diagnostic_on_findings(self, tmp_path, capsys):
        self.write(tmp_path)
        status = repro_main(["lint", str(tmp_path)])
        captured = capsys.readouterr()
        assert status == 1
        assert "RPL001" in captured.out
        assert "core/batch.py:2:" in captured.out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        self.write(tmp_path, {"core/other.py": "VALUE = 1\n"})
        assert repro_main(["lint", str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_select_and_ignore(self, tmp_path, capsys):
        self.write(tmp_path)
        assert repro_main(
            ["lint", str(tmp_path), "--select", "RPL004"]
        ) == 0
        assert repro_main(
            ["lint", str(tmp_path), "--ignore", "RPL001"]
        ) == 0
        assert repro_main(
            ["lint", str(tmp_path), "--select", "rpl001"]
        ) == 1  # codes are case-insensitive on the CLI

    def test_json_format(self, tmp_path, capsys):
        self.write(tmp_path)
        status = repro_main(["lint", str(tmp_path), "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert status == 1
        assert document["tool"] == "repro-lint"
        assert document["count"] == 1
        (finding,) = document["findings"]
        assert finding["code"] == "RPL001"
        assert finding["line"] == 2

    def test_output_writes_json_artifact(self, tmp_path, capsys):
        self.write(tmp_path)
        report = tmp_path / "findings.json"
        status = repro_main(
            ["lint", str(tmp_path / "core"), "--output", str(report)]
        )
        capsys.readouterr()
        assert status == 1
        document = json.loads(report.read_text())
        assert document["count"] == 1

    def test_list_rules(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPL001", "RPL008", "RPL100"):
            assert code in out

    def test_standalone_module_entry(self, tmp_path, capsys):
        from repro.lint.cli import main as lint_main

        self.write(tmp_path)
        assert lint_main([str(tmp_path)]) == 1
        assert "RPL001" in capsys.readouterr().out


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
