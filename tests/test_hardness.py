"""Tests for the Appendix A machinery and the vertex-cover reduction."""

import pytest

from repro.algorithms.decision import exists_precise
from repro.core.abstraction import abstract, abstract_counts
from repro.core.polynomial import PolynomialSet
from repro.hardness import (
    Graph,
    build_instance,
    claim18_sizes,
    claim23_counts,
    cover_to_cut,
    cut_to_cover,
    decide_vertex_cover_via_abstraction,
    flat_abstraction,
    flat_cut,
    has_vertex_cover,
    is_vertex_cover,
    minimum_vertex_cover,
    random_graph,
    uniformly_partitioned,
)

EXAMPLE17 = {
    "num_meta": 4,
    "blowup": 3,
    "index_pairs": [(1, 2), (1, 3), (2, 3), (2, 4)],
}


class TestVertexCover:
    def test_is_vertex_cover(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert is_vertex_cover(g, {1, 2})
        assert not is_vertex_cover(g, {0, 3})

    def test_has_vertex_cover(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert has_vertex_cover(g, 2)
        assert not has_vertex_cover(g, 1)

    def test_minimum_cover(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])  # triangle needs 2
        assert len(minimum_vertex_cover(g)) == 2

    def test_k_at_least_n_is_trivial(self):
        g = Graph(2, [(0, 1)])
        assert has_vertex_cover(g, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 5)])

    def test_random_graph_always_has_an_edge(self):
        g = random_graph(4, edge_probability=0.0, seed=1)
        assert g.edges == [(0, 1)]


class TestUniformlyPartitioned:
    def test_example17_shape(self):
        p = uniformly_partitioned(**EXAMPLE17)
        assert p.num_monomials == 36
        assert p.num_variables == 12
        # Every monomial is a product of exactly two variables.
        for monomial in p.monomials:
            assert monomial.degree == 2

    def test_claim18_matches_materialization(self):
        # Claim 18 presumes every metavariable occurs in some pair.
        for num_meta, pairs in [
            (2, [(1, 2)]),
            (4, [(1, 2), (3, 4)]),
            (4, EXAMPLE17["index_pairs"]),
        ]:
            p = uniformly_partitioned(num_meta, 2, pairs)
            assert claim18_sizes(num_meta, 2, pairs) == (
                p.num_monomials,
                p.num_variables,
            )

    def test_invalid_pair_order_rejected(self):
        with pytest.raises(ValueError):
            uniformly_partitioned(3, 2, [(2, 1)])

    def test_out_of_range_pair_rejected(self):
        with pytest.raises(ValueError):
            uniformly_partitioned(3, 2, [(1, 9)])


class TestFlatAbstraction:
    def test_structure(self):
        forest = flat_abstraction(4, 3)
        assert len(forest) == 4
        for tree in forest:
            assert tree.height == 1
            assert len(tree.leaves) == 3

    def test_compatible_with_polynomial(self):
        p = uniformly_partitioned(**EXAMPLE17)
        forest = flat_abstraction(4, 3)
        forest.check_compatible(PolynomialSet([p]))

    def test_example24_counts(self):
        """Example 24: Y = {x(1), x(3)} leaves 16 monomials, 8 variables."""
        p = PolynomialSet([uniformly_partitioned(**EXAMPLE17)])
        forest = flat_abstraction(4, 3)
        vvs = flat_cut(forest, {1, 3}, 4, 3)
        size, granularity = abstract_counts(p, vvs.mapping())
        assert (size, granularity) == (16, 8)
        assert claim23_counts(4, 3, EXAMPLE17["index_pairs"], {1, 3}) == (16, 8)

    def test_claim23_matches_materialization_all_cuts(self):
        pairs = [(1, 2), (2, 3)]
        p = PolynomialSet([uniformly_partitioned(3, 2, pairs)])
        forest = flat_abstraction(3, 2)
        for chosen in [set(), {1}, {2}, {3}, {1, 2}, {1, 3}, {2, 3}, {1, 2, 3}]:
            vvs = flat_cut(forest, chosen, 3, 2)
            assert abstract_counts(p, vvs.mapping()) == claim23_counts(
                3, 2, pairs, chosen
            )

    def test_claim25_positive_size(self):
        """Claim 25: abstraction never annihilates monomials (coefficients
        are positive, they only merge)."""
        p = PolynomialSet([uniformly_partitioned(3, 2, [(1, 2), (2, 3)])])
        forest = flat_abstraction(3, 2)
        for vvs in forest.iter_cuts():
            assert abstract(p, vvs).num_monomials > 0


class TestReduction:
    def test_cover_to_cut_roundtrip(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        instance = build_instance(g, blowup=3)
        vvs = cover_to_cut(instance, {1, 2})
        assert cut_to_cover(vvs) == {1, 2}

    def test_cover_induces_small_abstraction(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        instance = build_instance(g, blowup=3)
        p = PolynomialSet([instance.polynomial()])
        cover_cut = cover_to_cut(instance, {1, 2})
        size, granularity = abstract_counts(p, cover_cut.mapping())
        assert size <= instance.size_bound()
        assert granularity == instance.granularity_for_cover_size(2)

    def test_non_cover_exceeds_size_bound(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        instance = build_instance(g, blowup=3)
        p = PolynomialSet([instance.polynomial()])
        bad_cut = cover_to_cut(instance, {0, 3})  # leaves (1,2) uncovered
        size, _ = abstract_counts(p, bad_cut.mapping())
        assert size > instance.size_bound()

    def test_default_blowup_is_cubic(self):
        g = Graph(3, [(0, 1)])
        assert build_instance(g).blowup == 27

    def test_too_small_blowup_rejected(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        with pytest.raises(ValueError, match="too small"):
            decide_vertex_cover_via_abstraction(g, 2, blowup=2)

    def test_degenerate_graphs_rejected(self):
        with pytest.raises(ValueError):
            build_instance(Graph(1, []), blowup=3)
        with pytest.raises(ValueError):
            build_instance(Graph(3, []), blowup=3)

    @pytest.mark.parametrize("seed", range(10))
    def test_reduction_agrees_with_brute_force(self, seed):
        """Lemma 29 end-to-end on random graphs, every k."""
        g = random_graph(5, edge_probability=0.5, seed=seed)
        blowup = max(2, len(g.edges))
        for k in range(1, g.num_vertices):
            assert decide_vertex_cover_via_abstraction(
                g, k, blowup=blowup
            ) == has_vertex_cover(g, k)

    def test_reduction_through_generic_decision_problem(self):
        """The instance also goes through the generic Definition 10 solver."""
        g = Graph(3, [(0, 1), (1, 2)])
        instance = build_instance(g, blowup=2)
        p = PolynomialSet([instance.polynomial()])
        forest = instance.forest()
        # Cover {1} (the middle vertex): K = (3-1)*2 + 1 = 5.
        cover_cut = cover_to_cut(instance, {1})
        size, granularity = abstract_counts(p, cover_cut.mapping())
        assert exists_precise(p, forest, size, granularity)
