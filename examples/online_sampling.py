"""Online compression via sampling — the §6 future-work pipeline, working.

Chooses an abstraction on a small SAMPLE of the provenance, then applies
it to the full provenance — never running the selection algorithm on the
full input. Also demonstrates full-size extrapolation from growing
samples (the paper's reference [14] heuristic).

Run:  python examples/online_sampling.py
"""

from repro.algorithms import greedy_vvs
from repro.core import AbstractionForest
from repro.scenarios import extrapolate_size, online_compress, sample_polynomials
from repro.util import Timer, format_table
from repro.workloads.telephony import TelephonyBenchmark


def main():
    bench = TelephonyBenchmark(
        customers=600, num_plans=32, months=12, zip_pool=80, seed=3
    )
    provenance = bench.provenance()
    forest = AbstractionForest(
        [bench.plans_abstraction_tree((8,)), bench.months_abstraction_tree()]
    )
    bound = provenance.num_monomials // 2
    print(f"full provenance: {len(provenance)} polynomials, "
          f"{provenance.num_monomials} monomials; bound {bound}")

    # Offline (the paper's main setting): select on the full input.
    with Timer() as offline_timer:
        offline = greedy_vvs(provenance, forest, bound)

    # Online (§6): select on a sample, apply to the full input.
    rows = []
    for fraction in [0.05, 0.1, 0.25, 0.5]:
        with Timer() as online_timer:
            online = online_compress(
                provenance, forest, bound, fraction=fraction, seed=1
            )
        rows.append([
            f"{fraction:.0%}",
            online.sample_bound,
            online.achieved_size,
            "yes" if online.within_bound else "no",
            online.achieved_granularity,
            f"{online_timer.elapsed * 1e3:.1f}",
        ])
    rows.append([
        "100% (offline)",
        bound,
        offline.abstracted_size,
        "yes" if offline.abstracted_size <= bound else "no",
        offline.abstracted_granularity,
        f"{offline_timer.elapsed * 1e3:.1f}",
    ])
    print()
    print(format_table(
        ["sample", "adapted bound", "achieved size", "within bound",
         "granularity", "ms"],
        rows,
        title="Sample-then-abstract (greedy selection on the sample)",
    ))

    # Provenance-size extrapolation from increasing samples.
    fractions = [0.1, 0.2, 0.3, 0.4]
    sizes = [
        sample_polynomials(provenance, fraction, seed=2).num_monomials
        for fraction in fractions
    ]
    estimate = extrapolate_size(fractions, sizes)
    print(f"\nextrapolated full size from samples {fractions}: "
          f"{estimate:.0f} (actual {provenance.num_monomials})")


if __name__ == "__main__":
    main()
