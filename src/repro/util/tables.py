"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows/series the paper reports;
this module renders them as aligned ASCII tables so ``pytest -s`` output
is directly readable (and diffable across runs).
"""

__all__ = ["format_table"]


def _cell(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers, rows, title=None):
    """Render ``rows`` (iterable of iterables) under ``headers``.

    >>> print(format_table(["a", "b"], [[1, 2.5], ["x", 3]]))
    a | b
    --+----
    1 | 2.5
    x | 3
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)).rstrip())
    return "\n".join(lines)
