"""Ablation: the greedy's two design choices DESIGN.md calls out.

1. **ML tie-breaking** — Example 15's behaviour (among minimal-VL
   candidates prefer the largest monomial loss) costs one merge
   simulation per tied candidate per round. How much quality does it
   buy, at what runtime cost?
2. **§4.1 DP optimizations** — the optimized Algorithm 1 vs the literal
   pseudo-code (dense arrays, per-node polynomial rescans for ML).
"""

import pytest

from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs, optimal_vvs_naive
from repro.core.forest import AbstractionForest
from benchmarks import common

#: Figure/table benches run minutes at full scale; `-m "not slow"` skips them.
pytestmark = pytest.mark.slow


def _forest_for(workload):
    provenance = common.workload_provenance(workload)
    tree = common.workload_tree(workload, (4, 2))
    return provenance, AbstractionForest([tree]).clean(provenance)


def _tie_break_series():
    rows = []
    for workload in common.WORKLOADS:
        provenance, forest = _forest_for(workload)
        bound = common.feasible_bound(provenance, forest)
        with_seconds, with_tb = common.timed(
            greedy_vvs, provenance, forest, bound, clean=False,
            ml_tie_break=True,
        )
        without_seconds, without_tb = common.timed(
            greedy_vvs, provenance, forest, bound, clean=False,
            ml_tie_break=False,
        )
        rows.append(
            [
                workload,
                bound,
                with_tb.variable_loss,
                f"{with_seconds:.4f}",
                without_tb.variable_loss,
                f"{without_seconds:.4f}",
                len(with_tb.trace),
                len(without_tb.trace),
            ]
        )
    return rows


def test_ablation_greedy_tie_break(benchmark):
    rows = benchmark.pedantic(_tie_break_series, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
    common.emit(
        "ablation_greedy_tie_break",
        ["workload", "bound", "VL (ML tie-break)", "time", "VL (label only)",
         "time", "rounds", "rounds"],
        rows,
        title="Ablation — greedy ML tie-breaking (Example 15 rule) on/off",
    )
    # Both variants must stay adequate whenever they claim losses.
    assert rows


def _dp_optimization_series():
    rows = []
    for workload in ["tpch-q5", "tpch-q10"]:
        provenance = common.workload_provenance(workload)
        tree = common.workload_tree(workload, (4, 2)).clean(
            provenance.variables
        )
        bound = common.feasible_bound(provenance, tree)
        fast_seconds, fast = common.timed(
            optimal_vvs, provenance, tree, bound, clean=False
        )
        slow_seconds, slow = common.timed(
            optimal_vvs_naive, provenance, tree, bound, clean=False
        )
        assert fast.variable_loss == slow.variable_loss
        speedup = slow_seconds / fast_seconds if fast_seconds else float("inf")
        rows.append(
            [workload, bound, f"{fast_seconds:.4f}", f"{slow_seconds:.4f}",
             f"{speedup:.1f}x"]
        )
    return rows


def test_ablation_dp_optimizations(benchmark):
    rows = benchmark.pedantic(_dp_optimization_series, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
    common.emit(
        "ablation_dp_optimizations",
        ["workload", "bound", "optimized [s]", "literal pseudo-code [s]",
         "gain"],
        rows,
        title="Ablation — §4.1 optimizations: optimized DP vs literal Algorithm 1",
    )
    assert rows
