"""Setuptools shim.

All project metadata lives in ``pyproject.toml`` (PEP 621). This file
exists only so ``pip install -e .`` works in offline environments whose
setuptools lacks PEP 660 support (editable installs then fall back to
``setup.py develop``).
"""

from setuptools import setup

setup()
