"""Parallel evaluation equivalence, analytics, and cross-process sweeps.

The contract under test: sharding evaluation across a process pool is
*bit-identical* to the serial pass (the issue's property), sweeps are
reproducible across processes, and the streaming analytics (top_k /
sensitivity) agree with full-matrix computations.
"""

import concurrent.futures
import os
import pickle
from fractions import Fraction

import numpy
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.parser import parse_set
from repro.core.valuation import Valuation
from repro.scenarios import (
    Scenario,
    Sweep,
    evaluate_scenarios,
    sensitivity,
    top_k,
)
from repro.scenarios.parallel import (
    evaluate_scenarios_parallel,
    iter_value_blocks,
)
from repro.workloads.random_polys import random_polynomials

VARIABLES = ["a", "b", "c", "d"]


@pytest.fixture(scope="module")
def polys():
    return parse_set(
        ["2*a*x + 3*b*x + 4*c*y + 5*d*y", "6*a*z + 7*b*z", "1 + c*d"]
    )


def _workload():
    pool = [f"v{i}" for i in range(12)]
    return random_polynomials(8, 20, [pool], seed=5, extra_variables=4)


class TestParallelEquivalence:
    def test_sweep_parallel_bit_identical(self, polys):
        sweep = Sweep.random(VARIABLES + ["x", "y"], 600, seed=11, changes=3)
        serial = evaluate_scenarios(polys, sweep)
        parallel = evaluate_scenarios_parallel(
            polys, sweep, workers=2, min_parallel=0, chunk_size=128
        )
        assert serial.shape == (600, 3)
        assert numpy.array_equal(serial, parallel)

    def test_iterable_parallel_bit_identical(self, polys):
        scenarios = [
            Scenario(f"s{i}", {"a": 0.5 + i / 100, "x": 1.0 + i / 50})
            for i in range(300)
        ]
        serial = evaluate_scenarios(polys, scenarios)
        parallel = evaluate_scenarios_parallel(
            polys, scenarios, workers=2, min_parallel=0, chunk_size=64
        )
        assert numpy.array_equal(serial, parallel)

    def test_float_valuations_bit_identical(self, polys):
        valuations = [
            Valuation({"a": 0.1 * i, "c": 1.0 / (i + 1)}) for i in range(80)
        ]
        serial = evaluate_scenarios(polys, valuations)
        parallel = evaluate_scenarios_parallel(
            polys, valuations, workers=2, min_parallel=0, chunk_size=17
        )
        assert numpy.array_equal(serial, parallel)

    def test_fraction_valuations_bit_identical(self, polys):
        """Exact Fraction assignments degrade to float the same way on
        both sides of the pool boundary (the issue's property test)."""
        valuations = [
            Valuation({"a": Fraction(1, 3), "b": Fraction(i, 7)},
                      default=Fraction(1, 1))
            for i in range(60)
        ]
        serial = evaluate_scenarios(polys, valuations)
        parallel = evaluate_scenarios_parallel(
            polys, valuations, workers=2, min_parallel=0, chunk_size=13
        )
        assert numpy.array_equal(serial, parallel)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(
        st.dictionaries(
            st.sampled_from(VARIABLES + ["x", "y", "z"]),
            st.one_of(
                st.floats(0.0, 4.0, allow_nan=False),
                st.fractions(min_value=0, max_value=4),
            ),
            max_size=4,
        ),
        min_size=1, max_size=24,
    ))
    def test_property_chunked_serial_identical(self, assignments):
        """Chunked evaluation (the shard shape) equals one-shot batch for
        arbitrary float/Fraction assignments."""
        polys = parse_set(
            ["2*a*x + 3*b*x + 4*c*y + 5*d*y", "6*a*z + 7*b*z", "1 + c*d"]
        )
        one_shot = polys.evaluate_batch(assignments)
        chunked = evaluate_scenarios_parallel(
            polys, assignments, workers=0, chunk_size=5
        )
        assert numpy.array_equal(one_shot, chunked)

    def test_workload_scale_parallel_identical(self):
        polys = _workload()
        sweep = Sweep.random(
            sorted(polys.variables), 700, seed=23, changes=6
        )
        serial = evaluate_scenarios(polys, sweep)
        parallel = evaluate_scenarios(polys, sweep, workers=2)
        forced = evaluate_scenarios_parallel(
            polys, sweep, workers=2, min_parallel=0
        )
        assert numpy.array_equal(serial, parallel)
        assert numpy.array_equal(serial, forced)

    def test_empty_and_edge_inputs(self, polys):
        assert evaluate_scenarios_parallel(
            polys, [], workers=2
        ).shape == (0, 3)
        assert evaluate_scenarios_parallel(
            polys, Sweep.random(["a"], 0, seed=1), workers=2
        ).shape == (0, 3)
        with pytest.raises(ValueError):
            evaluate_scenarios_parallel(polys, [], workers=-1)
        with pytest.raises(ValueError):
            evaluate_scenarios_parallel(polys, [], workers=2, chunk_size=0)

    def test_serial_threshold_respected(self, polys):
        """Small suites never pay for a pool (same answers either way)."""
        scenarios = [Scenario("s", {"a": 0.5})] * 10
        assert numpy.array_equal(
            evaluate_scenarios(polys, scenarios, workers=4),
            evaluate_scenarios(polys, scenarios),
        )


def _remote_changes(spec):
    sweep, start, stop = spec
    return [s.changes for s in sweep.materialize(start, stop)]


class TestCrossProcessReproducibility:
    def test_random_sweep_identical_in_worker_process(self):
        """Sweep.random(seed=...) regenerates bit-identical scenarios in
        a different process (the issue's property test)."""
        sweep = Sweep.random(["x", "y", "z"], 40, seed=13, changes=2)
        local = [s.changes for s in sweep]
        with concurrent.futures.ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_remote_changes, (sweep, 0, 40)).result()
            shard = pool.submit(_remote_changes, (sweep, 10, 30)).result()
        assert remote == local
        assert shard == local[10:30]

    def test_compiled_set_pickles_to_identical_answers(self):
        polys = _workload()
        compiled = polys.compiled()
        clone = pickle.loads(pickle.dumps(compiled))
        scenarios = Sweep.random(
            sorted(polys.variables), 32, seed=3
        ).materialize()
        assert numpy.array_equal(
            compiled.evaluate(scenarios), clone.evaluate(scenarios)
        )


class TestSharedMemoryTransport:
    def test_segment_created_once_and_unlinked(self, polys, monkeypatch):
        """The pool publishes ONE shared-memory segment and unlinks it
        on exit — nothing left behind for other processes to attach."""
        from multiprocessing import shared_memory

        created = []
        real = shared_memory.SharedMemory

        def spy(*args, **kwargs):
            segment = real(*args, **kwargs)
            if kwargs.get("create"):
                created.append(segment.name)
            return segment

        monkeypatch.setattr(shared_memory, "SharedMemory", spy)
        scenarios = [{"a": 0.5 + i / 100} for i in range(40)]
        serial = evaluate_scenarios(polys, scenarios)
        parallel = evaluate_scenarios_parallel(
            polys, scenarios, workers=2, min_parallel=0, chunk_size=10
        )
        assert numpy.array_equal(serial, parallel)
        assert len(created) == 1
        with pytest.raises(FileNotFoundError):
            real(name=created[0])  # unlinked: attaching must fail

    def test_no_dev_shm_leak(self, polys):
        import glob

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        before = set(glob.glob("/dev/shm/repro-*"))
        evaluate_scenarios_parallel(
            polys, [{"a": 1.5}] * 30, workers=2, min_parallel=0,
            chunk_size=8,
        )
        list(iter_value_blocks(
            _workload(),
            Sweep.random(["v0", "v1"], 600, seed=7, changes=1),
            workers=2, chunk_size=128,
        ))
        assert set(glob.glob("/dev/shm/repro-*")) == before

    def test_segment_unlinked_when_worker_task_fails(self, polys,
                                                     monkeypatch):
        """Cleanup runs even when the pool dies mid-stream."""
        from multiprocessing import shared_memory

        created = []
        real = shared_memory.SharedMemory

        def spy(*args, **kwargs):
            segment = real(*args, **kwargs)
            if kwargs.get("create"):
                created.append(segment.name)
            return segment

        monkeypatch.setattr(shared_memory, "SharedMemory", spy)
        with pytest.raises((TypeError, ValueError)):
            evaluate_scenarios_parallel(
                polys, [{"a": object()}] * 30, workers=2, min_parallel=0,
                chunk_size=8,
            )
        assert len(created) == 1
        with pytest.raises(FileNotFoundError):
            real(name=created[0])

    def test_file_backed_artifact_skips_shared_memory(self, tmp_path,
                                                      monkeypatch):
        """A compiled set loaded from a .rpb container ships by path —
        no segment is ever created, workers re-map the file."""
        from multiprocessing import shared_memory

        from repro.api.artifact import CompressedProvenance
        from repro.api.session import ProvenanceSession
        from repro.core.forest import AbstractionForest
        from repro.core.tree import AbstractionTree

        polys = _workload()
        leaves = sorted(polys.variables)
        forest = AbstractionForest(
            [AbstractionTree.from_nested(("R", leaves))]
        )
        artifact = ProvenanceSession(polys, forest).compress(
            polys.num_monomials
        )
        path = str(tmp_path / "artifact.rpb")
        artifact.save(path)
        loaded = CompressedProvenance.load(path)

        def forbid_create(*args, **kwargs):
            if kwargs.get("create"):
                raise AssertionError(
                    "file-backed compiled sets must not publish shm"
                )
            return real(*args, **kwargs)

        real = shared_memory.SharedMemory
        monkeypatch.setattr(shared_memory, "SharedMemory", forbid_create)
        scenarios = [{leaves[0]: 0.25 * i} for i in range(36)]
        serial = evaluate_scenarios_parallel(
            loaded.polynomials, scenarios, workers=0
        )
        parallel = evaluate_scenarios_parallel(
            loaded.polynomials, scenarios, workers=2, min_parallel=0,
            chunk_size=9,
        )
        assert numpy.array_equal(serial, parallel)

    def test_workers_one_never_builds_pool(self, polys, monkeypatch):
        """Explicit workers=1 routes through the serial chunked path —
        no executor, no segment (the issue's first satellite fix)."""
        def boom(*args, **kwargs):
            raise AssertionError("workers=1 must not construct a pool")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", boom
        )
        scenarios = [{"a": 0.1 * i} for i in range(1000)]
        result = evaluate_scenarios_parallel(
            polys, scenarios, workers=1, min_parallel=0
        )
        assert numpy.array_equal(result, evaluate_scenarios(polys, scenarios))
        blocks = list(iter_value_blocks(polys, scenarios, workers=1))
        stitched = numpy.concatenate([v for _, _, v in blocks], axis=0)
        assert numpy.array_equal(stitched, result)


class TestTopK:
    def test_matches_full_matrix_ranking(self, polys):
        sweep = Sweep.random(VARIABLES + ["x", "y"], 200, seed=5, changes=2)
        matrix = evaluate_scenarios(polys, sweep)
        totals = matrix.sum(axis=1)
        expected = sorted(
            range(200), key=lambda i: (-totals[i], i)
        )[:5]
        ranked = top_k(polys, sweep, k=5)
        assert [entry.index for entry in ranked] == expected
        assert [entry.rank for entry in ranked] == [1, 2, 3, 4, 5]
        assert ranked[0].score == pytest.approx(totals[expected[0]])
        assert len(ranked[0].values) == 3

    def test_smallest_ranking(self, polys):
        sweep = Sweep.one_at_a_time(VARIABLES, [0.0])
        ranked = top_k(polys, sweep, k=2, largest=False)
        full = evaluate_scenarios(polys, sweep).sum(axis=1)
        assert ranked[0].score == pytest.approx(full.min())

    def test_custom_objective(self, polys):
        sweep = Sweep.one_at_a_time(VARIABLES, [0.5, 1.5])
        ranked = top_k(
            polys, sweep, k=1, objective=lambda row: float(row[1])
        )
        matrix = evaluate_scenarios(polys, sweep)
        assert ranked[0].score == pytest.approx(matrix[:, 1].max())

    def test_k_larger_than_family(self, polys):
        ranked = top_k(polys, Sweep.one_at_a_time(["a"], [0.5]), k=10)
        assert len(ranked) == 1
        with pytest.raises(ValueError):
            top_k(polys, [], k=0)

    def test_bad_chunk_size_raises_not_empty(self, polys):
        """chunk_size <= 0 must raise, never silently return []."""
        sweep = Sweep.one_at_a_time(["a"], [0.5])
        with pytest.raises(ValueError):
            top_k(polys, sweep, k=1, chunk_size=0)
        with pytest.raises(ValueError):
            sensitivity(polys, sweep, chunk_size=-3)

    def test_parallel_matches_serial(self):
        polys = _workload()
        sweep = Sweep.random(sorted(polys.variables), 600, seed=2, changes=4)
        serial = top_k(polys, sweep, k=7)
        parallel = top_k(polys, sweep, k=7, workers=2, chunk_size=128)
        assert serial == parallel

    def test_parallel_over_plain_list_matches_serial(self):
        """Non-Sweep iterables shard too (rows ship to the pool)."""
        polys = _workload()
        scenarios = Sweep.random(
            sorted(polys.variables), 600, seed=12, changes=4
        ).materialize()
        serial = top_k(polys, scenarios, k=5)
        parallel = top_k(polys, scenarios, k=5, workers=2, chunk_size=128)
        assert serial == parallel

    def test_parallel_with_transform_matches_serial(self):
        """Transforms run in the parent; evaluation still shards."""
        polys = _workload()
        sweep = Sweep.random(sorted(polys.variables), 600, seed=8, changes=3)

        def damp(entry):
            v = Valuation.coerce(entry)
            return Valuation(
                {k: (val + 1.0) / 2.0 for k, val in v.assignment.items()},
                default=v.default,
            )

        serial = top_k(polys, sweep, k=5, transform=damp)
        parallel = top_k(
            polys, sweep, k=5, transform=damp, workers=2, chunk_size=128
        )
        assert serial == parallel


class TestSensitivity:
    def test_oaat_ranks_by_induced_delta(self, polys):
        # knocking out each variable moves the totals by its coefficients
        sweep = Sweep.one_at_a_time(VARIABLES, [0.0])
        report = sensitivity(polys, sweep)
        deltas = {item.variable: item.mean_delta for item in report}
        # b appears as 3*b*x and 7*b*z -> delta 10 with all-1 defaults.
        assert deltas["b"] == pytest.approx(10.0)
        assert deltas["a"] == pytest.approx(8.0)
        assert report[0].variable == "b"
        assert report[0].scenarios == 1

    def test_multi_change_scenarios_attribute_to_all(self, polys):
        report = sensitivity(polys, [Scenario("s", {"a": 0.0, "b": 0.0})])
        deltas = {item.variable: item.mean_delta for item in report}
        assert deltas["a"] == deltas["b"] == pytest.approx(18.0)

    def test_parallel_matches_serial(self):
        polys = _workload()
        sweep = Sweep.random(sorted(polys.variables), 600, seed=6, changes=3)
        assert sensitivity(polys, sweep) == sensitivity(
            polys, sweep, workers=2, chunk_size=150
        )


class TestFacadeWorkers:
    def test_session_ask_many_workers_identical(self):
        from repro.api.session import ProvenanceSession

        polys = _workload()
        session = ProvenanceSession.from_polynomials(polys)
        sweep = Sweep.random(sorted(polys.variables), 40, seed=4)
        serial = session.ask_many(sweep)
        parallel = session.ask_many(sweep, workers=2)
        assert serial == parallel
        assert all(answer.exact for answer in serial)
        assert serial[0].name == sweep[0].name
        one = session.ask(sweep[0])
        assert one.values == serial[0].values

    def test_artifact_ask_many_workers_identical(self):
        from repro.api.session import ProvenanceSession
        from repro.workloads.trees import layered_tree

        polys = _workload()
        pool = sorted(v for v in polys.variables if v.startswith("v"))
        tree = layered_tree(pool, (4,), prefix="g")
        session = ProvenanceSession.from_polynomials(polys, forest=tree)
        artifact = session.compress(bound=max(1, polys.num_monomials // 2))
        sweep = Sweep.random(pool, 50, seed=9, changes=2)
        assert artifact.ask_many(sweep) == artifact.ask_many(sweep, workers=2)

    def test_artifact_lift_feeds_top_k(self):
        from repro.api.session import ProvenanceSession
        from repro.workloads.trees import layered_tree

        polys = _workload()
        pool = sorted(v for v in polys.variables if v.startswith("v"))
        tree = layered_tree(pool, (4,), prefix="g")
        session = ProvenanceSession.from_polynomials(polys, forest=tree)
        artifact = session.compress(bound=max(1, polys.num_monomials // 2))
        sweep = Sweep.one_at_a_time(pool, [0.5])
        ranked = top_k(
            artifact.polynomials, sweep, k=3, transform=artifact.lift
        )
        answers = artifact.ask_many(sweep)
        totals = [sum(answer.values) for answer in answers]
        best = max(range(len(totals)), key=lambda i: (totals[i], -i))
        assert ranked[0].index == best
        assert ranked[0].score == pytest.approx(totals[best])
