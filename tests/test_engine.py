"""Tests for schemas, K-relations, and the SPJU operators."""

import pytest

from repro.core.parser import parse
from repro.engine import (
    Relation,
    Schema,
    SchemaError,
    extend,
    join,
    project,
    rename,
    select,
    union,
)
from repro.semiring import BOOLEAN, NATURAL, PROVENANCE


class TestSchema:
    def test_index(self):
        s = Schema(["a", "b", "c"])
        assert s.index("b") == 1

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).index("z")

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_project_and_rename(self):
        s = Schema(["a", "b", "c"])
        assert s.project(["c", "a"]).columns == ("c", "a")
        assert s.rename({"a": "x"}).columns == ("x", "b", "c")

    def test_concat_clash(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema(["a", "b"]).concat(Schema(["b", "c"]))

    def test_concat_with_drop(self):
        merged = Schema(["a", "b"]).concat(Schema(["b", "c"]), drop_from_other={"b"})
        assert merged.columns == ("a", "b", "c")

    def test_row_dict_roundtrip(self):
        s = Schema(["a", "b"])
        assert s.dict_to_row(s.row_to_dict((1, 2))) == (1, 2)

    def test_dict_to_row_missing_column(self):
        with pytest.raises(SchemaError):
            Schema(["a", "b"]).dict_to_row({"a": 1})


class TestRelation:
    def test_from_rows_default_annotation(self):
        r = Relation.from_rows(["a"], [(1,), (2,)])
        assert r.annotation((1,)) == 1

    def test_duplicate_rows_combine(self):
        r = Relation.from_rows(["a"], [(1,), (1,)])
        assert r.annotation((1,)) == 2  # bag semantics

    def test_boolean_duplicates_collapse(self):
        r = Relation.from_rows(["a"], [(1,), (1,)], semiring=BOOLEAN)
        assert r.annotation((1,)) is True
        assert len(r) == 1

    def test_zero_annotation_removes_row(self):
        r = Relation(["a"], semiring=NATURAL)
        r.add((1,), 0)
        assert (1,) not in r

    def test_wrong_width_rejected(self):
        r = Relation(["a", "b"])
        with pytest.raises(SchemaError):
            r.add((1,))

    def test_with_tuple_variables(self):
        r = Relation.from_rows(["a"], [(1,), (2,)])
        annotated = r.with_tuple_variables(prefix="t")
        assert annotated.semiring is PROVENANCE
        annotations = sorted(str(a) for _, a in annotated)
        assert annotations == ["t0", "t1"]

    def test_annotation_of_absent_row_is_zero(self):
        r = Relation.from_rows(["a"], [(1,)])
        assert r.annotation((9,)) == 0


class TestOperators:
    @pytest.fixture
    def r(self):
        return Relation.from_rows(["k", "v"], [(1, "x"), (2, "y"), (3, "x")])

    @pytest.fixture
    def s(self):
        return Relation.from_rows(["k", "w"], [(1, 10), (2, 20), (2, 21)])

    def test_select(self, r):
        out = select(r, lambda row: row["v"] == "x")
        assert sorted(out.rows) == [(1, "x"), (3, "x")]

    def test_project_combines_annotations(self, r):
        out = project(r, ["v"])
        assert out.annotation(("x",)) == 2  # two rows collapse
        assert out.annotation(("y",)) == 1

    def test_rename(self, r):
        out = rename(r, {"k": "key"})
        assert out.schema.columns == ("key", "v")

    def test_rename_unknown_column(self, r):
        with pytest.raises(SchemaError):
            rename(r, {"zz": "a"})

    def test_extend(self, r):
        out = extend(r, "doubled", lambda row: row["k"] * 2)
        assert (1, "x", 2) in out

    def test_extend_existing_column_rejected(self, r):
        with pytest.raises(SchemaError):
            extend(r, "v", lambda row: 0)

    def test_join_multiplies_annotations(self, r, s):
        out = join(r, s, on="k")
        assert out.annotation((1, "x", 10)) == 1
        # k=2 matches two s-rows; each output row annotated 1*1.
        assert (2, "y", 20) in out and (2, "y", 21) in out

    def test_join_on_pair_names(self):
        left = Relation.from_rows(["a"], [(1,)])
        right = Relation.from_rows(["b", "c"], [(1, "hit")])
        out = join(left, right, on=("a", "b"))
        assert (1, "hit") in out

    def test_join_semiring_mismatch(self, r):
        other = Relation.from_rows(["k"], [(1,)], semiring=BOOLEAN)
        with pytest.raises(ValueError, match="semiring"):
            join(r, other, on="k")

    def test_union_combines(self, r):
        other = Relation.from_rows(["k", "v"], [(1, "x"), (9, "z")])
        out = union(r, other)
        assert out.annotation((1, "x")) == 2
        assert (9, "z") in out

    def test_union_schema_mismatch(self, r, s):
        with pytest.raises(SchemaError):
            union(r, s)

    def test_empty_on_rejected(self, r, s):
        with pytest.raises(ValueError):
            join(r, s, on=[])


class TestProvenancePropagation:
    """Joins multiply and projections add in N[X] — the semiring model."""

    def test_join_produces_products(self):
        left = Relation.from_rows(["k"], [(1,)]).with_tuple_variables("l")
        right = Relation.from_rows(["k"], [(1,)]).with_tuple_variables("r")
        out = join(left, right, on="k")
        assert out.annotation((1,)) == parse("l0*r0")

    def test_project_produces_sums(self):
        r = Relation.from_rows(["k", "v"], [(1, "a"), (2, "b")]).with_tuple_variables("t")
        out = project(r, [])
        assert out.annotation(()) == parse("t0 + t1")

    def test_self_join_squares(self):
        r = Relation.from_rows(["k"], [(1,)]).with_tuple_variables("t")
        out = join(r, rename(r, {"k": "k2"}), on=("k", "k2"))
        assert out.annotation((1,)) == parse("t0^2")

    def test_spju_boolean_specialization_matches_set_semantics(self):
        """Evaluating N[X] provenance in BOOLEAN == running under sets."""
        from repro.semiring import evaluate_in

        base = Relation.from_rows(["k", "v"], [(1, "a"), (2, "b"), (2, "c")])
        annotated = base.with_tuple_variables("t")
        other = rename(base.with_tuple_variables("u"), {"v": "w"})
        out = project(join(annotated, other, on="k"), ["k"])
        for _row, annotation in out:
            # All tuples present -> every output row must be derivable.
            assert evaluate_in(annotation, BOOLEAN, {}) is True
