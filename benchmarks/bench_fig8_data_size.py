"""Figure 8: compression time as a function of the input data size.

Paper shape: moderate growth for Opt VVS and the greedy as the database
(and hence the provenance) grows; Q1 plateaus once its few polynomials
saturate all variable combinations (its polynomial count is fixed at 8,
so size growth stops early).
"""

import pytest

from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from benchmarks import common

#: Figure/table benches run minutes at full scale; `-m "not slow"` skips them.
pytestmark = pytest.mark.slow

SCALES = [0.5, 1.0, 2.0, 4.0]
TREE_FANOUTS = (8,)


def _series(workload):
    rows = []
    for scale in SCALES:
        provenance = common.workload_provenance(workload, scale)
        tree = common.workload_tree(workload, TREE_FANOUTS).clean(
            provenance.variables
        )
        if tree is None:
            continue
        bound = common.feasible_bound(provenance, tree)
        opt_seconds, _ = common.timed(
            optimal_vvs, provenance, tree, bound, clean=False
        )
        greedy_seconds, _ = common.timed(
            greedy_vvs, provenance, common.forest_of(tree), bound, clean=False
        )
        rows.append(
            [workload, scale, provenance.num_monomials,
             f"{opt_seconds:.3f}", f"{greedy_seconds:.3f}"]
        )
    return rows


@pytest.mark.parametrize("workload", common.WORKLOADS)
def test_fig8(benchmark, workload):
    rows = benchmark.pedantic(_series, args=(workload,), rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
    common.emit(
        f"fig8_{workload}",
        ["workload", "scale", "|P|_M", "opt [s]", "greedy [s]"],
        rows,
        title=f"Figure 8 — {workload}: time vs input data size",
    )
    assert rows
    # Shape: provenance grows with the data — modulo Q1-style saturation
    # (the paper: "the computation time is similar from that point
    # onwards"), so only the endpoints are compared, with slack.
    sizes = [row[2] for row in rows]
    assert sizes[-1] >= sizes[0] * 0.9
