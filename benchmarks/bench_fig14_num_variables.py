"""Figure 14 (Appendix B): compression time vs the number of variables.

The paper adds up to 8000 variables (128 of which are tree leaves) and
observes moderate runtime growth for Q1/Q5 — because their few
polynomials gain many new monomials — while Q10/telephony barely move
(their polynomial counts dominate, extra variables change little).

Reproduced by re-aggregating lineitem revenue with a third,
order-bucketed parameter variable whose alphabet is swept: more
variables → more distinct monomials per polynomial, exactly the
mechanism the appendix describes.
"""

import pytest

from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs
from repro.engine.aggregates import aggregate_sum
from benchmarks import common

#: Figure/table benches run minutes at full scale; `-m "not slow"` skips them.
pytestmark = pytest.mark.slow

EXTRA_VARIABLE_COUNTS = [1, 50, 200, 800]
TREE_FANOUTS = (8,)


def _provenance_with_extra_variables(num_extra):
    """Q1-shaped revenue with (sᵢ, pⱼ, x_{order mod num_extra}) params."""
    db = common.tpch_database()
    supplier_buckets, part_buckets = 32, 32

    def params(row):
        return [
            f"s{row['L_SUPPKEY'] % supplier_buckets}",
            f"p{row['L_PARTKEY'] % part_buckets}",
            f"x{row['L_ORDERKEY'] % num_extra}",
        ]

    result = aggregate_sum(
        db.lineitem,
        ["L_RETURNFLAG", "L_LINESTATUS"],
        lambda row: row["L_EXTENDEDPRICE"] * row["L_DISCOUNT"],
        params=params,
    )
    return result.polynomials


def _series():
    rows = []
    for num_extra in EXTRA_VARIABLE_COUNTS:
        provenance = _provenance_with_extra_variables(num_extra)
        tree = common.workload_tree("tpch-q1", TREE_FANOUTS).clean(
            provenance.variables
        )
        bound = common.feasible_bound(provenance, tree)
        opt_seconds, _ = common.timed(
            optimal_vvs, provenance, tree, bound, clean=False
        )
        greedy_seconds, _ = common.timed(
            greedy_vvs, provenance, common.forest_of(tree), bound, clean=False
        )
        rows.append(
            [provenance.num_variables, provenance.num_monomials,
             f"{opt_seconds:.3f}", f"{greedy_seconds:.3f}"]
        )
    return rows


def test_fig14(benchmark):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
    common.emit(
        "fig14_num_variables",
        ["|P|_V", "|P|_M", "opt [s]", "greedy [s]"],
        rows,
        title="Figure 14 — compression time vs number of variables",
    )
    # Shape: more variables -> more monomials -> (weakly) more work.
    sizes = [row[1] for row in rows]
    assert sizes == sorted(sizes)
