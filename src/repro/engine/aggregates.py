"""Group-by aggregates with provenance polynomials (§2.1, setting 2).

For a SUM aggregate, each contributing row adds one term

    value(row) · annotation(row) · Π params(row)

to its group's polynomial: ``value`` is the aggregated number,
``annotation`` is the row's ``N[X]`` annotation (1 for unannotated
relations), and ``params`` are the analyst-chosen scenario variables
placed on cells (the ``p1``/``m1`` of the running example, the
``si``/``pj`` of the TPC-H workload). Valuating all variables at 1
recovers the plain SQL answer; other valuations answer what-ifs.

``MIN``/``MAX``/other commutative aggregates reuse the same symbolic
construction — the paper's model interprets the polynomial's ``+`` *as*
the aggregate operation. :func:`evaluate_aggregate` therefore takes the
combining function used at valuation time.
"""

from __future__ import annotations

from repro.core.polynomial import Monomial, Polynomial, PolynomialSet

__all__ = ["aggregate_sum", "AggregateResult", "evaluate_aggregate"]


class AggregateResult:
    """The result of a provenance-aware group-by aggregate.

    Maps group keys (tuples of group-by values) to provenance
    polynomials; iteration order is sorted by group key so output is
    deterministic.

    >>> from repro.engine.table import Relation
    >>> r = Relation.from_rows(["zip", "amount"], [(1, 10.0), (1, 5.0), (2, 7.0)])
    >>> result = aggregate_sum(r, ["zip"], "amount")
    >>> result.value((1,)), result.value((2,))
    (15.0, 7.0)
    """

    __slots__ = ("group_columns", "groups")

    def __init__(self, group_columns, groups):
        self.group_columns = tuple(group_columns)
        self.groups = dict(groups)

    def __iter__(self):
        """Iterate ``(group_key, polynomial)`` sorted by key."""
        for key in sorted(self.groups, key=repr):
            yield key, self.groups[key]

    def __len__(self):
        return len(self.groups)

    def __getitem__(self, key):
        return self.groups[tuple(key) if not isinstance(key, tuple) else key]

    def polynomial(self, key):
        """The provenance polynomial of one group."""
        return self.groups[key]

    @property
    def polynomials(self):
        """All group polynomials as a :class:`PolynomialSet` (sorted)."""
        return PolynomialSet(polynomial for _, polynomial in self)

    def value(self, key, valuation=None):
        """The aggregate value of a group under a valuation (default: 1)."""
        polynomial = self.groups[key]
        if valuation is None:
            return polynomial.evaluate({})
        return valuation.evaluate(polynomial)

    def values(self, valuation=None):
        """``{group_key: value}`` under a valuation (default: all 1)."""
        return {key: self.value(key, valuation) for key in self.groups}


def aggregate_sum(relation, group_by, value, params=None):
    """Provenance-aware ``SELECT group_by, SUM(value) … GROUP BY group_by``.

    :param relation: an annotated or plain :class:`Relation`.
    :param group_by: list of grouping column names.
    :param value: a column name or ``fn(row_dict) -> number``.
    :param params: optional ``fn(row_dict) -> iterable of variable
        names`` placing scenario variables on this row's contribution
        (may also yield ``(name, exponent)`` pairs).
    """
    group_positions = [relation.schema.index(c) for c in group_by]
    if isinstance(value, str):
        value_position = relation.schema.index(value)
        extract = None
    else:
        value_position = None
        extract = value

    groups = {}
    for row, annotation in relation:
        if extract is None:
            amount = row[value_position]
        else:
            amount = extract(relation.schema.row_to_dict(row))
        if params is None:
            monomial = Monomial.ONE
        else:
            monomial = Monomial.of(*params(relation.schema.row_to_dict(row)))
        contribution = _contribution(amount, annotation, monomial)
        key = tuple(row[p] for p in group_positions)
        if key in groups:
            groups[key] = groups[key] + contribution
        else:
            groups[key] = contribution
    return AggregateResult(group_by, groups)


def _contribution(amount, annotation, monomial):
    """``amount · annotation · monomial`` as a polynomial."""
    if isinstance(annotation, Polynomial):
        return (annotation * amount) * monomial
    # Numeric annotation (bag multiplicity): fold it into the coefficient.
    return Polynomial({monomial: amount * annotation})


def evaluate_aggregate(polynomial, assignment, combine=None, default=1.0):
    """Valuate an aggregate polynomial, with ``+`` read as ``combine``.

    ``combine=None`` means SUM (ordinary polynomial evaluation); pass
    ``min``/``max`` for the other commutative aggregates of §2.1.

    >>> from repro.core.parser import parse
    >>> p = parse("3*x + 5*y")
    >>> evaluate_aggregate(p, {"x": 1.0, "y": 1.0}, combine=min)
    3.0
    """
    if combine is None:
        return polynomial.evaluate(assignment, default)
    terms = [
        coeff * monomial.evaluate(assignment, default)
        for monomial, coeff in polynomial.terms.items()
    ]
    if not terms:
        raise ValueError("cannot combine an empty polynomial with min/max")
    result = terms[0]
    for term in terms[1:]:
        result = combine(result, term)
    return result
