"""Shared fixtures: the paper's running example and small workloads."""

import pytest

from repro.core.forest import AbstractionForest
from repro.workloads.telephony import (
    TelephonyBenchmark,
    example13_polynomials,
    figure1_database,
    months_tree,
    plans_tree,
)
from repro.workloads.tpch import generate


@pytest.fixture(scope="session")
def ex13_polys():
    """The polynomials {P1, P2} of Example 13."""
    return example13_polynomials()


@pytest.fixture(scope="session")
def figure2_tree():
    """The plans abstraction tree of Figure 2."""
    return plans_tree()


@pytest.fixture(scope="session")
def figure3_tree():
    """The months abstraction tree of Figure 3."""
    return months_tree()


@pytest.fixture(scope="session")
def paper_forest(figure2_tree, figure3_tree):
    """The two-tree forest used by Examples 8 and 15."""
    return AbstractionForest([figure2_tree, figure3_tree])


@pytest.fixture(scope="session")
def figure1_relations():
    """(Cust, Calls, Plans) of Figure 1."""
    return figure1_database()


@pytest.fixture(scope="session")
def tiny_tpch():
    """A small, session-cached TPC-H database."""
    return generate(scale_factor=0.001, seed=42)


@pytest.fixture(scope="session")
def small_telephony():
    """A small, session-cached telephony benchmark."""
    return TelephonyBenchmark(customers=60, num_plans=16, months=6,
                              zip_pool=8, seed=11)
