"""Tests for the exact multi-tree branch-and-bound solver."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.algorithms.brute_force import brute_force_vvs
from repro.algorithms.exact import SearchBudgetExceededError, exact_forest_vvs
from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.result import InfeasibleBoundError
from repro.core.parser import parse_set
from repro.core.tree import AbstractionTree
from repro.workloads.random_polys import random_compatible_instance


class TestBasics:
    def test_single_tree(self):
        polys = parse_set(["2*a*x + 3*b*x"])
        tree = AbstractionTree.from_nested(("g", ["a", "b"]))
        result = exact_forest_vvs(polys, tree, bound=1)
        assert result.vvs.labels == frozenset({"g"})
        assert result.abstracted_size == 1

    def test_loose_bound_identity(self, ex13_polys, paper_forest):
        result = exact_forest_vvs(ex13_polys, paper_forest, bound=99)
        assert result.monomial_loss == 0

    def test_infeasible_raises(self, ex13_polys, paper_forest):
        with pytest.raises(InfeasibleBoundError):
            exact_forest_vvs(ex13_polys, paper_forest, bound=1)

    def test_invalid_bound(self, ex13_polys, paper_forest):
        with pytest.raises(ValueError):
            exact_forest_vvs(ex13_polys, paper_forest, bound=0)

    def test_node_limit(self, ex13_polys, paper_forest):
        with pytest.raises(SearchBudgetExceededError):
            exact_forest_vvs(ex13_polys, paper_forest, bound=4, node_limit=2)

    def test_example15_optimum(self, ex13_polys, paper_forest):
        """Finds the paper's stated multi-tree optimum, not the greedy's."""
        result = exact_forest_vvs(ex13_polys, paper_forest, bound=4)
        assert result.vvs.labels == frozenset(
            {"q1", "Special", "SB", "e", "p1"}
        )
        assert result.monomial_loss == 10
        assert result.variable_loss == 4


class TestEquivalenceWithBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_same_objective_on_random_instances(self, seed):
        polys, forest = random_compatible_instance(
            seed=seed, num_trees=2, leaves_per_tree=5,
            num_polynomials=3, monomials_per_polynomial=8,
        )
        bound = max(1, polys.num_monomials * 2 // 3)
        try:
            expected = brute_force_vvs(polys, forest, bound, max_cuts=50_000)
        except InfeasibleBoundError:
            with pytest.raises(InfeasibleBoundError):
                exact_forest_vvs(polys, forest, bound)
            return
        result = exact_forest_vvs(polys, forest, bound)
        assert result.variable_loss == expected.variable_loss
        assert result.abstracted_size <= bound

    @given(st.integers(0, 3000), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_property_equivalence(self, seed, num_trees):
        polys, forest = random_compatible_instance(
            seed=seed, num_trees=num_trees, leaves_per_tree=4,
            num_polynomials=2, monomials_per_polynomial=6,
        )
        assume(forest.count_cuts() <= 2000)
        bound = max(1, polys.num_monomials - 2)
        try:
            expected = brute_force_vvs(polys, forest, bound, max_cuts=None)
        except InfeasibleBoundError:
            with pytest.raises(InfeasibleBoundError):
                exact_forest_vvs(polys, forest, bound)
            return
        result = exact_forest_vvs(polys, forest, bound)
        assert result.variable_loss == expected.variable_loss


class TestDominatesGreedy:
    @pytest.mark.parametrize("seed", range(6))
    def test_never_worse_than_greedy(self, seed):
        polys, forest = random_compatible_instance(
            seed=100 + seed, num_trees=2, leaves_per_tree=5,
            num_polynomials=3, monomials_per_polynomial=10,
        )
        bound = max(1, polys.num_monomials * 2 // 3)
        greedy = greedy_vvs(polys, forest, bound)
        try:
            exact = exact_forest_vvs(polys, forest, bound)
        except InfeasibleBoundError:
            assert greedy.abstracted_size > bound
            return
        if greedy.abstracted_size <= bound:
            assert exact.variable_loss <= greedy.variable_loss
