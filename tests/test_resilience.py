"""Chaos suite: self-healing sweeps, crash-safe store, service limits.

The invariant every scenario here pins: resilience changes the
*schedule*, never the *answer*. A sweep healed through worker crashes,
hung shards, or poisoned workers returns the bit-identical matrix the
serial pass produces; a store that quarantines a corrupt spool write
still hands back the artifact whose answers match a clean store's.
Faults are scheduled deterministically via :mod:`repro.faults`.
"""

import asyncio
import glob
import http.client
import json
import os

import numpy
import pytest

from repro import faults
from repro.api.session import ProvenanceSession
from repro.errors import ArtifactNotFound
from repro.faults import FaultPlan, FaultSpec, installed
from repro.scenarios import Sweep, evaluate_scenarios
from repro.scenarios.parallel import (
    evaluate_scenarios_parallel,
    iter_value_blocks,
)
from repro.service.app import start_service
from repro.service.http import HttpError
from repro.service.resilience import CircuitBreaker
from repro.service.store import ArtifactStore
from repro.util.retry import RetryPolicy
from repro.workloads.random_polys import random_polynomials

#: Chaos tests heal many times over; slow backoff would dominate.
FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05)


@pytest.fixture(autouse=True)
def _disarmed():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def polys():
    pool = [f"v{i}" for i in range(10)]
    return random_polynomials(6, 16, [pool], seed=9, extra_variables=3)


@pytest.fixture(scope="module")
def sweep(polys):
    return Sweep.random(sorted(polys.variables), 900, seed=21, changes=3)


@pytest.fixture(scope="module")
def serial(polys, sweep):
    return evaluate_scenarios(polys, sweep)


class TestHealedSweeps:
    def heal(self, polys, sweep, **kwargs):
        kwargs.setdefault("retry", FAST_RETRY)
        return evaluate_scenarios_parallel(
            polys, sweep, workers=2, min_parallel=0, chunk_size=128, **kwargs
        )

    def test_worker_crash_heals_bit_identical(
        self, polys, sweep, serial, tmp_path
    ):
        plan = FaultPlan(
            [FaultSpec("worker.start", "crash", once=True)],
            token_dir=tmp_path,
        )
        with installed(plan, env=True):
            healed = self.heal(polys, sweep)
        assert numpy.array_equal(serial, healed)

    def test_shard_exception_retries_bit_identical(
        self, polys, sweep, serial, tmp_path
    ):
        plan = FaultPlan(
            [FaultSpec("shard.evaluate", "exception", at=2, once=True)],
            token_dir=tmp_path,
        )
        with installed(plan, env=True):
            healed = self.heal(polys, sweep)
        assert numpy.array_equal(serial, healed)

    def test_poisoned_shards_quarantine_to_parent(
        self, polys, sweep, serial
    ):
        # Every worker-side evaluation fails, forever: after the retry
        # budget each shard degrades to in-process evaluation — the
        # sweep completes (slowly), it does not error out.
        plan = FaultPlan(
            [FaultSpec("shard.evaluate", "exception", count=10**9)]
        )
        poison_retry = RetryPolicy(
            attempts=2, base_delay=0.001, max_delay=0.002
        )
        with installed(plan, env=True):
            healed = self.heal(polys, sweep, retry=poison_retry)
        assert numpy.array_equal(serial, healed)

    def test_hung_worker_times_out_and_heals(
        self, polys, sweep, serial, tmp_path
    ):
        plan = FaultPlan(
            [FaultSpec("shard.evaluate", "delay", delay=5.0, once=True)],
            token_dir=tmp_path,
        )
        with installed(plan, env=True):
            healed = self.heal(polys, sweep, shard_timeout=0.3)
        assert numpy.array_equal(serial, healed)

    def test_iter_value_blocks_heals_in_submission_order(
        self, polys, sweep, serial, tmp_path
    ):
        plan = FaultPlan(
            [FaultSpec("shard.evaluate", "exception", once=True)],
            token_dir=tmp_path,
        )
        with installed(plan, env=True):
            blocks = list(iter_value_blocks(
                polys, sweep, workers=2, chunk_size=128, retry=FAST_RETRY
            ))
        starts = [start for start, _, _ in blocks]
        assert starts == sorted(starts)
        stitched = numpy.concatenate([v for _, _, v in blocks], axis=0)
        assert numpy.array_equal(serial, stitched)

    def test_healing_leaves_no_dev_shm_segments(
        self, polys, sweep, tmp_path
    ):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        before = set(glob.glob("/dev/shm/repro-*"))
        plan = FaultPlan(
            [FaultSpec("worker.start", "crash", once=True)],
            token_dir=tmp_path,
        )
        with installed(plan, env=True):
            self.heal(polys, sweep)
        assert set(glob.glob("/dev/shm/repro-*")) == before


POLYNOMIALS = [
    "2*b1*m1 + 3*b2*m1 + b3*m2",
    "b1*m2 + 4*b2*m2 + 2*b3*m1",
]
FOREST = [["SB", ["b1", "b2", "b3"]], ["SM", ["m1", "m2"]]]
PROBE = {"b1": 0.5, "b2": 0.25}


def build_artifact(seed=2):
    session = ProvenanceSession.from_strings(
        [f"{seed}*b1*m1 + 3*b2*m1", "b1*m2 + b3*m2"],
        forest=[("SB", ["b1", "b2", "b3"]), ("SM", ["m1", "m2"])],
    )
    return session.compress(2, algorithm="greedy")


class TestStoreRecovery:
    def test_startup_quarantines_corruption_and_reaps_temps(self, tmp_path):
        store = ArtifactStore(tmp_path)
        artifact_id = store.put(build_artifact())
        # Simulate a crash mid-put plus on-disk corruption plus junk.
        spool = store.path_of(artifact_id)
        blob = bytearray(spool.read_bytes())
        blob[-1] ^= 0xFF
        spool.write_bytes(bytes(blob))
        (tmp_path / ".incoming-orphan.rpb").write_bytes(b"partial write")
        (tmp_path / "not-a-content-hash.rpb").write_bytes(b"junk")

        reopened = ArtifactStore(tmp_path)
        stats = reopened.stats()
        assert stats["quarantined"] == 2
        assert stats["reaped_temps"] == 1
        assert stats["spooled"] == 0
        with pytest.raises(ArtifactNotFound):
            reopened.get(artifact_id)
        names = {p.name for p in (tmp_path / "quarantine").iterdir()}
        assert names == {f"{artifact_id}.rpb", "not-a-content-hash.rpb"}

    def test_clean_store_recovery_is_a_noop(self, tmp_path):
        store = ArtifactStore(tmp_path)
        artifact_id = store.put(build_artifact())
        baseline = store.get(artifact_id).ask(PROBE).values

        reopened = ArtifactStore(tmp_path)
        assert reopened.stats()["quarantined"] == 0
        assert reopened.get(artifact_id).ask(PROBE).values == baseline

    def test_put_retries_through_a_corrupted_spool_write(self, tmp_path):
        clean = ArtifactStore(tmp_path / "clean")
        want_id = clean.put(build_artifact())
        baseline = clean.get(want_id).ask(PROBE).values

        # Corrupt exactly the first spool write (offset 0 breaks the
        # container magic, so decode-verification catches it).
        plan = FaultPlan(
            [FaultSpec("store.spool_write", "corrupt", at=1, offset=0)]
        )
        store = ArtifactStore(tmp_path / "chaos", retry=FAST_RETRY)
        with installed(plan):
            artifact_id = store.put(build_artifact())
        assert artifact_id == want_id
        assert store.quarantined == 1  # the torn write, kept for forensics
        assert store.get(artifact_id).ask(PROBE).values == baseline

    def test_put_exhausting_retries_raises_serialize_error(self, tmp_path):
        from repro.errors import SerializeError

        plan = FaultPlan(
            [FaultSpec("store.spool_write", "corrupt", offset=0,
                       count=10**9)]
        )
        store = ArtifactStore(tmp_path, retry=FAST_RETRY)
        with installed(plan):
            with pytest.raises(SerializeError, match="after 3 attempts"):
                store.put(build_artifact())


class TestRetryPolicy:
    def test_delays_grow_capped_and_deterministic(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.1, max_delay=0.4, jitter=0.25, seed=3
        )
        spans = [policy.delay(attempt, "t") for attempt in (1, 2, 3, 4)]
        assert spans == [policy.delay(attempt, "t") for attempt in (1, 2, 3, 4)]
        assert 0.1 <= spans[0] <= 0.125  # base + up to 25% jitter
        assert spans[3] <= 0.5  # capped at max_delay + jitter
        assert policy.delay(1, "other-token") != spans[0]

    def test_call_retries_then_returns(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(attempts=4, base_delay=0.0, jitter=0.0)
        assert policy.call(flaky, sleep=lambda span: None) == "ok"
        assert len(attempts) == 3

    def test_call_exhausts_budget_and_reraises(self):
        policy = RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0)
        attempts = []

        def doomed():
            attempts.append(1)
            raise OSError("permanent")

        with pytest.raises(OSError, match="permanent"):
            policy.call(doomed, sleep=lambda span: None)
        assert len(attempts) == 2

    def test_call_propagates_non_retryable_immediately(self):
        policy = RetryPolicy(attempts=4, base_delay=0.0, jitter=0.0)
        attempts = []

        def wrong():
            attempts.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(wrong, sleep=lambda span: None)
        assert len(attempts) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay(0)


class TestCircuitBreaker:
    def test_trips_half_opens_and_recovers(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            threshold=2, cooldown=10.0, clock=lambda: clock[0]
        )
        breaker.admit("a")
        breaker.record_failure("a")
        breaker.admit("a")  # one failure: still closed
        breaker.record_failure("a")  # trips
        with pytest.raises(HttpError) as caught:
            breaker.admit("a")
        assert caught.value.status == 503
        assert "Retry-After" in caught.value.headers
        clock[0] = 11.0
        breaker.admit("a")  # past cooldown: half-open trial admitted
        breaker.record_failure("a")  # failed trial re-opens immediately
        with pytest.raises(HttpError):
            breaker.admit("a")
        clock[0] = 22.0
        breaker.admit("a")
        breaker.record_success("a")
        breaker.admit("a")  # closed again
        snapshot = breaker.snapshot()
        assert snapshot["a"]["state"] == "closed"
        assert snapshot["a"]["trips"] == 2
        assert snapshot["a"]["consecutive_failures"] == 0

    def test_keys_are_independent_and_clean_keys_invisible(self):
        breaker = CircuitBreaker(threshold=1, cooldown=10.0)
        breaker.record_failure("bad")
        breaker.admit("good")  # untouched key admits freely
        assert set(breaker.snapshot()) == {"bad"}
        with pytest.raises(HttpError):
            breaker.admit("bad")

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)


def artifact_body(bound=2):
    return {"polynomials": POLYNOMIALS, "forest": FOREST, "bound": bound,
            "algorithm": "greedy"}


def call(port, method, path, body=None):
    """One HTTP request; returns (status, headers dict, json body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    payload = json.dumps(body).encode() if body is not None else None
    try:
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"}
                     if payload else {})
        response = conn.getresponse()
        return (
            response.status,
            dict(response.getheaders()),
            json.loads(response.read()),
        )
    finally:
        conn.close()


def with_server(scenario, **service_kwargs):
    async def main(tmp_path):
        server = await start_service(tmp_path, **service_kwargs)
        try:
            return await scenario(server)
        finally:
            await server.aclose()

    return main


class TestServiceResilience:
    def test_deadline_expiry_is_504(self, tmp_path):
        async def scenario(server):
            port = server.port
            status, _, created = await asyncio.to_thread(
                call, port, "POST", "/artifacts", artifact_body())
            assert status == 201
            # A 30 s batch window parks the single ask far past the
            # 0.2 s deadline — only the deadline can answer it.
            status, _, body = await asyncio.to_thread(
                call, port, "POST", f"/artifacts/{created['id']}/ask",
                {"scenario": {"changes": PROBE}})
            _, _, health = await asyncio.to_thread(
                call, port, "GET", "/healthz")
            return status, body, health

        status, body, health = asyncio.run(
            with_server(scenario, window=30.0, deadline=0.2)(tmp_path))
        assert status == 504
        assert "deadline" in body["error"]["message"]
        assert health["resilience"]["timed_out"] == 1
        assert health["resilience"]["deadline_seconds"] == 0.2

    def test_backpressure_sheds_with_retry_after(self, tmp_path):
        async def scenario(server):
            port = server.port
            status, _, created = await asyncio.to_thread(
                call, port, "POST", "/artifacts", artifact_body())
            assert status == 201
            parked = asyncio.ensure_future(asyncio.to_thread(
                call, port, "POST", f"/artifacts/{created['id']}/ask",
                {"scenario": {"changes": PROBE}}))
            while server.service.batcher.pending == 0:
                await asyncio.sleep(0.01)
            shed = await asyncio.to_thread(call, port, "GET", "/healthz")
            await server.aclose()  # drain answers the parked request
            return shed, await parked

        (status, headers, body), (parked_status, _, parked_body) = (
            asyncio.run(with_server(
                scenario, window=30.0, max_pending=1)(tmp_path)))
        assert status == 503
        assert headers.get("Retry-After") == "1"
        assert "admission queue full" in body["error"]["message"]
        assert parked_status == 200
        assert parked_body["answers"][0]["values"]

    def test_repeated_map_failures_open_the_breaker(self, tmp_path):
        async def scenario(server):
            port = server.port
            status, _, created = await asyncio.to_thread(
                call, port, "POST", "/artifacts", artifact_body())
            artifact_id = created["id"]
            # Evict the resident copy, then corrupt the spool file:
            # every re-map now fails its content-hash check.
            server.service.store._entries.clear()
            path = server.service.store.path_of(artifact_id)
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))
            statuses = []
            for _ in range(3):
                status, headers, _ = await asyncio.to_thread(
                    call, port, "GET", f"/artifacts/{artifact_id}")
                statuses.append((status, headers.get("Retry-After")))
            _, _, health = await asyncio.to_thread(
                call, port, "GET", "/healthz")
            return artifact_id, statuses, health

        artifact_id, statuses, health = asyncio.run(with_server(
            scenario, breaker_threshold=2, breaker_cooldown=60.0)(tmp_path))
        assert [status for status, _ in statuses] == [400, 400, 503]
        assert statuses[2][1] is not None  # Retry-After on the breaker 503
        breakers = health["resilience"]["breakers"]
        assert breakers[artifact_id]["state"] == "open"
        assert breakers[artifact_id]["trips"] == 1

    def test_healthz_reports_queue_config(self, tmp_path):
        async def scenario(server):
            return await asyncio.to_thread(call, server.port, "GET",
                                           "/healthz")

        _, _, health = asyncio.run(with_server(
            scenario, deadline=12.5, max_pending=9)(tmp_path))
        resilience = health["resilience"]
        assert resilience["deadline_seconds"] == 12.5
        assert resilience["max_pending"] == 9
        assert resilience["shed"] == 0
        assert resilience["inflight"] >= 0  # the healthz request itself

    def test_resilience_knobs_validated(self, tmp_path):
        from repro.service.app import WhatIfService

        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError, match="deadline"):
            WhatIfService(store, deadline=0.0)
        with pytest.raises(ValueError, match="max_pending"):
            WhatIfService(store, max_pending=0)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
