"""Micro-batching: coalesce concurrent single-scenario asks.

The compiled evaluator's throughput comes from batching — one
``ask_many`` over S scenarios costs one lift pass plus one matrix
product, while S separate ``ask`` calls pay S evaluator invocations.
Interactive clients, though, naturally send one scenario per request.
The :class:`MicroBatcher` bridges the two: a request parks for at most
``window`` seconds; every request for the same key (artifact, default)
that arrives inside the window joins the same batch; the batch is
answered by **one** evaluator call and the answers fan back out to the
waiting requests. Under concurrency the window fills and per-request
cost approaches the amortized batch cost; an idle server adds at most
``window`` latency.

``window <= 0`` disables coalescing — every request is its own batch of
one. The service bench's *uncoalesced* arm runs exactly that
configuration, so the gated speedup measures what the batcher (plus the
warm lift index it feeds) buys.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from collections.abc import Callable, Hashable, Sequence

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce awaitable submissions per key into windowed batches.

    :param window: seconds a batch stays open after its first entry;
        ``<= 0`` flushes every submission immediately (no coalescing).
    :param max_batch: flush early once a batch reaches this size.

    Evaluation runs synchronously on the event loop at flush time —
    the evaluator is CPU-bound NumPy, so handing it to a thread would
    only add handoff latency under the GIL. ``batch_sizes`` histograms
    every flushed batch (size → count) for the bench stage.
    """

    def __init__(self, window: float = 0.002, max_batch: int = 64) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.window = float(window)
        self.max_batch = int(max_batch)
        #: key -> ([(item, future), ...], evaluate)
        self._pending: dict = {}
        self._timers: dict = {}
        self.batch_sizes: dict[int, int] = {}
        self.batches = 0
        self.coalesced = 0  # requests answered by a batch of size > 1

    async def submit(
        self,
        key: Hashable,
        item: object,
        evaluate: Callable[[list], Sequence],
    ) -> object:
        """Queue ``item`` under ``key``; resolve to its result.

        ``evaluate`` answers the whole batch (``items -> results``,
        index-aligned); the first submission of a batch donates the
        callable — all submissions sharing a key must be answerable by
        the same call, which the key (artifact id, default) guarantees.
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        bucket = self._pending.get(key)
        if bucket is None:
            bucket = self._pending[key] = ([], evaluate)
            if self.window > 0:
                self._timers[key] = loop.call_later(
                    self.window, self._flush, key
                )
        bucket[0].append((item, future))
        if self.window <= 0 or len(bucket[0]) >= self.max_batch:
            self._flush(key)
        return await future

    def _flush(self, key: Hashable) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        bucket = self._pending.pop(key, None)
        if bucket is None:
            return
        entries, evaluate = bucket
        items = [item for item, _ in entries]
        size = len(items)
        self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1
        self.batches += 1
        if size > 1:
            self.coalesced += size
        try:
            results = evaluate(items)
        except BaseException as error:  # fan the failure out to every waiter
            for _, future in entries:
                if not future.done():
                    future.set_exception(error)
            return
        for (_, future), result in zip(entries, results, strict=True):
            if not future.done():
                future.set_result(result)

    def drain(self) -> None:
        """Flush every open batch now (graceful shutdown).

        Flushing resolves the parked futures synchronously, so after
        ``drain()`` returns no request is waiting on the batcher; the
        connection handlers still need a loop turn to write their
        responses out.
        """
        for key in list(self._pending):
            self._flush(key)

    @property
    def pending(self) -> int:
        """Requests currently parked in open batches."""
        return sum(len(entries) for entries, _ in self._pending.values())
