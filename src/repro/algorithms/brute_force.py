"""Brute-force baseline: enumerate every valid variable set.

The paper uses this as the reference point in Figures 5 and 11 — it
"was able to complete the computation only when the number of VVS was
less than 80,000". The number of cuts grows doubly exponentially with
tree height (Table 2 reaches 1.9·10¹⁹), so the enumerator guards itself
with ``max_cuts``.
"""

from __future__ import annotations

from repro.core.abstraction import abstract_counts, ensure_set
from repro.core.forest import AbstractionForest
from repro.core.tree import AbstractionTree
from repro.algorithms.result import AbstractionResult, InfeasibleBoundError

__all__ = ["brute_force_vvs", "TooManyCutsError"]


class TooManyCutsError(RuntimeError):
    """The forest has more cuts than the enumerator is willing to visit."""

    def __init__(self, num_cuts, max_cuts):
        self.num_cuts = num_cuts
        self.max_cuts = max_cuts
        super().__init__(
            f"forest has {num_cuts} cuts, exceeding the brute-force limit "
            f"of {max_cuts}; use optimal_vvs (single tree) or greedy_vvs"
        )


def brute_force_vvs(polynomials, forest, bound, *, max_cuts=1_000_000,
                    clean=True, backend="auto"):
    """Exhaustively find an optimal VVS for ``bound``.

    Visits every cut of the forest, keeps the adequate cut
    (``|P↓S|_M ≤ bound``) with minimal variable loss; ties are broken by
    larger monomial loss, then by sorted labels, so the result is
    deterministic and comparable with the DP's answer. ``backend``
    selects the per-cut counting engine (see
    :func:`repro.core.abstraction.abstract_counts`).

    :raises TooManyCutsError: when ``count_cuts() > max_cuts``.
    :raises InfeasibleBoundError: when no cut is adequate.
    """
    polynomials = ensure_set(polynomials)
    if isinstance(forest, AbstractionTree):
        forest = AbstractionForest([forest])
    if bound < 1:
        raise ValueError(f"bound must be >= 1, got {bound}")
    if clean:
        forest = forest.clean(polynomials)
    if max_cuts is not None:
        num_cuts = forest.count_cuts()
        if num_cuts > max_cuts:
            raise TooManyCutsError(num_cuts, max_cuts)

    total_monomials = polynomials.num_monomials
    total_variables = polynomials.num_variables

    best = None
    best_rank = None
    min_size = None
    for vvs in forest.iter_cuts():
        size, granularity = abstract_counts(
            polynomials, vvs.mapping(), backend=backend
        )
        if min_size is None or size < min_size:
            min_size = size
        if size > bound:
            continue
        variable_loss = total_variables - granularity
        rank = (variable_loss, size, tuple(sorted(vvs.labels)))
        if best_rank is None or rank < best_rank:
            best_rank = rank
            best = AbstractionResult(
                vvs=vvs,
                monomial_loss=total_monomials - size,
                variable_loss=variable_loss,
                abstracted_size=size,
                abstracted_granularity=granularity,
            )
    if best is None:
        raise InfeasibleBoundError(bound, min_size if min_size is not None else 0)
    return best
