"""Semiring substrate (Green et al., the paper's reference [36]).

Standard semirings, the universal polynomial semiring ``N[X]``, and the
homomorphisms that specialize stored provenance to concrete scenarios.
"""

from repro.semiring.base import Semiring
from repro.semiring.homomorphism import Homomorphism, evaluate_in
from repro.semiring.polynomial_semiring import PROVENANCE, PolynomialSemiring
from repro.semiring.standard import (
    BOOLEAN,
    FUZZY,
    LINEAGE,
    NATURAL,
    REAL,
    TROPICAL,
    VITERBI,
    WHY,
    BooleanSemiring,
    FuzzySemiring,
    LineageSemiring,
    NaturalSemiring,
    RealSemiring,
    TropicalSemiring,
    ViterbiSemiring,
    WhySemiring,
)

__all__ = [
    "Semiring",
    "Homomorphism",
    "evaluate_in",
    "PolynomialSemiring",
    "PROVENANCE",
    "BooleanSemiring",
    "NaturalSemiring",
    "RealSemiring",
    "TropicalSemiring",
    "ViterbiSemiring",
    "FuzzySemiring",
    "LineageSemiring",
    "WhySemiring",
    "BOOLEAN",
    "NATURAL",
    "REAL",
    "TROPICAL",
    "VITERBI",
    "FUZZY",
    "LINEAGE",
    "WHY",
]
