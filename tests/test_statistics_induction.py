"""Tests for provenance profiling and abstraction-tree induction."""


from repro.core.parser import parse_set
from repro.core.polynomial import PolynomialSet
from repro.core.statistics import profile, variable_cooccurrence
from repro.workloads.induction import induce_forest, induce_tree


class TestProfile:
    def test_basic_counts(self):
        p = profile(parse_set(["2*a*x + 3*b*x", "a*y^2"]))
        assert p.num_polynomials == 2
        assert p.num_monomials == 3
        assert p.num_variables == 4
        assert p.min_polynomial_size == 1
        assert p.max_polynomial_size == 2
        assert p.mean_polynomial_size == 1.5
        assert p.max_monomial_degree == 3

    def test_variable_frequency(self):
        p = profile(parse_set(["a*x + a*y + b"]))
        assert p.variable_frequency == {"a": 2, "x": 1, "y": 1, "b": 1}

    def test_top_variables(self):
        p = profile(parse_set(["a*x + a*y + b"]))
        assert p.top_variables(1) == [("a", 2)]

    def test_empty_profile(self):
        p = profile(PolynomialSet())
        assert p.num_polynomials == 0
        assert p.shape == "empty"

    def test_shape_few_large(self, tiny_tpch):
        from repro.workloads.tpch import query_provenance

        q1 = profile(query_provenance(tiny_tpch, "q1"))
        assert q1.shape == "few-large"

    def test_shape_many_small(self):
        many = parse_set([f"{i}*x{i} + {i}*y{i}" for i in range(1, 200)])
        assert profile(many).shape == "many-small"

    def test_example13_profile(self, ex13_polys):
        p = profile(ex13_polys)
        assert p.num_polynomials == 2
        assert p.num_monomials == 14
        assert p.max_monomial_degree == 2


class TestCooccurrence:
    def test_counts_shared_residuals(self):
        polys = parse_set(["2*a*x + 3*b*x + 4*a*y"])
        pairs = variable_cooccurrence(polys)
        # a and b share the residual context (*, x).
        assert pairs[("a", "b")] == 1
        # x and y share the residual context (a, *).
        assert pairs[("x", "y")] == 1

    def test_no_cross_polynomial_context(self):
        polys = parse_set(["a*x", "b*x"])
        assert ("a", "b") not in variable_cooccurrence(polys)

    def test_exponents_distinguish_contexts(self):
        polys = parse_set(["a^2*x + b*x"])
        assert ("a", "b") not in variable_cooccurrence(polys)

    def test_restricted_variables(self):
        polys = parse_set(["2*a*x + 3*b*x + 5*c*x"])
        pairs = variable_cooccurrence(polys, variables={"a", "b"})
        assert set(pairs) == {("a", "b")}

    def test_matches_loss_index_for_pairs(self, ex13_polys):
        """The pair affinity equals the single-pair-group monomial loss."""
        from repro.core.abstraction import LossIndex
        from repro.core.tree import AbstractionTree

        pairs = variable_cooccurrence(ex13_polys)
        for (u, v), shared in sorted(pairs.items()):
            tree = AbstractionTree.from_nested(("g", [u, v]))
            index = LossIndex(ex13_polys, tree)
            assert index.ml("g") == shared


class TestInduceTree:
    def test_clusters_paper_pairs_first(self, ex13_polys):
        """On the running example, induction recovers the 'mergeable'
        pairs the hand-made trees encode: b1/b2 (same residuals in P2)
        and m1/m3 never beat them... at least b1/b2 cluster early."""
        tree = induce_tree(
            ex13_polys, variables=["b1", "b2", "e", "p1", "f1", "y1", "v"]
        )
        parent = tree.parent("b1")
        assert sorted(tree.leaves_under(parent)) == ["b1", "b2"]

    def test_single_pool_tree_usable_by_algorithms(self, ex13_polys):
        from repro.algorithms.optimal import optimal_vvs

        plan_pool = ["p1", "f1", "y1", "v", "b1", "b2", "e"]
        tree = induce_tree(ex13_polys, variables=plan_pool)
        bound = ex13_polys.num_monomials - 2
        result = optimal_vvs(ex13_polys, tree, bound)
        assert result.abstracted_size <= bound

    def test_min_affinity_keeps_unrelated_apart(self):
        polys = parse_set(["a*x + b*x", "c*q + d*r"])
        tree = induce_tree(polys, min_affinity=1)
        # a,b cluster (shared context); c,d do not (no shared residual),
        # so they hang directly under the root.
        assert tree.parent("c") == tree.root.label
        assert tree.parent("d") == tree.root.label
        assert tree.parent("a") != tree.root.label

    def test_single_variable_returns_none(self):
        assert induce_tree(parse_set(["a"])) is None

    def test_absent_variables_ignored(self, ex13_polys):
        tree = induce_tree(ex13_polys, variables=["b1", "b2", "nope"])
        assert tree.leaf_labels == {"b1", "b2"}

    def test_deterministic(self, ex13_polys):
        a = induce_tree(ex13_polys)
        b = induce_tree(ex13_polys)
        assert a.to_nested() == b.to_nested()

class TestInduceForest:
    def test_pools_recover_parameter_domains(self, ex13_polys):
        """On the running example the conflict coloring separates plan
        variables from month variables — the paper's 'different
        domains … abstracted using different abstraction trees'."""
        forest = induce_forest(ex13_polys)
        leaf_sets = sorted(sorted(tree.leaf_labels) for tree in forest)
        assert ["m1", "m3"] in leaf_sets
        plans = {"p1", "f1", "y1", "v", "b1", "b2", "e"}
        assert any(set(leaves) <= plans for leaves in leaf_sets)

    def test_forest_is_compatible(self, ex13_polys):
        forest = induce_forest(ex13_polys)
        forest.check_compatible(ex13_polys)

    def test_forest_usable_by_greedy(self, ex13_polys):
        from repro.algorithms.greedy import greedy_vvs

        forest = induce_forest(ex13_polys)
        result = greedy_vvs(ex13_polys, forest, bound=4, clean=False)
        assert result.abstracted_size <= 4

    def test_forest_on_tpch(self, tiny_tpch):
        from repro.workloads.tpch import query_provenance

        provenance = query_provenance(tiny_tpch, "q5", buckets=(8, 8))
        forest = induce_forest(provenance)
        forest.check_compatible(provenance)
        # Supplier and part buckets land in different trees.
        for tree in forest:
            kinds = {leaf[0] for leaf in tree.leaf_labels}
            assert len(kinds) == 1 or kinds <= {"s", "p"}

    def test_deterministic(self, ex13_polys):
        a = induce_forest(ex13_polys)
        b = induce_forest(ex13_polys)
        assert sorted(t.to_nested() for t in a) == sorted(
            t.to_nested() for t in b
        )
