"""Unit tests for abstraction trees."""

import pytest

from repro.core.tree import AbstractionTree, TreeNode


@pytest.fixture
def small_tree():
    return AbstractionTree.from_nested(
        ("root", [("a", ["a1", "a2"]), ("b", ["b1", "b2", "b3"]), "c"])
    )


class TestConstruction:
    def test_from_nested_counts(self, small_tree):
        assert small_tree.size == 9
        assert small_tree.leaf_labels == {"a1", "a2", "b1", "b2", "b3", "c"}

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            AbstractionTree.from_nested(("r", ["x", "x"]))

    def test_bad_spec_rejected(self):
        with pytest.raises(TypeError):
            AbstractionTree.from_nested(123)

    def test_to_nested_roundtrip(self, small_tree):
        rebuilt = AbstractionTree.from_nested(small_tree.to_nested())
        assert rebuilt.labels == small_tree.labels

    def test_copy_is_deep(self, small_tree):
        clone = small_tree.copy()
        clone.root.children[0].add_child(TreeNode("new"))
        assert "new" not in small_tree


class TestStructureQueries:
    def test_parent_child(self, small_tree):
        assert small_tree.parent("a1") == "a"
        assert small_tree.parent("root") is None
        assert small_tree.children("b") == ["b1", "b2", "b3"]

    def test_ancestors(self, small_tree):
        assert small_tree.ancestors("a1") == ["a", "root"]
        assert small_tree.ancestors("a1", include_self=True) == ["a1", "a", "root"]

    def test_descendants(self, small_tree):
        assert set(small_tree.descendants("a")) == {"a1", "a2"}
        assert "a" in small_tree.descendants("a", include_self=True)

    def test_is_descendant_reflexive(self, small_tree):
        assert small_tree.is_descendant("a1", "a1")

    def test_is_descendant_transitive(self, small_tree):
        assert small_tree.is_descendant("a1", "root")
        assert not small_tree.is_descendant("root", "a1")

    def test_is_descendant_unknown_labels(self, small_tree):
        assert not small_tree.is_descendant("nope", "root")

    def test_leaves_under(self, small_tree):
        assert small_tree.leaves_under("b") == ["b1", "b2", "b3"]
        assert small_tree.leaves_under("c") == ["c"]
        assert len(small_tree.leaves_under("root")) == 6

    def test_lca(self, small_tree):
        assert small_tree.lca("a1", "a2") == "a"
        assert small_tree.lca("a1", "b1") == "root"
        assert small_tree.lca("c", "c") == "c"

    def test_height_width(self, small_tree):
        assert small_tree.height == 2
        assert small_tree.width == 3


class TestCuts:
    def test_count_cuts_small(self, small_tree):
        # leaf-only subtree counts: a -> 2, b -> 2, c -> 1; root = 1 + 2*2*1.
        assert small_tree.count_cuts() == 5

    def test_iter_cuts_matches_count(self, small_tree):
        cuts = list(small_tree.iter_cuts())
        assert len(cuts) == small_tree.count_cuts()
        assert len(set(cuts)) == len(cuts)

    def test_root_cut_and_leaf_cut_present(self, small_tree):
        cuts = set(small_tree.iter_cuts())
        assert frozenset(["root"]) in cuts
        assert frozenset(small_tree.leaf_labels) in cuts

    def test_single_leaf_tree(self):
        tree = AbstractionTree.from_nested("x")
        assert tree.count_cuts() == 1
        assert list(tree.iter_cuts()) == [frozenset(["x"])]

    def test_figure2_count(self):
        from repro.workloads.telephony import plans_tree

        # Figure 2: SB->2, Y->2, F->2, Standard->2, Special->(2*2*1)+1=5,
        # Business->(2*1)+1=3; root = 2*5*3 + 1 = 31.
        assert plans_tree().count_cuts() == 31


class TestCleaning:
    def test_removes_absent_leaves(self, small_tree):
        cleaned = small_tree.clean({"a1", "a2", "b1", "c"})
        assert cleaned.leaf_labels == {"a1", "a2", "b1", "c"}

    def test_splices_single_child_internal(self, small_tree):
        cleaned = small_tree.clean({"b1", "c"})
        # 'b' had one surviving child -> spliced to b1; 'a' vanished.
        assert "b" not in cleaned.labels
        assert "a" not in cleaned.labels
        assert cleaned.leaf_labels == {"b1", "c"}

    def test_returns_none_when_everything_vanishes(self, small_tree):
        assert small_tree.clean({"zz"}) is None

    def test_root_splice(self):
        tree = AbstractionTree.from_nested(("r", [("q", ["m1", "m2"]), "m9"]))
        cleaned = tree.clean({"m1", "m2"})
        assert cleaned.root.label == "q"

    def test_example13_cleaning(self):
        """Footnote 1 on Figure 2 with the Example 13 variables."""
        from repro.workloads.telephony import example13_polynomials, plans_tree

        cleaned = plans_tree().clean(example13_polynomials().variables)
        assert "p2" not in cleaned.labels
        assert "Standard" not in cleaned.labels  # spliced to p1
        assert "Y" not in cleaned.labels  # spliced to y1
        assert "F" not in cleaned.labels  # spliced to f1
        assert cleaned.leaf_labels == {"p1", "f1", "y1", "v", "b1", "b2", "e"}
