"""Micro-benchmarks for the core primitives (statistical, multi-round).

Not a paper figure — these isolate the building blocks the figures
compose: the §4.1 loss index, abstraction application, valuation, and
the greedy working state. Regressions here explain regressions there.
"""

from repro.algorithms.greedy import greedy_vvs
from repro.algorithms.optimal import optimal_vvs, optimal_vvs_naive
from repro.core.abstraction import LossIndex, abstract_counts
from repro.core.parser import parse
from benchmarks import common

TREE_FANOUTS = (8,)


def _workload():
    provenance = common.workload_provenance("telephony")
    tree = common.workload_tree("telephony", TREE_FANOUTS).clean(
        provenance.variables
    )
    return provenance, tree


def test_loss_index_build(benchmark):
    provenance, tree = _workload()
    index = benchmark(LossIndex, provenance, tree)
    assert index.max_ml >= 0


def test_abstract_counts_root_cut(benchmark):
    provenance, tree = _workload()
    mapping = common.forest_of(tree).root_vvs().mapping()
    size, granularity = benchmark(abstract_counts, provenance, mapping)
    assert size <= provenance.num_monomials


def test_full_valuation(benchmark):
    provenance, _ = _workload()
    assignment = {var: 0.9 for var in provenance.variables}
    values = benchmark(provenance.evaluate, assignment)
    assert len(values) == len(provenance)


def test_polynomial_parse(benchmark):
    text = " + ".join(f"{i + 1}*x{i % 7}*y{i % 5}" for i in range(200))
    polynomial = benchmark(parse, text)
    assert polynomial.num_monomials <= 200


def test_optimal_vvs_end_to_end(benchmark):
    provenance, tree = _workload()
    bound = common.feasible_bound(provenance, tree)
    result = benchmark(optimal_vvs, provenance, tree, bound, clean=False)
    assert result.abstracted_size <= bound


def test_greedy_vvs_end_to_end(benchmark):
    provenance, tree = _workload()
    bound = common.feasible_bound(provenance, tree)
    result = benchmark(
        greedy_vvs, provenance, common.forest_of(tree), bound, clean=False
    )
    assert result.abstracted_size <= bound


def test_ablation_naive_vs_optimized_dp(benchmark):
    """The §4.1 optimizations' gain: the literal pseudo-code version.

    Compare this entry's timing against ``test_optimal_vvs_end_to_end``
    — the gap is what the hash-table ML index + sparse tables buy.
    """
    provenance, tree = _workload()
    bound = common.feasible_bound(provenance, tree)
    result = benchmark.pedantic(
        optimal_vvs_naive, args=(provenance, tree, bound),
        kwargs={"clean": False}, rounds=2, iterations=1,
    )
    assert result.abstracted_size <= bound
