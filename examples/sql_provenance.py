"""The paper's §1 query, written in actual SQL, through the full pipeline.

Parses the SQL text, executes it with provenance parameterization,
compresses the result with the Figure 2/3 trees, and runs the "what if
prices change uniformly per quarter" scenario on the compressed form.

Run:  python examples/sql_provenance.py
"""

from repro.algorithms import greedy_vvs
from repro.core import AbstractionForest, Valuation
from repro.engine import execute_sql
from repro.workloads.telephony import (
    figure1_database,
    figure1_plan_variables,
    months_tree,
    plans_tree,
)

QUERY = """
SELECT Zip, SUM(Calls.Dur * Plans.Price)
FROM Calls, Cust, Plans
WHERE Cust.Plan = Plans.Plan
  AND Cust.ID = Calls.CID
  AND Calls.Mo = Plans.Mo
GROUP BY Cust.Zip
"""


def main():
    cust, calls, plans = figure1_database()
    plan_vars = figure1_plan_variables()

    # Run the SQL with scenario variables on each contribution: the plan
    # parameter (p1, f1, ...) and the month parameter (m1, m3).
    result = execute_sql(
        QUERY,
        {"Cust": cust, "Calls": calls, "Plans": plans},
        params=lambda row: [
            plan_vars[row["Cust.Plan"]],
            f"m{row['Calls.Mo']}",
        ],
    )
    print("provenance per zip code:")
    for key, polynomial in result:
        print(f"  {key[0]}: {polynomial}")

    provenance = result.polynomials
    forest = AbstractionForest([plans_tree(), months_tree()])
    abstraction = greedy_vvs(provenance, forest, bound=4)
    compact = abstraction.apply(provenance)
    print(f"\nabstracted to {compact.num_monomials} monomials with cut "
          f"{sorted(abstraction.vvs.labels)}")

    # The quarterly scenario is uniform on the chosen groups -> exact.
    scenario = Valuation({"m1": 0.8, "m2": 0.8, "m3": 0.8})
    lifted = scenario.lift(abstraction.vvs)
    print("\nQ1 prices -20%:")
    for (key, _), before, after in zip(
        result, scenario.evaluate(provenance), lifted.evaluate(compact)
    ):
        exact = "exact" if abs(before - after) < 1e-9 else "approx"
        print(f"  zip {key[0]}: {before:8.2f} ({exact} on compressed: "
              f"{after:8.2f})")


if __name__ == "__main__":
    main()
