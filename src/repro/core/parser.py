"""A small parser for the textual polynomial notation used in the paper.

Accepts expressions such as ``"220.8*p1*m1 + 240*p1*m3"`` or
``"x^2*y - 3"``. The grammar (whitespace-insensitive)::

    polynomial := ['+'|'-'] term (('+'|'-') term)*
    term       := factor ('*' factor)*
    factor     := NUMBER | VARIABLE ['^' INTEGER]

Variables are ``[A-Za-z_][A-Za-z0-9_]*``; numbers are ints or floats.
Numbers multiply into the coefficient; repeated variables multiply
exponents. ``parse`` is the inverse of ``str(Polynomial)`` up to term
ordering and float formatting.
"""

import re

from repro.core.polynomial import Monomial, Polynomial
from repro.errors import ReproError

__all__ = ["parse", "parse_set", "ParseError"]


class ParseError(ReproError, ValueError):
    """Raised when a polynomial string cannot be parsed."""


_TOKEN = re.compile(
    r"\s*(?:(?P<number>\d+\.\d+|\d+|\.\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>[-+*^()])"
    r")"
)


def _tokenize(text):
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        if match.group("number") is not None:
            literal = match.group("number")
            tokens.append(("number", float(literal) if "." in literal else int(literal)))
        elif match.group("name") is not None:
            tokens.append(("name", match.group("name")))
        else:
            tokens.append(("op", match.group("op")))
    tokens.append(("end", None))
    return tokens


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    def peek(self):
        return self.tokens[self.index]

    def advance(self):
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect_op(self, op):
        kind, value = self.advance()
        if kind != "op" or value != op:
            raise ParseError(f"expected {op!r}, got {value!r}")

    def parse_polynomial(self):
        terms = []
        sign = 1
        kind, value = self.peek()
        if kind == "op" and value in "+-":
            self.advance()
            sign = -1 if value == "-" else 1
        terms.append(self.parse_term(sign))
        while True:
            kind, value = self.peek()
            if kind == "op" and value in "+-":
                self.advance()
                terms.append(self.parse_term(-1 if value == "-" else 1))
            else:
                break
        kind, value = self.peek()
        if kind != "end":
            raise ParseError(f"trailing input starting at {value!r}")
        return Polynomial.from_terms(terms)

    def parse_term(self, sign):
        coefficient = sign
        powers = {}
        while True:
            kind, value = self.advance()
            if kind == "number":
                coefficient *= value
            elif kind == "name":
                exponent = 1
                next_kind, next_value = self.peek()
                if next_kind == "op" and next_value == "^":
                    self.advance()
                    exp_kind, exp_value = self.advance()
                    if exp_kind != "number" or not isinstance(exp_value, int):
                        raise ParseError("exponent must be a positive integer")
                    exponent = exp_value
                powers[value] = powers.get(value, 0) + exponent
            else:
                raise ParseError(f"expected number or variable, got {value!r}")
            kind, value = self.peek()
            if kind == "op" and value == "*":
                self.advance()
                continue
            break
        return coefficient, Monomial(powers.items())


def parse(text):
    """Parse a single polynomial.

    >>> p = parse("2*x^2*y + 3*y - 1")
    >>> p.num_monomials
    3
    >>> p.coefficient(Monomial.of(("x", 2), "y"))
    2
    """
    return _Parser(_tokenize(text)).parse_polynomial()


def parse_set(texts):
    """Parse an iterable of polynomial strings into a PolynomialSet."""
    from repro.core.polynomial import PolynomialSet

    return PolynomialSet(parse(text) for text in texts)
