"""Inducing abstraction trees from the provenance itself (extension).

The paper assumes the analyst supplies abstraction trees (from
ontologies or by hand). This example profiles a provenance set, induces
a compatible abstraction forest automatically from variable
co-occurrence, and compares the induced forest's compression against
the hand-made semantic trees on the telephony workload.

Run:  python examples/auto_trees.py
"""

from repro.algorithms import greedy_vvs
from repro.core import AbstractionForest
from repro.core.statistics import profile
from repro.util import format_table
from repro.workloads.induction import induce_forest
from repro.workloads.telephony import TelephonyBenchmark


def main():
    bench = TelephonyBenchmark(
        customers=200, num_plans=16, months=12, zip_pool=25, seed=13
    )
    provenance = bench.provenance()

    report = profile(provenance)
    print(f"profile: {report.num_polynomials} polynomials, "
          f"{report.num_monomials} monomials, "
          f"{report.num_variables} variables, shape '{report.shape}'")

    # Hand-made semantic trees (what the paper assumes exists).
    semantic = AbstractionForest(
        [bench.plans_abstraction_tree((4,)), bench.months_abstraction_tree()]
    )
    # Induced from the data (what this extension provides).
    induced = induce_forest(provenance)
    print(f"\ninduced forest: {len(induced)} trees over "
          f"{sorted(len(tree.leaf_labels) for tree in induced)} leaves "
          "(conflict coloring separated the parameter domains)")

    bound = provenance.num_monomials // 2
    rows = []
    for name, forest in [("semantic", semantic), ("induced", induced)]:
        result = greedy_vvs(provenance, forest, bound)
        rows.append([
            name,
            bound,
            result.abstracted_size,
            result.variable_loss,
            result.abstracted_granularity,
        ])
    print()
    print(format_table(
        ["trees", "bound", "|P↓S|_M", "VL", "granularity kept"],
        rows,
        title="Hand-made vs induced abstraction trees (greedy, same bound)",
    ))
    print("\nNote: induced trees optimize *compressibility*; semantic trees "
          "guarantee the groups are MEANINGFUL to an analyst. Use induction "
          "when no ontology exists, then edit.")


if __name__ == "__main__":
    main()
