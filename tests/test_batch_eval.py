"""Tests for the compiled batch evaluator (PolynomialSet.evaluate_batch).

The contract: ``evaluate_batch(assignments)[i] ==
evaluate(assignments[i])`` for every assignment, within 1e-9 — plus the
shape/normalization edge cases the compiled layout has to get right
(constant monomials, zero polynomials, empty sets, per-valuation
defaults) and the compile-cache lifecycle.
"""

import numpy
import pytest

from repro.core.parser import parse_set
from repro.core.polynomial import Monomial, Polynomial, PolynomialSet
from repro.core.valuation import Valuation
from repro.scenarios.analysis import evaluate_scenarios
from repro.scenarios.scenario import Scenario
from repro.workloads.random_polys import random_polynomials
from repro.util.rng import derive_rng


def assert_matches_scalar(polynomials, assignments, default=1.0):
    batch = polynomials.evaluate_batch(assignments, default)
    assert batch.shape == (len(assignments), len(polynomials))
    for row, assignment in enumerate(assignments):
        if isinstance(assignment, Valuation):
            expected = assignment.evaluate(polynomials)
        else:
            expected = polynomials.evaluate(assignment, default)
        assert numpy.allclose(batch[row], expected, atol=1e-9, rtol=1e-9)


class TestEquivalence:
    def test_random_workload_against_scalar_evaluate(self):
        polynomials = random_polynomials(
            12, 30, [[f"a{i}" for i in range(10)], [f"b{i}" for i in range(6)]],
            seed=3, extra_variables=4,
        )
        rng = derive_rng(9, "batch-eval-test")
        variables = sorted(polynomials.variables)
        assignments = [
            {
                variables[rng.randrange(len(variables))]: rng.uniform(-2.0, 2.0)
                for _ in range(rng.randrange(1, 8))
            }
            for _ in range(40)
        ]
        assert_matches_scalar(polynomials, assignments)

    def test_exponents_above_one(self):
        polynomials = parse_set(["3*x^3*y + 2*x^2 + 5", "x^4 - y^2"])
        assert_matches_scalar(
            polynomials,
            [{"x": 2.0, "y": -3.0}, {"x": -1.5}, {"y": 0.0}, {}],
        )

    def test_custom_default(self):
        polynomials = parse_set(["x*y + z"])
        assert_matches_scalar(polynomials, [{"x": 2.0}], default=0.0)

    def test_valuation_objects_honour_their_own_default(self):
        polynomials = parse_set(["x + y"])
        valuations = [
            Valuation({"x": 5.0}, default=0.0),
            Valuation({}, default=3.0),
        ]
        batch = polynomials.evaluate_batch(valuations)
        assert batch[0, 0] == pytest.approx(5.0)  # y defaults to 0
        assert batch[1, 0] == pytest.approx(6.0)  # both default to 3

    def test_unknown_variables_are_ignored(self):
        polynomials = parse_set(["2*x"])
        batch = polynomials.evaluate_batch([{"x": 3.0, "does-not-occur": 99.0}])
        assert batch[0, 0] == pytest.approx(6.0)


class TestNormalizationEdges:
    def test_constant_monomials(self):
        polynomials = parse_set(["7", "x + 2"])
        assert_matches_scalar(polynomials, [{}, {"x": 4.0}])

    def test_zero_polynomial_rows(self):
        polynomials = PolynomialSet([Polynomial.zero(), Polynomial.variable("x")])
        batch = polynomials.evaluate_batch([{"x": 2.0}])
        assert batch[0, 0] == 0.0
        assert batch[0, 1] == pytest.approx(2.0)

    def test_empty_set(self):
        assert PolynomialSet().evaluate_batch([{}, {}]).shape == (2, 0)

    def test_no_assignments(self):
        polynomials = parse_set(["x"])
        assert polynomials.evaluate_batch([]).shape == (0, 1)

    def test_variable_free_set(self):
        polynomials = PolynomialSet([Polynomial.constant(4)])
        batch = polynomials.evaluate_batch([{}, {"anything": 2.0}])
        assert numpy.allclose(batch, 4.0)

    def test_fraction_coefficients_degrade_to_float(self):
        from fractions import Fraction

        polynomials = PolynomialSet(
            [Polynomial({Monomial.of("x"): Fraction(1, 3)})]
        )
        batch = polynomials.evaluate_batch([{"x": 3.0}])
        assert batch[0, 0] == pytest.approx(1.0)


class TestCompileCache:
    def test_compiled_is_cached(self):
        polynomials = parse_set(["x + y"])
        assert polynomials.compiled() is polynomials.compiled()

    def test_append_invalidates_cache(self):
        polynomials = parse_set(["x"])
        before = polynomials.evaluate_batch([{"x": 2.0}])
        assert before.shape == (1, 1)
        polynomials.append(Polynomial.variable("y", 3))
        after = polynomials.evaluate_batch([{"x": 2.0, "y": 2.0}])
        assert after.shape == (1, 2)
        assert after[0, 1] == pytest.approx(6.0)


class TestScenarioHelpers:
    def test_evaluate_scenarios_accepts_scenarios_and_dicts(self):
        polynomials = parse_set(["2*b1*m1 + 3*b1*m3", "b1*m1"])
        suite = [
            Scenario("discount", {"m1": 0.8}),
            Valuation({"m3": 1.5}),
            {"b1": 0.0},
        ]
        values = evaluate_scenarios(polynomials, suite)
        assert values.shape == (3, 2)
        assert values[0, 1] == pytest.approx(0.8)
        assert values[2, 0] == pytest.approx(0.0)
