"""The vertex-cover reduction (Appendix A, Lemma 29 / Theorem 26).

Given ``G = (V, E)`` and ``k``, build the uniformly partitioned
polynomial ``P⟨X, n, I⟩`` with one metavariable per vertex,
``I = {(i, j) | (v_i, v_j) ∈ E}``, and blowup ``n`` (the paper fixes
``n = |V|³``; tests use smaller blowups — the lemma's argument only
needs ``B < n²``, see :func:`decide_vertex_cover_via_abstraction`).

Lemma 29: ``G`` has a vertex cover of size ``k`` **iff** the instance
has a precise abstraction (w.r.t. its flat forest) with granularity
``K = (|V| − k)·n + k`` and some size ``B ≤ |V|⁵``. Executable here in
both directions:

* :func:`cover_to_cut` maps a cover to its precise VVS;
* :func:`cut_to_cover` reads the cover back off a VVS;
* :func:`decide_vertex_cover_via_abstraction` solves VC by scanning the
  (closed-form) abstraction landscape, which is how the tests confirm
  the reduction end-to-end against the brute-force VC solver.
"""

from __future__ import annotations

from itertools import combinations

from repro.hardness.flat import claim23_counts, flat_abstraction, flat_cut
from repro.hardness.uniform import uniformly_partitioned

__all__ = [
    "ReductionInstance",
    "build_instance",
    "cover_to_cut",
    "cut_to_cover",
    "decide_vertex_cover_via_abstraction",
]


class ReductionInstance:
    """The abstraction instance a graph reduces to."""

    __slots__ = ("graph", "blowup", "index_pairs", "num_meta")

    def __init__(self, graph, blowup):
        if graph.num_vertices < 2:
            raise ValueError("reduction needs at least two vertices")
        if not graph.edges:
            raise ValueError("reduction needs at least one edge")
        self.graph = graph
        self.blowup = blowup
        self.num_meta = graph.num_vertices
        # Vertices are 0-based; metavariable indices 1-based, per paper.
        self.index_pairs = [(u + 1, v + 1) for u, v in graph.edges]

    def polynomial(self):
        """Materialize ``P⟨X, n, I⟩`` (exponential in print size — only
        for small instances; the decision procedure uses Claim 23's
        closed forms instead)."""
        return uniformly_partitioned(self.num_meta, self.blowup, self.index_pairs)

    def forest(self):
        """The flat abstraction forest."""
        return flat_abstraction(self.num_meta, self.blowup)

    def granularity_for_cover_size(self, k):
        """Lemma 29's ``K = (|V| − k)·n + k``."""
        return (self.num_meta - k) * self.blowup + k

    def size_bound(self):
        """Lemma 29's ``B`` range upper end, ``|V|⁵`` scaled to ``n``.

        The paper fixes ``n = |V|³`` so ``|E|·n ≤ |V|²·n = |V|⁵``; with a
        general blowup the same role is played by ``|E|·n`` (the size
        when every edge is covered), and the argument requires only
        ``bound < n²`` so uncovered edges are detectable.
        """
        return len(self.index_pairs) * self.blowup


def build_instance(graph, blowup=None):
    """Reduction instance for ``graph`` (default paper blowup ``|V|³``)."""
    if blowup is None:
        blowup = graph.num_vertices ** 3
    return ReductionInstance(graph, blowup)


def cover_to_cut(instance, cover):
    """The VVS a vertex cover induces (abstract exactly the cover)."""
    chosen = {v + 1 for v in cover}
    return flat_cut(
        instance.forest(), chosen, instance.num_meta, instance.blowup
    )


def cut_to_cover(vvs):
    """Vertices whose metavariables the VVS chose (0-based)."""
    cover = set()
    for label in vvs.labels:
        if label.startswith("x(") and label.endswith(")"):
            cover.add(int(label[2:-1]) - 1)
    return cover


def decide_vertex_cover_via_abstraction(graph, k, blowup=None):
    """Decide vertex cover through the abstraction decision problem.

    Scans all metavariable subsets ``Y`` of size ``k`` (each subset *is*
    a flat cut) using Claim 23's closed-form counts, and reports whether
    any is precise for granularity ``K = (|V|−k)·n + k`` with size
    ``B ≤ |E|·n`` — by Lemma 29 this holds iff a size-``k`` cover exists.
    Exponential, as it must be (the problem is NP-hard); fine for the
    test-sized graphs.
    """
    instance = build_instance(graph, blowup)
    # An uncovered edge contributes n² monomials; covered edges at most
    # n each. The threshold test "size ≤ |E|·n" separates the two cases
    # exactly when n² + |E| − 1 > |E|·n, i.e. (n−1)(n−|E|+1) > 0 — so
    # the blowup must be at least max(2, |E|). The paper's n = |V|³
    # always satisfies this since |E| < |V|².
    minimum_blowup = max(2, len(instance.index_pairs))
    if instance.blowup < minimum_blowup:
        raise ValueError(
            f"blowup {instance.blowup} too small for a sound reduction; "
            f"need at least {minimum_blowup}"
        )
    target_granularity = instance.granularity_for_cover_size(k)
    max_size = instance.size_bound()
    for chosen in combinations(range(1, instance.num_meta + 1), k):
        size, granularity = claim23_counts(
            instance.num_meta, instance.blowup, instance.index_pairs, set(chosen)
        )
        if granularity == target_granularity and size <= max_size:
            return True
    return False
