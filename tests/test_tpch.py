"""Tests for the TPC-H generator and the parameterized queries."""

import pytest

from repro.core.forest import AbstractionForest
from repro.workloads.tpch import (
    NATIONS,
    REGIONS,
    generate,
    part_tree,
    q1_pricing_summary,
    q5_local_supplier_volume,
    q6_forecast_revenue,
    query_provenance,
    supplier_tree,
    supplier_variables,
)


class TestGenerator:
    def test_deterministic(self):
        a = generate(scale_factor=0.0005, seed=3)
        b = generate(scale_factor=0.0005, seed=3)
        assert a.lineitem == b.lineitem
        assert a.orders == b.orders

    def test_seed_changes_data(self):
        a = generate(scale_factor=0.0005, seed=3)
        b = generate(scale_factor=0.0005, seed=4)
        assert a.lineitem != b.lineitem

    def test_fixed_tables(self, tiny_tpch):
        assert len(tiny_tpch.region) == len(REGIONS) == 5
        assert len(tiny_tpch.nation) == len(NATIONS) == 25

    def test_cardinality_ratios(self, tiny_tpch):
        assert len(tiny_tpch.lineitem) > len(tiny_tpch.orders)
        assert len(tiny_tpch.orders) > len(tiny_tpch.customer)
        assert len(tiny_tpch.partsupp) == 4 * len(tiny_tpch.part)

    def test_scale_factor_scales(self):
        small = generate(scale_factor=0.0005, seed=1)
        large = generate(scale_factor=0.001, seed=1)
        assert large.total_rows > small.total_rows

    def test_foreign_keys_resolve(self, tiny_tpch):
        supplier_keys = {row[0] for row, _ in tiny_tpch.supplier}
        part_keys = {row[0] for row, _ in tiny_tpch.part}
        order_keys = {row[0] for row, _ in tiny_tpch.orders}
        for row, _ in tiny_tpch.lineitem:
            assert row[0] in order_keys
            assert row[1] in part_keys
            assert row[2] in supplier_keys

    def test_value_ranges(self, tiny_tpch):
        for row, _ in tiny_tpch.lineitem:
            discount, tax = row[6], row[7]
            assert 0.0 <= discount <= 0.10
            assert 0.0 <= tax <= 0.08
            assert row[8] in {"A", "N", "R"}
            assert row[9] in {"F", "O"}

    def test_dates_well_formed(self, tiny_tpch):
        for row, _ in tiny_tpch.orders:
            date = row[4]
            year, rest = divmod(date, 10000)
            month, day = divmod(rest, 100)
            assert 1992 <= year <= 1998
            assert 1 <= month <= 12
            assert 1 <= day <= 28


class TestQueries:
    def test_q1_has_eight_polynomials(self, tiny_tpch):
        """4 (returnflag, linestatus) groups × 2 aggregates — the paper's 8."""
        provenance = query_provenance(tiny_tpch, "q1")
        assert len(provenance) == 8

    def test_q1_groups(self, tiny_tpch):
        results = q1_pricing_summary(tiny_tpch)
        keys = set(results["sum_disc_price"].groups)
        assert keys == {("A", "F"), ("N", "F"), ("N", "O"), ("R", "F")}

    def test_q1_constant_term_plus_bucket_monomials(self, tiny_tpch):
        from repro.core.polynomial import Monomial

        results = q1_pricing_summary(tiny_tpch)
        for _, polynomial in results["sum_disc_price"]:
            constant = polynomial.coefficient(Monomial.ONE)
            assert constant > 0  # the undiscounted revenue
            for monomial in polynomial.monomials:
                if monomial is not Monomial.ONE and monomial.powers:
                    names = sorted(v[0] for v in monomial.variables)
                    assert names == ["p", "s"]

    def test_q1_valuation_at_one_matches_sql(self, tiny_tpch):
        """All-ones valuation == the plain SUM(extprice*(1-disc))."""
        ship_date = 19981201
        results = q1_pricing_summary(tiny_tpch, ship_date=ship_date)
        expected = {}
        for row, _ in tiny_tpch.lineitem:
            if row[10] > ship_date:
                continue
            key = (row[8], row[9])
            expected[key] = expected.get(key, 0.0) + row[5] * (1 - row[6])
        for key, polynomial in results["sum_disc_price"]:
            assert polynomial.evaluate({}) == pytest.approx(expected[key])

    def test_q5_nations(self, tiny_tpch):
        result = q5_local_supplier_volume(tiny_tpch)
        nation_names = {name for name, _ in NATIONS}
        for key in result.groups:
            assert key[0] in nation_names

    def test_q5_region_filter_reduces_groups(self, tiny_tpch):
        all_regions = q5_local_supplier_volume(tiny_tpch)
        asia = q5_local_supplier_volume(tiny_tpch, region="ASIA")
        assert len(asia) <= len(all_regions)

    def test_q6_single_group_no_constant(self, tiny_tpch):
        from repro.core.polynomial import Monomial

        result = q6_forecast_revenue(tiny_tpch)
        assert list(result.groups) == [()]
        polynomial = result.polynomial(())
        assert polynomial.coefficient(Monomial.ONE) == 0

    def test_q10_many_small_polynomials(self, tiny_tpch):
        provenance = query_provenance(tiny_tpch, "q10")
        if len(provenance) == 0:
            pytest.skip("no returned items at this scale")
        average = provenance.num_monomials / len(provenance)
        q1 = query_provenance(tiny_tpch, "q1")
        assert average < q1.num_monomials / len(q1)

    def test_unknown_query_rejected(self, tiny_tpch):
        with pytest.raises(ValueError):
            query_provenance(tiny_tpch, "q99")

    def test_scenario_shifts_revenue_down(self, tiny_tpch):
        """Raising every discount by 10% lowers net revenue."""
        results = q1_pricing_summary(tiny_tpch)
        for _, polynomial in results["sum_disc_price"]:
            base = polynomial.evaluate({})
            bumped = polynomial.evaluate(
                {var: 1.1 for var in polynomial.variables}
            )
            assert bumped < base


class TestTrees:
    def test_supplier_tree_compatible_after_cleaning(self, tiny_tpch):
        provenance = query_provenance(tiny_tpch, "q5")
        forest = AbstractionForest([supplier_tree((8,))])
        cleaned = forest.clean(provenance)
        cleaned.check_compatible(provenance)

    def test_supplier_variables(self):
        assert supplier_variables(4) == ["s0", "s1", "s2", "s3"]

    def test_part_tree_shape(self):
        tree = part_tree((2, 2))
        assert tree.height == 3
        assert len(tree.leaf_labels) == 128
