"""Uniformly partitioned polynomials (Appendix A, Definition 16).

``P⟨X, n, I⟩`` is the polynomial ``Σ_{(a,b)∈I} P^(a,b)`` with
``P^(a,b) = Σ_{i,j∈1..n} x^(a)_i · x^(b)_j`` — a bipartite "all pairs"
block per index pair. Claim 18 gives the closed-form sizes
(``|P|_M = |I|·n²``, ``|P|_V = |X|·n``), which the tests check against
the materialized polynomial.

Variable naming follows the paper: metavariable ``x^(a)`` becomes the
string ``x(a)``, its ``i``-th variable ``x(a)_i``.
"""

from __future__ import annotations

from repro.core.polynomial import Monomial, Polynomial

__all__ = [
    "meta_name",
    "variable_name",
    "uniformly_partitioned",
    "claim18_sizes",
]


def meta_name(index):
    """The metavariable ``x^(index)`` as a string."""
    return f"x({index})"


def variable_name(index, i):
    """The variable ``x^(index)_i`` as a string."""
    return f"x({index})_{i}"


def uniformly_partitioned(num_meta, blowup, index_pairs):
    """Materialize ``P⟨X, n, I⟩`` (Definition 16).

    :param num_meta: ``|X|`` — metavariable count (indices 1..num_meta).
    :param blowup: ``n`` — variables per metavariable (indices 1..n).
    :param index_pairs: ``I ⊆ {1..|X|}²`` with ``a < b`` for each pair.

    >>> p = uniformly_partitioned(4, 3, [(1, 2), (1, 3), (2, 3), (2, 4)])
    >>> p.num_monomials, p.num_variables   # Example 17 / Example 19
    (36, 12)
    """
    terms = {}
    for a, b in index_pairs:
        if not a < b:
            raise ValueError(f"index pair ({a}, {b}) must satisfy a < b")
        if not (1 <= a <= num_meta and 1 <= b <= num_meta):
            raise ValueError(f"index pair ({a}, {b}) out of range 1..{num_meta}")
        for i in range(1, blowup + 1):
            for j in range(1, blowup + 1):
                monomial = Monomial.of(variable_name(a, i), variable_name(b, j))
                terms[monomial] = terms.get(monomial, 0) + 1
    return Polynomial(terms)


def claim18_sizes(num_meta, blowup, index_pairs):
    """Claim 18's closed forms: ``(|P|_M, |P|_V)``.

    >>> claim18_sizes(4, 3, [(1, 2), (1, 3), (2, 3), (2, 4)])
    (36, 12)
    """
    return len(set(index_pairs)) * blowup * blowup, num_meta * blowup
