"""Vectorized scenario evaluation (the Figure 10 workload, batched).

The paper's entire case for abstraction is that analysts valuate *many*
hypothetical scenarios against the (compressed) provenance. Evaluating
one scenario with :meth:`Polynomial.evaluate` walks every monomial in
Python; over a 256-scenario suite that is 256 full interpreter passes.
:class:`CompiledPolynomialSet` compiles a polynomial multiset **once**
into flat NumPy arrays over the interned variable alphabet and then
answers whole scenario suites with a handful of array operations.

Layout:

* variables become array columns (``_columns`` maps var id → column);
* monomials are *layered* by factor position: layer ``j`` holds the
  ``j``-th ``(column, exponent)`` factor of every monomial that has one.
  Provenance monomials are short (a couple of tree variables plus free
  indeterminates), so there are only a few layers, each a flat gather;
* every polynomial owns a contiguous run of monomials, delimited by
  ``_poly_starts``, with coefficients in ``_coeffs``.

Evaluation of ``S`` scenarios builds the ``(S, V)`` assignment matrix,
then forms the ``(S, M)`` monomial-value matrix layer by layer
(gather → optional power → in-place multiply) and reduces polynomial
runs with ``add.reduceat`` — no per-monomial Python. Exponents are
overwhelmingly 1 in provenance (multilinear monomials), so the power is
only applied at the rare factors with exponent ≠ 1.

Normalization: layer 0 gives every monomial a factor — constant
monomials get ``x₀⁰ == 1`` — and empty polynomials contribute a
zero-coefficient constant monomial, so every ``reduceat`` segment is
non-empty and the hot path has no special cases.

Coefficients and assignment values are degraded to ``float64`` — exact
``fractions.Fraction`` arithmetic needs the scalar
:meth:`Polynomial.evaluate` path.

Delta engine: the paper's workload perturbs a *handful* of variables
per scenario around a shared baseline ("repeatedly modifying the data
and observing the induced effect"), so recomputing every monomial for
every scenario wastes almost all of the dense work on values that did
not move. ``engine="delta"`` valuates the all-default baseline once,
then per scenario recomputes only the monomial rows whose variables
changed (found through an inverted column→monomial index built lazily
from the compiled layers) and re-reduces only the polynomial segments
containing them. The patched segments are summed by the *same*
``add.reduceat`` machinery over the same float values in the same
order, so delta answers are **bit-identical** to dense ones — the
property the test suite asserts. ``engine="auto"`` picks delta when
the mean number of changed variables per scenario is a small fraction
of the alphabet (:func:`choose_engine`).
"""

from __future__ import annotations

import numpy

__all__ = [
    "CompiledPolynomialSet",
    "DELTA_SPARSITY_THRESHOLD",
    "ENGINES",
    "choose_engine",
]

#: The valid ``engine=`` names accepted across the stack.
ENGINES = ("dense", "delta", "auto")

#: ``engine="auto"`` picks the delta path when the mean number of
#: changed variables per scenario is at most this fraction of the
#: compiled alphabet — the "mean changed-vars ≪ V" heuristic, used
#: when nothing is known about monomial fan-in.
DELTA_SPARSITY_THRESHOLD = 0.25

#: The sharper form of the same heuristic a compiled set can apply:
#: scenarios are sparse *for delta purposes* when the expected number
#: of affected monomials — mean changed variables × average monomials
#: per variable — is at most this fraction of the multiset. Changed
#: variables undercount the work when variables fan into many
#: monomials (20 changed vars of 288 sounds sparse, but can touch 20%
#: of the monomials, where dense wins).
DELTA_AFFECTED_THRESHOLD = 0.15

#: At most this many per-default baselines are cached per compiled set
#: (suites mixing unboundedly many defaults recompute past the cap).
_MAX_BASELINE_CACHE = 32


def _int_power(base, exps):
    """Elementwise ``base ** exps`` for small non-negative int exponents.

    NumPy's ``**`` ufunc is *not* bit-reproducible across array
    groupings — the SIMD inner loop and the scalar tail can round the
    same ``pow(x, 2)`` differently, so a value computed inside a large
    dense layer and the same value recomputed in a small delta patch
    could disagree in the last bit, breaking the engines'
    bit-identity contract. Multiplication, by contrast, is correctly
    rounded per element however the array is laid out, so integer
    powers are computed as a left-associated multiply chain
    (``x, x·x, (x·x)·x, …``) whose per-element operation sequence
    depends only on that element's exponent. Provenance exponents are
    tiny (overwhelmingly 1, never negative), so the O(max exponent)
    loop is irrelevant in practice.

    ``base`` may be any-dimensional with exponents aligned to its last
    axis; a fresh array is returned (``base`` is not written).
    """
    result = base.copy()
    result[..., exps == 0] = 1.0
    highest = int(exps.max()) if exps.size else 0
    for power in range(2, highest + 1):
        deeper = exps >= power
        result[..., deeper] *= base[..., deeper]
    return result


def choose_engine(mean_changes, num_variables, *,
                  mean_monomials_per_variable=None, num_monomials=None):
    """``"dense"`` or ``"delta"`` for scenarios averaging
    ``mean_changes`` changed variables over a ``num_variables``
    alphabet — the ``engine="auto"`` policy.

    With the optional fan-in statistics (a compiled set always passes
    them), the decision compares the *expected affected monomials* —
    ``mean_changes × mean_monomials_per_variable`` — against
    :data:`DELTA_AFFECTED_THRESHOLD` of the multiset; without them it
    falls back to comparing ``mean_changes`` against
    :data:`DELTA_SPARSITY_THRESHOLD` of the alphabet.

    >>> choose_engine(1.0, 512)
    'delta'
    >>> choose_engine(400.0, 512)
    'dense'
    >>> choose_engine(20.0, 288, mean_monomials_per_variable=18.5,
    ...               num_monomials=1781)
    'dense'
    """
    if num_variables <= 0:
        return "dense"
    if mean_monomials_per_variable is not None and num_monomials:
        affected = mean_changes * mean_monomials_per_variable
        if affected <= DELTA_AFFECTED_THRESHOLD * num_monomials:
            return "delta"
        return "dense"
    if mean_changes <= DELTA_SPARSITY_THRESHOLD * num_variables:
        return "delta"
    return "dense"


class _DeltaIndex:
    """The compile-time structures behind ``engine="delta"``.

    Built lazily from the compiled layers on first delta evaluation
    (dense-only users pay nothing) and rebuilt the same way after
    unpickling — it never travels.

    * ``depths`` — factor count per monomial row;
    * ``pad_cols`` / ``pad_exps`` — ``(depth, M)`` padded factor
      columns/exponents, so affected rows recompute with the exact
      layer-by-layer multiply order of the dense path;
    * ``col_starts`` / ``col_rows`` — the inverted CSR index: the
      monomial rows touching each column (exponent-0 normalization
      factors excluded — they touch nothing);
    * ``mono_poly`` — monomial row → polynomial index;
    * ``column_cache`` — per-column ``(rows, polys, reduce_idx)``
      plans, the single-changed-variable fast path one-at-a-time
      sweeps hit on every scenario.
    """

    __slots__ = (
        "depths",
        "pad_cols",
        "pad_exps",
        "col_starts",
        "col_rows",
        "mono_poly",
        "any_nonunit",
        "column_cache",
    )

    def __init__(self, layers, poly_starts, num_monomials, num_variables):
        depth = len(layers)
        self.depths = numpy.zeros(num_monomials, dtype=numpy.intp)
        self.pad_cols = numpy.zeros((depth, num_monomials), dtype=numpy.intp)
        self.pad_exps = numpy.ones((depth, num_monomials), dtype=numpy.int64)
        row_parts = []
        col_parts = []
        for j, (selector, cols, nonunit, exps) in enumerate(layers):
            rows = (
                numpy.arange(num_monomials, dtype=numpy.intp)
                if selector is None
                else selector
            )
            self.depths[rows] += 1
            self.pad_cols[j, rows] = cols
            full_exps = numpy.ones(len(cols), dtype=numpy.int64)
            full_exps[nonunit] = exps
            self.pad_exps[j, rows] = full_exps
            real = full_exps != 0
            row_parts.append(rows[real])
            col_parts.append(cols[real])
        all_rows = (
            numpy.concatenate(row_parts)
            if row_parts
            else numpy.zeros(0, dtype=numpy.intp)
        )
        all_cols = (
            numpy.concatenate(col_parts)
            if col_parts
            else numpy.zeros(0, dtype=numpy.intp)
        )
        # CSR by column; rows within a column stay sorted ascending, so
        # single-column plans need no extra sort and unions can unique
        # a concatenation of sorted runs. The inversion is the shared
        # idiom of repro.core.columnar (the compression side builds its
        # variable→monomial indexes the same way).
        from repro.core.columnar import invert_index

        self.col_starts, order = invert_index(
            all_cols, num_variables, secondary=all_rows
        )
        self.col_rows = all_rows[order]
        self.mono_poly = numpy.repeat(
            numpy.arange(len(poly_starts) - 1, dtype=numpy.intp),
            numpy.diff(poly_starts),
        )
        self.any_nonunit = bool(
            ((self.pad_exps != 1) & (self.pad_exps != 0)).any()
        )
        self.column_cache = {}

    def extend(self, local_layers, base_rows, added_rows, poly_starts,
               num_variables):
        """Grow the index by appended monomial rows — never rebuilt.

        ``local_layers`` are the appended part's layer tuples with
        selectors in *local* coordinates (always concrete, never
        ``None``); the appended rows occupy ``[base_rows, base_rows +
        added_rows)``. The padded factor matrices grow by trailing
        columns (and trailing layer rows when the appended monomials
        are deeper), the per-column CSR gains each column's new rows at
        the end of its segment (rows stay ascending: every new row id
        exceeds every old one), and only the single-column plans of
        columns that actually gained rows are dropped from the cache —
        untouched columns keep their plans, whose gathers reference old
        rows and old polynomial runs exclusively.
        """
        old_depth = self.pad_cols.shape[0]
        depth = max(old_depth, len(local_layers))
        total = base_rows + added_rows
        pad_cols = numpy.zeros((depth, total), dtype=numpy.intp)
        pad_exps = numpy.ones((depth, total), dtype=numpy.int64)
        pad_cols[:old_depth, :base_rows] = self.pad_cols
        pad_exps[:old_depth, :base_rows] = self.pad_exps
        depths = numpy.zeros(total, dtype=numpy.intp)
        depths[:base_rows] = self.depths
        row_parts = []
        col_parts = []
        for j, (selector, cols, nonunit, exps) in enumerate(local_layers):
            rows = base_rows + selector
            depths[rows] += 1
            pad_cols[j, rows] = cols
            full_exps = numpy.ones(len(cols), dtype=numpy.int64)
            full_exps[nonunit] = exps
            pad_exps[j, rows] = full_exps
            real = full_exps != 0
            row_parts.append(rows[real])
            col_parts.append(cols[real])
        new_rows = (
            numpy.concatenate(row_parts)
            if row_parts
            else numpy.zeros(0, dtype=numpy.intp)
        )
        new_cols = (
            numpy.concatenate(col_parts)
            if col_parts
            else numpy.zeros(0, dtype=numpy.intp)
        )
        from repro.core.columnar import gather_ranges, invert_index

        old_vars = len(self.col_starts) - 1
        old_counts = numpy.diff(self.col_starts)
        if num_variables > old_vars:
            old_counts = numpy.concatenate(
                [
                    old_counts,
                    numpy.zeros(num_variables - old_vars, dtype=numpy.intp),
                ]
            )
        added_starts, order = invert_index(
            new_cols, num_variables, secondary=new_rows
        )
        added_counts = numpy.diff(added_starts)
        counts = old_counts + added_counts
        starts = numpy.zeros(num_variables + 1, dtype=numpy.intp)
        numpy.cumsum(counts, out=starts[1:])
        col_rows = numpy.empty(int(counts.sum()), dtype=numpy.intp)
        col_rows[gather_ranges(starts[:-1], old_counts)] = self.col_rows
        col_rows[gather_ranges(starts[:-1] + old_counts, added_counts)] = (
            new_rows[order]
        )
        for col in numpy.flatnonzero(added_counts).tolist():
            self.column_cache.pop(col, None)
        self.depths = depths
        self.pad_cols = pad_cols
        self.pad_exps = pad_exps
        self.col_starts = starts
        self.col_rows = col_rows
        self.mono_poly = numpy.repeat(
            numpy.arange(len(poly_starts) - 1, dtype=numpy.intp),
            numpy.diff(poly_starts),
        )
        self.any_nonunit = bool(
            ((self.pad_exps != 1) & (self.pad_exps != 0)).any()
        )


class CompiledPolynomialSet:
    """A polynomial multiset compiled to NumPy arrays for batch valuation.

    Built by :meth:`repro.core.polynomial.PolynomialSet.compiled` (and
    cached there); evaluate with :meth:`evaluate` or through
    :meth:`repro.core.polynomial.PolynomialSet.evaluate_batch`.
    """

    __slots__ = (
        "num_polynomials",
        "num_monomials",
        "num_variables",
        "_columns",
        "_layers",
        "_coeffs",
        "_poly_starts",
        "_mean_touches",
        "_delta",
        "_baselines",
        "_source",
    )

    def __init__(self, polynomial_set):
        # The factor arrays come from the shared columnar view (one
        # extraction pass serves both the compression core and this
        # evaluator); rows run in each polynomial's canonical sorted
        # order (not dict insertion order) so float summation order —
        # and therefore the batch answers — is identical however the
        # polynomial was built (parsed, substituted, or deserialized).
        cm = polynomial_set.columnar()
        vids = sorted(polynomial_set.variable_ids())
        self._columns = {vid: col for col, vid in enumerate(vids)}
        # At least one column so constant monomials have a x0^0 factor
        # to point at even in a variable-free multiset.
        self.num_variables = max(1, len(vids))
        self.num_polynomials = len(polynomial_set)

        # Normalization: constant monomials get a x0^0 factor and zero
        # polynomials contribute one 0-coefficient constant monomial,
        # so every reduceat segment is non-empty.
        rows = cm.num_monomials
        lengths = cm.row_lengths
        poly_rows = numpy.diff(cm.poly_starts)
        pad_before = numpy.zeros(self.num_polynomials, dtype=numpy.intp)
        numpy.cumsum(poly_rows[:-1] == 0, out=pad_before[1:])
        empty_polys = numpy.flatnonzero(poly_rows == 0)
        total = rows + len(empty_polys)
        final_idx = (
            numpy.arange(rows, dtype=numpy.intp) + pad_before[cm.row_poly]
        )
        coeffs = numpy.zeros(total, dtype=numpy.float64)
        coeffs[final_idx] = numpy.asarray(
            [float(coeff) for coeff in cm.coeffs], dtype=numpy.float64
        )
        self.num_monomials = int(total)
        self._coeffs = coeffs
        poly_starts = numpy.zeros(self.num_polynomials + 1, dtype=numpy.intp)
        numpy.cumsum(numpy.maximum(poly_rows, 1), out=poly_starts[1:])
        self._poly_starts = poly_starts

        # Per final monomial: its factor count after normalization, and
        # where its real factors (if any) start in the flat arrays.
        eff_len = numpy.ones(total, dtype=numpy.intp)
        eff_len[final_idx] = numpy.maximum(lengths, 1)
        real_len = numpy.zeros(total, dtype=numpy.intp)
        real_len[final_idx] = lengths
        flat_start = numpy.zeros(total, dtype=numpy.intp)
        flat_start[final_idx] = cm.row_starts[:-1]
        col_of = numpy.zeros(max(cm.max_vid(), -1) + 2, dtype=numpy.intp)
        if vids:
            col_of[numpy.asarray(vids, dtype=numpy.intp)] = numpy.arange(
                len(vids), dtype=numpy.intp
            )
        cols_flat = col_of[cm.vids]

        # Layer j: (monomial selector, columns, exponent fix-ups) over
        # the monomials with a j-th factor; selector is None for layer 0
        # (every monomial has one, by normalization).
        self._layers = []
        depth = int(eff_len.max()) if total else 0
        for j in range(depth):
            select = numpy.flatnonzero(eff_len > j)
            has_real = real_len[select] > j
            cols = numpy.zeros(len(select), dtype=numpy.intp)
            exps = numpy.zeros(len(select), dtype=numpy.int64)
            source = flat_start[select[has_real]] + j
            cols[has_real] = cols_flat[source]
            exps[has_real] = cm.exps[source]
            # Provenance monomials are overwhelmingly multilinear;
            # raising everything to the power 1 would dominate the
            # evaluation, so only exponent != 1 factors go through ``**``.
            nonunit = numpy.nonzero(exps != 1)[0]
            selector = None if j == 0 else select
            self._layers.append((selector, cols, nonunit, exps[nonunit]))

        self._mean_touches = self._compute_mean_touches()
        # Delta-engine structures are derived lazily (and locally after
        # unpickling) — dense-only users never build them.
        self._delta = None
        self._baselines = {}
        self._source = None

    def extend(self, polynomials):
        """Grow the compiled matrix by appended polynomials, in place.

        The incremental counterpart of compiling from scratch: the
        appended monomials become trailing rows (old row indices — and
        the float summation order of every old polynomial — are
        untouched), new variables become trailing columns (old columns
        keep their indices), each existing layer grows by concatenation
        (appended selectors sort after every old row), and deeper
        layers are appended when the new monomials need them. The
        delta-engine index, when already built, is extended by the same
        rows via :meth:`_DeltaIndex.extend` — never rebuilt. Baselines
        are dropped (their row width changed) and ``_source`` is
        cleared (an extended set no longer matches its file).

        A fresh compile of the concatenated set may number columns
        differently (it sorts the whole alphabet), but per-row factor
        order and per-polynomial reduction order are identical, so
        evaluation answers are bit-identical to a from-scratch compile
        — the contract the incremental-maintenance property tests pin.
        """
        from repro.core.polynomial import PolynomialSet

        added = PolynomialSet(list(polynomials))
        if not len(added):
            return
        cm = added.columnar()
        new_vids = sorted(set(added.variable_ids()) - set(self._columns))
        start = len(self._columns)
        for col, vid in enumerate(new_vids, start=start):
            self._columns[vid] = col
        self.num_variables = max(1, len(self._columns))

        # Normalization of the appended part, exactly as in __init__.
        rows = cm.num_monomials
        lengths = cm.row_lengths
        poly_rows = numpy.diff(cm.poly_starts)
        added_polys = cm.num_polynomials
        pad_before = numpy.zeros(added_polys, dtype=numpy.intp)
        numpy.cumsum(poly_rows[:-1] == 0, out=pad_before[1:])
        total = rows + int((poly_rows == 0).sum())
        final_idx = (
            numpy.arange(rows, dtype=numpy.intp) + pad_before[cm.row_poly]
        )
        coeffs = numpy.zeros(total, dtype=numpy.float64)
        coeffs[final_idx] = numpy.asarray(
            [float(coeff) for coeff in cm.coeffs], dtype=numpy.float64
        )
        base_total = self.num_monomials
        self._coeffs = numpy.concatenate([self._coeffs, coeffs])
        run_lengths = numpy.maximum(poly_rows, 1)
        new_starts = numpy.empty(added_polys, dtype=numpy.intp)
        numpy.cumsum(run_lengths, out=new_starts)
        self._poly_starts = numpy.concatenate(
            [self._poly_starts, base_total + new_starts]
        )

        eff_len = numpy.ones(total, dtype=numpy.intp)
        eff_len[final_idx] = numpy.maximum(lengths, 1)
        real_len = numpy.zeros(total, dtype=numpy.intp)
        real_len[final_idx] = lengths
        flat_start = numpy.zeros(total, dtype=numpy.intp)
        flat_start[final_idx] = cm.row_starts[:-1]
        col_of = numpy.zeros(max(cm.max_vid(), -1) + 2, dtype=numpy.intp)
        present = sorted(added.variable_ids())
        if present:
            col_of[numpy.asarray(present, dtype=numpy.intp)] = numpy.asarray(
                [self._columns[vid] for vid in present], dtype=numpy.intp
            )
        cols_flat = col_of[cm.vids]

        old_depth = len(self._layers)
        depth = int(eff_len.max()) if total else 0
        layers = list(self._layers)
        local_layers = []
        for j in range(depth):
            select = numpy.flatnonzero(eff_len > j)
            has_real = real_len[select] > j
            cols = numpy.zeros(len(select), dtype=numpy.intp)
            exps = numpy.zeros(len(select), dtype=numpy.int64)
            source = flat_start[select[has_real]] + j
            cols[has_real] = cols_flat[source]
            exps[has_real] = cm.exps[source]
            nonunit = numpy.nonzero(exps != 1)[0]
            local_layers.append((select, cols, nonunit, exps[nonunit]))
            if j < old_depth:
                old_selector, old_cols, old_nonunit, old_exps = layers[j]
                merged_selector = (
                    None
                    if old_selector is None
                    else numpy.concatenate(
                        [old_selector, base_total + select]
                    )
                )
                layers[j] = (
                    merged_selector,
                    numpy.concatenate([old_cols, cols]),
                    numpy.concatenate(
                        [old_nonunit, nonunit + len(old_cols)]
                    ),
                    numpy.concatenate([old_exps, exps[nonunit]]),
                )
            else:
                # Old layer 0 has selector None (it covers every old
                # row); a genuinely new layer needs one — except when
                # the set was empty, where layer 0 still covers all.
                selector = (
                    None
                    if j == 0 and base_total == 0
                    else base_total + select
                )
                layers.append((selector, cols, nonunit, exps[nonunit]))

        self._layers = layers
        self.num_monomials = base_total + total
        self.num_polynomials += added_polys
        self._mean_touches = self._compute_mean_touches()
        if self._delta is not None:
            self._delta.extend(
                local_layers, base_total, total,
                self._poly_starts, self.num_variables,
            )
        self._baselines = {}
        self._source = None

    def _compute_mean_touches(self):
        """Average monomials touched per variable (exp-0 normalization
        factors excluded) — the fan-in statistic ``engine="auto"``
        needs. Derived from the layers, so it is rebuilt identically
        after unpickling."""
        real_factors = 0
        for _, cols, _nonunit, exps in self._layers:
            real_factors += len(cols) - int((exps == 0).sum())
        return real_factors / self.num_variables

    # ------------------------------------------------------------- pickling

    @property
    def source(self):
        """Path of the binary container backing this set (or ``None``).

        Set by :func:`repro.core.binfmt.read_artifact` /
        :func:`~repro.core.binfmt.read_compiled` on mmap-backed loads;
        a sourced set pickles as just this descriptor (workers re-mmap
        the file instead of receiving the matrix over the pipe).
        """
        return self._source

    def _state(self):
        """Portable full state for cross-process shipping.

        Variable ids are process-local (they index the process-wide
        interning table), so the column map travels keyed by variable
        *name* and is re-interned on arrival. Everything else is plain
        NumPy arrays and ints, so a compiled set rebuilds and then
        evaluates identically in any process — the contract
        :mod:`repro.scenarios.parallel` and the binary container
        format rely on.
        """
        from repro.core.interning import VARIABLES

        name = VARIABLES.name
        return {
            "columns_by_name": {
                name(vid): col for vid, col in self._columns.items()
            },
            "num_polynomials": self.num_polynomials,
            "num_monomials": self.num_monomials,
            "num_variables": self.num_variables,
            "coeffs": self._coeffs,
            "poly_starts": self._poly_starts,
            "layers": self._layers,
        }

    @classmethod
    def from_state(cls, state):
        """Build a compiled set directly from a :meth:`_state` dict —
        the binary-container load path (no PolynomialSet needed)."""
        self = object.__new__(cls)
        self.__setstate__(state)
        return self

    def __getstate__(self):
        """Pickle as full arrays — or, for a file-backed set, as just
        the container path (workers re-mmap; O(1) bytes per worker)."""
        if self._source is not None:
            return {"source": self._source}
        return self._state()

    def __setstate__(self, state):
        """Rebuild in the receiving process (re-interning the alphabet)."""
        source = state.get("source")
        if source is not None:
            from repro.core import binfmt

            other = binfmt.read_compiled(source)
            for slot in CompiledPolynomialSet.__slots__:
                setattr(self, slot, getattr(other, slot))
            return
        from repro.core.interning import VARIABLES

        intern = VARIABLES.intern
        self._columns = {
            intern(name): col
            for name, col in state["columns_by_name"].items()
        }
        self.num_polynomials = state["num_polynomials"]
        self.num_monomials = state["num_monomials"]
        self.num_variables = state["num_variables"]
        self._coeffs = state["coeffs"]
        self._poly_starts = state["poly_starts"]
        self._layers = state["layers"]
        self._mean_touches = self._compute_mean_touches()
        # Derived delta structures rebuild on demand — they are pure
        # functions of the layers, so a worker's first delta shard
        # builds them (and the baseline) exactly once per process.
        self._delta = None
        self._baselines = {}
        self._source = None

    # ------------------------------------------------------------ assignment

    def assignment_matrix(self, assignments, default=1.0):
        """The ``(S, V)`` matrix of variable values for the scenarios.

        Each entry goes through
        :meth:`~repro.core.valuation.Valuation.coerce`: plain mappings
        (unassigned variables take ``default``), Valuations (their own
        default wins) and Scenario-like objects (anything with a
        ``valuation(default)`` method) all work. Assignments of
        variables the multiset never mentions are ignored, matching
        :meth:`Polynomial.evaluate`.
        """
        from repro.core.interning import VARIABLES
        from repro.core.valuation import Valuation

        rows = []
        for entry in assignments:
            valuation = Valuation.coerce(entry, default)
            rows.append((valuation.assignment, valuation.default))

        matrix = numpy.empty((len(rows), self.num_variables), dtype=numpy.float64)
        columns = self._columns
        lookup = VARIABLES.lookup
        for row, (mapping, row_default) in enumerate(rows):
            matrix[row].fill(row_default)
            for name, value in mapping.items():
                vid = lookup(name)
                if vid is None:
                    continue
                col = columns.get(vid)
                if col is not None:
                    matrix[row, col] = value
        return matrix

    # ------------------------------------------------------------ evaluation

    def resolve_engine(self, engine, *, valuations=None, mean_changes=None):
        """The concrete engine (``"dense"``/``"delta"``) for a request.

        ``"auto"`` applies :func:`choose_engine` — with this set's
        monomial fan-in statistics — to the mean number of changed
        variables per scenario, taken from ``mean_changes`` when the
        caller already knows it (a :meth:`Sweep.mean_changes
        <repro.scenarios.sweep.Sweep.mean_changes>`), otherwise
        measured over the coerced ``valuations``. Explicit names
        validate and pass through. Either way the answers are
        bit-identical; only the work schedule differs.
        """
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        if engine != "auto":
            return engine
        if mean_changes is None:
            if not valuations:
                return "dense"
            mean_changes = sum(
                len(valuation.assignment) for valuation in valuations
            ) / len(valuations)
        return choose_engine(
            mean_changes, self.num_variables,
            mean_monomials_per_variable=self._mean_touches,
            num_monomials=self.num_monomials,
        )

    def evaluate(self, assignments, default=1.0, engine="auto"):
        """``(S, P)`` array: row ``i`` valuates every polynomial under
        assignment ``i`` (see :meth:`PolynomialSet.evaluate_batch`).

        ``engine`` selects the dense matrix path, the sparse delta path
        (:meth:`evaluate_delta`), or ``"auto"`` (the default, as
        everywhere in the stack) between them; the returned values are
        bit-identical whichever runs.
        """
        from repro.core.valuation import Valuation

        valuations = [
            Valuation.coerce(entry, default) for entry in assignments
        ]
        engine = self.resolve_engine(engine, valuations=valuations)
        if engine == "delta":
            return self.evaluate_delta(valuations, default)
        matrix = self.assignment_matrix(valuations, default)
        return self.evaluate_matrix(matrix)

    def _monomial_values(self, matrix):
        """The ``(S, M)`` monomial-value matrix for an assignment matrix."""
        mono_values = None
        for selector, cols, nonunit, exps in self._layers:
            # The fancy-index gather copies, so in-place ops are safe.
            values = matrix[:, cols]
            if len(nonunit):
                # _int_power, not **: grouping-independent bits (the
                # delta engine recomputes these factors in smaller
                # batches and must land on identical floats).
                values[:, nonunit] = _int_power(values[:, nonunit], exps)
            if selector is None:
                mono_values = values
            else:
                mono_values[:, selector] *= values
        return mono_values

    def evaluate_matrix(self, matrix):
        """Valuate from a prebuilt ``(S, V)`` assignment matrix."""
        num_scenarios = matrix.shape[0]
        if self.num_polynomials == 0:
            return numpy.zeros((num_scenarios, 0), dtype=numpy.float64)
        if num_scenarios == 0:
            return numpy.zeros((0, self.num_polynomials), dtype=numpy.float64)
        weighted = self._monomial_values(matrix) * self._coeffs
        return numpy.add.reduceat(weighted, self._poly_starts[:-1], axis=1)

    # ---------------------------------------------------------- delta engine

    def _delta_index(self):
        """The lazily built :class:`_DeltaIndex` (cached)."""
        index = self._delta
        if index is None:
            index = _DeltaIndex(
                self._layers, self._poly_starts,
                self.num_monomials, self.num_variables,
            )
            self._delta = index
        return index

    def _baseline(self, default):
        """``(assignment_vec, weighted_row, totals)`` for one default.

        The weighted baseline monomial row and per-polynomial totals
        are computed by the *dense* machinery on a single all-default
        row, so every cached float is bit-identical to what a dense
        evaluation of an unchanged scenario would produce. Cached per
        default (bounded by :data:`_MAX_BASELINE_CACHE`). The cached
        arrays are read-only by convention — :meth:`evaluate_delta`
        patches call-local copies, never these.
        """
        key = float(default)
        cached = self._baselines.get(key)
        if cached is None:
            vector = numpy.full(self.num_variables, key, dtype=numpy.float64)
            mono = self._monomial_values(vector[None, :])[0]
            weighted = mono * self._coeffs
            totals = numpy.add.reduceat(weighted, self._poly_starts[:-1])
            cached = (vector, weighted, totals)
            if len(self._baselines) < _MAX_BASELINE_CACHE:
                self._baselines[key] = cached
        return cached

    def _affected(self, index, cols):
        """``(rows, polys, gather, seg_starts, rows_pos, layers)`` for
        a set of changed columns.

        ``rows`` are the monomials to recompute, ``polys`` the
        polynomials containing them, ``gather`` the concatenated
        monomial offsets of exactly those polynomials' runs (so one
        fancy gather pulls the affected segments into a contiguous
        buffer and ``add.reduceat`` at ``seg_starts`` re-sums *only*
        them — never the untouched gaps), ``rows_pos`` the positions
        of the recomputed rows inside that buffer, and ``layers`` the
        precomputed per-layer gather plan of :meth:`_recompute_rows`
        — everything about a recompute that does not depend on the
        scenario's values. Single-column plans (every scenario of a
        one-at-a-time sweep) are cached on the index, so repeated
        knockouts of the same variable do no planning at all.
        """
        if len(cols) == 1:
            plan = index.column_cache.get(cols[0])
            if plan is not None:
                return plan
        starts = index.col_starts
        parts = [index.col_rows[starts[c]:starts[c + 1]] for c in cols]
        rows = (
            parts[0] if len(parts) == 1
            else numpy.unique(numpy.concatenate(parts))
        )
        if rows.size:
            polys = numpy.unique(index.mono_poly[rows])
            poly_starts = self._poly_starts
            seg_first = poly_starts[polys]
            lengths = poly_starts[polys + 1] - seg_first
            seg_starts = numpy.zeros(len(polys), dtype=numpy.intp)
            numpy.cumsum(lengths[:-1], out=seg_starts[1:])
            # Vectorized concatenation of the [first, first+length)
            # runs: a global arange plus each run's offset from its
            # position in the packed buffer.
            gather = numpy.arange(
                int(lengths.sum()), dtype=numpy.intp
            ) + numpy.repeat(seg_first - seg_starts, lengths)
            rows_pos = numpy.searchsorted(gather, rows)
        else:
            polys = numpy.zeros(0, dtype=numpy.intp)
            gather = numpy.zeros(0, dtype=numpy.intp)
            seg_starts = numpy.zeros(0, dtype=numpy.intp)
            rows_pos = numpy.zeros(0, dtype=numpy.intp)
        layers = []
        depths = index.depths[rows]
        for j in range(index.pad_cols.shape[0]):
            if j == 0:
                deeper = None  # every affected row has a first factor
                layer_cols = index.pad_cols[0, rows]
                exps = index.pad_exps[0, rows]
            else:
                deeper = numpy.nonzero(depths > j)[0]
                if not deeper.size:
                    break
                layer_cols = index.pad_cols[j, rows[deeper]]
                exps = index.pad_exps[j, rows[deeper]]
            fix = numpy.nonzero(exps != 1)[0] if index.any_nonunit else None
            if fix is not None and not fix.size:
                fix = None
            layers.append(
                (deeper, layer_cols, fix,
                 exps[fix] if fix is not None else None)
            )
        plan = (rows, polys, gather, seg_starts, rows_pos, tuple(layers))
        if len(cols) == 1:
            index.column_cache[cols[0]] = plan
        return plan

    @staticmethod
    def _recompute_rows(layers, assignment):
        """Monomial values for an affected-row plan under a patched
        assignment vector.

        Mirrors the dense layer loop exactly — same gather-per-layer,
        same exponent fix-ups, same in-place multiply order — restricted
        to the plan's rows, so every recomputed value is bit-identical
        to its dense counterpart.
        """
        values = None
        for deeper, layer_cols, fix, fix_exps in layers:
            factors = assignment[layer_cols]
            if fix is not None:
                factors[fix] = _int_power(factors[fix], fix_exps)
            if deeper is None:
                values = factors
            else:
                values[deeper] *= factors
        return values

    def evaluate_delta(self, assignments, default=1.0):
        """``(S, P)`` answers via baseline + sparse per-scenario patches.

        Bit-identical to :meth:`evaluate` with ``engine="dense"`` on
        the same scenarios: unaffected monomials keep their baseline
        float values (computed by the dense machinery), affected rows
        are recomputed with the dense layer ordering, and affected
        polynomial segments — gathered into a contiguous buffer by the
        plan's precomputed offsets, so untouched gaps are never
        re-summed — are reduced by the same ``add.reduceat`` over the
        same values in the same order. Per-valuation defaults are
        honoured through one cached baseline per distinct default.

        The cached baseline arrays stay read-only; the only in-place
        patching is of a *call-local copy* of the assignment vector
        (one O(V) copy per distinct default per call), so concurrent
        evaluations of one compiled set never observe each other's
        patches.
        """
        from repro.core.interning import VARIABLES
        from repro.core.valuation import Valuation

        valuations = [
            Valuation.coerce(entry, default) for entry in assignments
        ]
        num_scenarios = len(valuations)
        if self.num_polynomials == 0:
            return numpy.zeros((num_scenarios, 0), dtype=numpy.float64)
        if num_scenarios == 0:
            return numpy.zeros((0, self.num_polynomials), dtype=numpy.float64)
        index = self._delta_index()
        lookup = VARIABLES.lookup
        columns = self._columns
        coeffs = self._coeffs
        out = numpy.empty(
            (num_scenarios, self.num_polynomials), dtype=numpy.float64
        )
        local_baselines = {}
        for i, valuation in enumerate(valuations):
            key = float(valuation.default)
            state = local_baselines.get(key)
            if state is None:
                vector, weighted, totals = self._baseline(key)
                state = (vector.copy(), weighted, totals)
                local_baselines[key] = state
            vector, weighted, totals = state
            out[i] = totals
            cols = []
            new_values = []
            for name, value in valuation.assignment.items():
                vid = lookup(name)
                if vid is None:
                    continue
                col = columns.get(vid)
                if col is None:
                    continue  # variable never occurs — ignored, as dense
                cols.append(col)
                new_values.append(value)
            if not cols:
                continue
            rows, polys, gather, seg_starts, rows_pos, layers = self._affected(
                index, cols
            )
            if not rows.size:
                continue
            # Patch the call-local assignment vector in place (restored
            # below), pull the affected segments into a contiguous
            # buffer, overwrite the recomputed rows, and re-sum only
            # those segments — O(affected) work per scenario.
            saved_vector = vector[cols]
            vector[cols] = new_values
            segments = weighted[gather]
            segments[rows_pos] = (
                self._recompute_rows(layers, vector) * coeffs[rows]
            )
            out[i, polys] = numpy.add.reduceat(segments, seg_starts)
            vector[cols] = saved_vector
        return out
