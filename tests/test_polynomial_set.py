"""Unit tests for repro.core.polynomial.PolynomialSet (multisets)."""

import pytest

from repro.core.parser import parse, parse_set
from repro.core.polynomial import PolynomialSet


class TestMultisetSemantics:
    def test_duplicates_are_kept(self):
        ps = PolynomialSet([parse("x"), parse("x")])
        assert len(ps) == 2
        assert ps.num_monomials == 2

    def test_num_monomials_sums(self):
        ps = parse_set(["x + y", "x*y + z + 1"])
        assert ps.num_monomials == 5

    def test_variables_union(self):
        ps = parse_set(["x + y", "y + z"])
        assert ps.variables == {"x", "y", "z"}

    def test_num_variables_counts_distinct(self):
        ps = parse_set(["x + y", "y + z"])
        assert ps.num_variables == 3

    def test_append_type_checked(self):
        ps = PolynomialSet()
        with pytest.raises(TypeError):
            ps.append("x + y")

    def test_constructor_type_checked(self):
        with pytest.raises(TypeError):
            PolynomialSet(["nope"])


class TestOperations:
    def test_substitute_is_pointwise(self):
        ps = parse_set(["a*x + b*x", "a*y"])
        merged = ps.substitute({"a": "g", "b": "g"})
        assert merged[0] == parse("2*g*x") or merged[0].num_monomials == 1
        assert merged[1] == parse("g*y")

    def test_substitute_does_not_merge_across_polynomials(self):
        ps = parse_set(["a*x", "b*x"])
        merged = ps.substitute({"a": "g", "b": "g"})
        # Both become g*x but remain separate polynomials.
        assert len(merged) == 2
        assert merged.num_monomials == 2

    def test_evaluate_returns_one_value_per_polynomial(self):
        ps = parse_set(["2*x", "3*x + 1"])
        assert ps.evaluate({"x": 2.0}) == [4.0, 7.0]

    def test_indexing_and_iteration(self):
        ps = parse_set(["x", "y"])
        assert ps[0] == parse("x")
        assert list(ps) == [parse("x"), parse("y")]

    def test_equality(self):
        assert parse_set(["x", "y"]) == parse_set(["x", "y"])
        assert parse_set(["x"]) != parse_set(["y"])

    def test_almost_equal(self):
        a = PolynomialSet([parse("x") * 0.1 + parse("x") * 0.2])
        b = parse_set(["0.3*x"])
        assert a.almost_equal(b)

    def test_almost_equal_length_mismatch(self):
        assert not parse_set(["x"]).almost_equal(parse_set(["x", "y"]))


class TestPaperMeasures:
    def test_example13_sizes(self, ex13_polys):
        # |P|_M = 8 + 6 = 14, |P|_V = 9 (p1 f1 y1 v b1 b2 e m1 m3).
        assert ex13_polys.num_monomials == 14
        assert ex13_polys.num_variables == 9

    def test_example13_p1_size(self, ex13_polys):
        assert ex13_polys[0].num_monomials == 8

    def test_example13_p2_size(self, ex13_polys):
        assert ex13_polys[1].num_monomials == 6
