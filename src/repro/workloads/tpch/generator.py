"""A deterministic, scaled-down TPC-H data generator.

The paper evaluates on TPC-H (reference [2]) at 1–10 GB. This module
generates the same eight-table schema with the standard cardinality
ratios (supplier : part : customer : orders : lineitem =
10K : 200K : 150K : 1.5M : ~6M per scale factor), but runs comfortably
at small scale factors in pure Python. Value distributions follow the
spec's shapes (uniform keys, 1992–1998 dates, 0–10% discounts,
return-flag logic) without the spec's text grammar — the provenance
*shape* (which is all the abstraction experiments consume) is governed
by key distributions, not by comment strings.

Everything is seeded: the same ``(scale_factor, seed)`` always produces
the same database, so experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.table import Relation
from repro.util.rng import derive_rng

__all__ = ["TPCHDatabase", "generate", "REGIONS", "NATIONS"]

#: The five TPC-H regions.
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: The 25 TPC-H nations as (name, region index).
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIPMODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
_TYPES = [
    f"{a} {b} {c}"
    for a in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for b in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
    for c in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
]

#: TPC-H's "current date" used by the return-flag rule.
_CURRENT_DATE = 19950617


def _date(year, month, day):
    return year * 10000 + month * 100 + day


def _random_date(rng, start_year=1992, end_year=1998):
    return _date(rng.randint(start_year, end_year), rng.randint(1, 12), rng.randint(1, 28))


def _add_days(date, rng, low, high):
    """Shift an integer date by a random number of days, coarsely.

    Day arithmetic stays within 1..28 to keep the encoding trivially
    valid; month/year carry as needed. Precision beyond "a few weeks
    later" is irrelevant to the workloads.
    """
    year, rest = divmod(date, 10000)
    month, day = divmod(rest, 100)
    day += rng.randint(low, high)
    while day > 28:
        day -= 28
        month += 1
        if month > 12:
            month = 1
            year += 1
    return _date(year, month, day)


@dataclass
class TPCHDatabase:
    """The eight generated relations plus the scale they were built at."""

    scale_factor: float
    seed: int
    region: Relation
    nation: Relation
    supplier: Relation
    part: Relation
    partsupp: Relation
    customer: Relation
    orders: Relation
    lineitem: Relation

    @property
    def tables(self):
        """Name → relation, in schema order."""
        return {
            "region": self.region,
            "nation": self.nation,
            "supplier": self.supplier,
            "part": self.part,
            "partsupp": self.partsupp,
            "customer": self.customer,
            "orders": self.orders,
            "lineitem": self.lineitem,
        }

    @property
    def total_rows(self):
        return sum(len(t) for t in self.tables.values())

    def __repr__(self):
        counts = ", ".join(f"{k}={len(v)}" for k, v in self.tables.items())
        return f"TPCHDatabase(sf={self.scale_factor}, {counts})"


def generate(scale_factor=0.01, seed=0):
    """Generate a :class:`TPCHDatabase` at the given scale factor.

    Cardinalities follow the TPC-H ratios with sensible minimums so even
    tiny scale factors yield a usable database.

    >>> db = generate(scale_factor=0.001, seed=1)
    >>> len(db.region), len(db.nation)
    (5, 25)
    >>> len(db.lineitem) > len(db.orders) > len(db.customer)
    True
    """
    num_suppliers = max(10, round(10_000 * scale_factor))
    num_parts = max(20, round(200_000 * scale_factor))
    num_customers = max(15, round(150_000 * scale_factor))
    num_orders = max(30, round(1_500_000 * scale_factor))

    region = Relation.from_rows(
        ["R_REGIONKEY", "R_NAME"],
        list(enumerate(REGIONS)),
        name="region",
    )
    nation = Relation.from_rows(
        ["N_NATIONKEY", "N_NAME", "N_REGIONKEY"],
        [(key, name, region_key) for key, (name, region_key) in enumerate(NATIONS)],
        name="nation",
    )

    rng = derive_rng(seed, "supplier")
    supplier = Relation.from_rows(
        ["S_SUPPKEY", "S_NAME", "S_NATIONKEY", "S_ACCTBAL"],
        [
            (
                key,
                f"Supplier#{key:09d}",
                rng.randrange(len(NATIONS)),
                round(rng.uniform(-999.99, 9999.99), 2),
            )
            for key in range(1, num_suppliers + 1)
        ],
        name="supplier",
    )

    rng = derive_rng(seed, "part")
    part = Relation.from_rows(
        ["P_PARTKEY", "P_NAME", "P_BRAND", "P_TYPE", "P_SIZE", "P_RETAILPRICE"],
        [
            (
                key,
                f"part {key}",
                _BRANDS[rng.randrange(len(_BRANDS))],
                _TYPES[rng.randrange(len(_TYPES))],
                rng.randint(1, 50),
                round(900 + (key % 1000) + rng.uniform(0, 100), 2),
            )
            for key in range(1, num_parts + 1)
        ],
        name="part",
    )

    def part_supplier(part_key, index):
        """The TPC-H spec's supplier-of-part formula (4.2.3).

        ``(partkey + index·(S/4 + (partkey−1)/S)) mod S + 1`` — the
        second term decorrelates supplier and part keys, which matters
        here: the (sᵢ, pⱼ) bucket pairs of the provenance must spread
        rather than sit on a diagonal.
        """
        spread = num_suppliers // 4 + (part_key - 1) // num_suppliers
        return (part_key + index * spread) % num_suppliers + 1

    rng = derive_rng(seed, "partsupp")
    partsupp_rows = []
    for part_key in range(1, num_parts + 1):
        for offset in range(4):
            supp_key = part_supplier(part_key, offset)
            partsupp_rows.append(
                (
                    part_key,
                    supp_key,
                    rng.randint(1, 9999),
                    round(rng.uniform(1.0, 1000.0), 2),
                )
            )
    partsupp = Relation.from_rows(
        ["PS_PARTKEY", "PS_SUPPKEY", "PS_AVAILQTY", "PS_SUPPLYCOST"],
        partsupp_rows,
        name="partsupp",
    )

    rng = derive_rng(seed, "customer")
    customer = Relation.from_rows(
        ["C_CUSTKEY", "C_NAME", "C_NATIONKEY", "C_ACCTBAL", "C_MKTSEGMENT"],
        [
            (
                key,
                f"Customer#{key:09d}",
                rng.randrange(len(NATIONS)),
                round(rng.uniform(-999.99, 9999.99), 2),
                _SEGMENTS[rng.randrange(len(_SEGMENTS))],
            )
            for key in range(1, num_customers + 1)
        ],
        name="customer",
    )

    order_rng = derive_rng(seed, "orders")
    line_rng = derive_rng(seed, "lineitem")
    order_rows = []
    line_rows = []
    part_price = {row[0]: row[5] for row, _ in part}
    for order_key in range(1, num_orders + 1):
        cust_key = order_rng.randint(1, num_customers)
        order_date = _random_date(order_rng)
        num_lines = line_rng.randint(1, 7)
        total = 0.0
        all_filled = True
        any_filled = False
        for line_number in range(1, num_lines + 1):
            part_key = line_rng.randint(1, num_parts)
            # A lineitem buys from one of the part's four suppliers.
            supp_key = part_supplier(part_key, line_rng.randint(0, 3))
            quantity = line_rng.randint(1, 50)
            extended = round(quantity * part_price[part_key] / 10.0, 2)
            discount = round(line_rng.uniform(0.0, 0.10), 2)
            tax = round(line_rng.uniform(0.0, 0.08), 2)
            ship_date = _add_days(order_date, line_rng, 1, 121)
            commit_date = _add_days(order_date, line_rng, 30, 90)
            receipt_date = _add_days(ship_date, line_rng, 1, 30)
            if receipt_date <= _CURRENT_DATE:
                return_flag = "R" if line_rng.random() < 0.5 else "A"
            else:
                return_flag = "N"
            line_status = "F" if ship_date <= _CURRENT_DATE else "O"
            if line_status == "F":
                any_filled = True
            else:
                all_filled = False
            total += extended * (1 + tax) * (1 - discount)
            line_rows.append(
                (
                    order_key,
                    part_key,
                    supp_key,
                    line_number,
                    quantity,
                    extended,
                    discount,
                    tax,
                    return_flag,
                    line_status,
                    ship_date,
                    commit_date,
                    receipt_date,
                    _SHIPMODES[line_rng.randrange(len(_SHIPMODES))],
                )
            )
        status = "F" if all_filled else ("O" if not any_filled else "P")
        order_rows.append(
            (
                order_key,
                cust_key,
                status,
                round(total, 2),
                order_date,
                _PRIORITIES[order_rng.randrange(len(_PRIORITIES))],
                0,
            )
        )
    orders = Relation.from_rows(
        [
            "O_ORDERKEY",
            "O_CUSTKEY",
            "O_ORDERSTATUS",
            "O_TOTALPRICE",
            "O_ORDERDATE",
            "O_ORDERPRIORITY",
            "O_SHIPPRIORITY",
        ],
        order_rows,
        name="orders",
    )
    lineitem = Relation.from_rows(
        [
            "L_ORDERKEY",
            "L_PARTKEY",
            "L_SUPPKEY",
            "L_LINENUMBER",
            "L_QUANTITY",
            "L_EXTENDEDPRICE",
            "L_DISCOUNT",
            "L_TAX",
            "L_RETURNFLAG",
            "L_LINESTATUS",
            "L_SHIPDATE",
            "L_COMMITDATE",
            "L_RECEIPTDATE",
            "L_SHIPMODE",
        ],
        line_rows,
        name="lineitem",
    )

    return TPCHDatabase(
        scale_factor=scale_factor,
        seed=seed,
        region=region,
        nation=nation,
        supplier=supplier,
        part=part,
        partsupp=partsupp,
        customer=customer,
        orders=orders,
        lineitem=lineitem,
    )
