"""Tests for the delta-aware sparse evaluation engine (core.batch).

The contract under test is strict: ``engine="delta"`` answers are
**bit-identical** to ``engine="dense"`` answers — not merely close —
for every input shape (scenarios, valuations with their own defaults,
Fraction values, unknown variables, exponents above one, zero
polynomials, variable-free multisets, empty families), because the
delta path recomputes affected monomials with the dense layer ordering
and re-sums affected polynomial segments with the same ``add.reduceat``
machinery over the same floats. Both engines agree with the scalar
:meth:`Polynomial.evaluate` path only up to float tolerance — and,
unlike it, *refuse* exact arithmetic: Fraction inputs are degraded to
float64 identically on both engines while the scalar path stays exact.
"""

from fractions import Fraction

import numpy
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch import ENGINES, choose_engine
from repro.core.parser import parse_set
from repro.core.polynomial import Monomial, Polynomial, PolynomialSet
from repro.core.valuation import Valuation
from repro.scenarios.analysis import evaluate_scenarios, sensitivity, top_k
from repro.scenarios.parallel import evaluate_scenarios_parallel
from repro.scenarios.sweep import Sweep
from repro.util.rng import derive_rng
from repro.workloads.random_polys import random_polynomials


def assert_engines_bit_identical(polynomials, scenarios, default=1.0):
    dense = polynomials.evaluate_batch(scenarios, default, engine="dense")
    delta = polynomials.evaluate_batch(scenarios, default, engine="delta")
    assert numpy.array_equal(dense, delta)
    return dense


@pytest.fixture
def workload():
    return random_polynomials(
        10, 25, [[f"a{i}" for i in range(12)], [f"b{i}" for i in range(5)]],
        seed=5, extra_variables=4,
    )


class TestBitIdentity:
    def test_random_workload_sparse_scenarios(self, workload):
        rng = derive_rng(21, "delta-engine-test")
        variables = sorted(workload.variables)
        scenarios = [
            {
                variables[rng.randrange(len(variables))]: rng.uniform(-2, 2)
                for _ in range(rng.randrange(1, 5))
            }
            for _ in range(60)
        ]
        values = assert_engines_bit_identical(workload, scenarios)
        for row, scenario in enumerate(scenarios):
            assert numpy.allclose(
                values[row], workload.evaluate(scenario), atol=1e-9, rtol=1e-9
            )

    def test_dense_scenarios_still_identical(self, workload):
        """Delta must stay correct even where it is not profitable."""
        rng = derive_rng(22, "delta-engine-test")
        variables = sorted(workload.variables)
        scenarios = [
            {v: rng.uniform(0.1, 2.0) for v in variables} for _ in range(7)
        ]
        assert_engines_bit_identical(workload, scenarios)

    def test_valuations_with_distinct_defaults(self, workload):
        scenarios = [
            Valuation({"a1": 0.5}, default=0.0),
            Valuation({}, default=3.0),
            Valuation({"b2": 2.0, "a0": -1.0}, default=1.0),
            Valuation({"a1": 0.5}, default=0.0),  # cached baseline reused
        ]
        assert_engines_bit_identical(workload, scenarios)

    def test_many_distinct_defaults_exceed_baseline_cache(self, workload):
        """Past the per-set baseline cache cap answers stay identical."""
        scenarios = [
            Valuation({"a1": 0.5}, default=1.0 + i / 64) for i in range(48)
        ]
        assert_engines_bit_identical(workload, scenarios)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d", "x", "y", "z", "nowhere"]),
            st.one_of(
                st.floats(-4, 4, allow_nan=False, width=32),
                st.fractions(
                    min_value=-3, max_value=3, max_denominator=9
                ),
                st.integers(-3, 3),
            ),
            max_size=6,
        ),
        min_size=0, max_size=12,
    ))
    def test_property_bit_identical_and_near_scalar(self, assignments):
        """Arbitrary float/Fraction/int families: delta == dense bitwise,
        and both within tolerance of the scalar interpreter."""
        polys = parse_set(
            ["2*a*x + 3*b*x^2 + 4*c*y + 5*d*y", "6*a*z + 7*b*z", "1 + c*d"]
        )
        values = assert_engines_bit_identical(polys, assignments)
        for row, assignment in enumerate(assignments):
            exact = polys.evaluate(assignment)
            assert numpy.allclose(
                values[row], [float(v) for v in exact],
                atol=1e-9, rtol=1e-9,
            )

    def test_fraction_fallback_refusal(self):
        """Both engines degrade Fractions to float64 — identically —
        while the scalar path keeps exact arithmetic. Exactness needs
        Polynomial.evaluate; the batch engines refuse it by design."""
        polys = PolynomialSet(
            [Polynomial({Monomial.of("x"): Fraction(1, 3)})]
        )
        scenario = {"x": Fraction(1, 3)}
        dense = polys.evaluate_batch([scenario], engine="dense")
        delta = polys.evaluate_batch([scenario], engine="delta")
        assert numpy.array_equal(dense, delta)
        exact = polys.evaluate(scenario)[0]
        assert exact == Fraction(1, 9)
        assert isinstance(exact, Fraction)
        assert dense[0, 0] != exact  # the float degradation is real
        assert dense[0, 0] == pytest.approx(1.0 / 9.0)

    def test_unpickled_compiled_set_answers_identically(self, workload):
        import pickle

        compiled = workload.compiled()
        scenarios = [{"a1": 0.5}, {"b2": 2.0, "a0": 0.0}]
        expected = compiled.evaluate(scenarios, engine="delta")
        clone = pickle.loads(pickle.dumps(compiled))
        assert numpy.array_equal(
            clone.evaluate(scenarios, engine="delta"), expected
        )


class TestEdgeCases:
    def test_empty_sweep(self):
        polys = parse_set(["x + y"])
        sweep = Sweep.random(["x", "y"], 0, seed=1)
        dense = evaluate_scenarios(polys, sweep, engine="dense")
        delta = evaluate_scenarios(polys, sweep, engine="delta")
        assert dense.shape == delta.shape == (0, 1)

    def test_empty_scenario_list(self):
        polys = parse_set(["x"])
        assert polys.evaluate_batch([], engine="delta").shape == (0, 1)

    def test_empty_polynomial_set(self):
        assert PolynomialSet().evaluate_batch(
            [{}, {"x": 2.0}], engine="delta"
        ).shape == (2, 0)

    def test_variable_free_multiset(self):
        polys = PolynomialSet([Polynomial.constant(4), Polynomial.zero()])
        values = assert_engines_bit_identical(
            polys, [{}, {"anything": 2.0}]
        )
        assert numpy.array_equal(
            values, numpy.array([[4.0, 0.0], [4.0, 0.0]])
        )

    def test_exponents_above_one(self):
        polys = parse_set(["3*x^3*y + 2*x^2 + 5", "x^4 - y^2"])
        assert_engines_bit_identical(
            polys, [{"x": 2.0, "y": -3.0}, {"x": -1.5}, {"y": 0.0}, {}]
        )

    def test_zero_polynomial_rows(self):
        polys = PolynomialSet([Polynomial.zero(), Polynomial.variable("x")])
        values = assert_engines_bit_identical(polys, [{"x": 2.0}])
        assert values[0, 0] == 0.0

    def test_unknown_variables_ignored(self):
        polys = parse_set(["2*x"])
        values = assert_engines_bit_identical(
            polys, [{"x": 3.0, "never-seen": 99.0}, {"also-unknown": 5.0}]
        )
        assert values[0, 0] == pytest.approx(6.0)
        assert values[1, 0] == pytest.approx(2.0)

    def test_custom_call_default(self):
        polys = parse_set(["x*y + z"])
        assert_engines_bit_identical(polys, [{"x": 2.0}, {}], default=0.0)

    def test_pow_grouping_regression(self):
        """Regression: numpy's ``**`` ufunc rounds grouping-dependently
        (SIMD lane vs scalar tail), so ``x**2`` computed inside a wide
        dense layer and recomputed in a narrow delta patch used to
        differ in the last bit. Powers now go through the
        multiply-chain ``_int_power`` on both engines."""
        polys = parse_set(
            ["2*a*x + 3*b*x^2 + 4*c*y + 5*d*y", "6*a*z + 7*b*z", "1 + c*d"]
        )
        assert_engines_bit_identical(polys, [{"a": 0.0, "x": Fraction(8, 3)}])

    def test_concurrent_delta_calls_share_one_compiled_set(self, workload):
        """The per-scenario patch/restore runs on call-local baseline
        copies, so threads evaluating the same compiled set in
        parallel must all get the dense answers."""
        from concurrent.futures import ThreadPoolExecutor

        compiled = workload.compiled()
        variables = sorted(workload.variables)
        suites = [
            [{variables[(t + i) % len(variables)]: 0.5 + t / 8}
             for i in range(40)]
            for t in range(4)
        ]
        expected = [compiled.evaluate(s, engine="dense") for s in suites]
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(
                lambda s: compiled.evaluate(s, engine="delta"), suites
            ))
        for got, want in zip(results, expected, strict=True):
            assert numpy.array_equal(got, want)


class TestEngineSelection:
    def test_auto_picks_delta_for_sparse_families(self, workload):
        compiled = workload.compiled()
        sparse = [Valuation({"a1": 0.5})] * 4
        assert compiled.resolve_engine("auto", valuations=sparse) == "delta"

    def test_auto_picks_dense_for_dense_families(self, workload):
        compiled = workload.compiled()
        dense = [
            Valuation({v: 2.0 for v in sorted(workload.variables)})
        ]
        assert compiled.resolve_engine("auto", valuations=dense) == "dense"

    def test_auto_uses_sweep_density(self, workload):
        compiled = workload.compiled()
        oaat = Sweep.one_at_a_time(sorted(workload.variables), [0.8, 1.2])
        assert compiled.resolve_engine(
            "auto", mean_changes=oaat.mean_changes()
        ) == "delta"

    def test_choose_engine_threshold(self):
        assert choose_engine(1.0, 100) == "delta"
        assert choose_engine(80.0, 100) == "dense"
        assert choose_engine(0.0, 0) == "dense"

    def test_auto_counts_affected_monomials_not_variables(self):
        """20 changed variables of 288 sounds sparse, but with ~18.5
        monomials per variable it touches ~20% of the multiset — the
        fan-in-aware policy must pick dense for that shape (and delta
        once the change-set really is small)."""
        fan_in = {"mean_monomials_per_variable": 18.5, "num_monomials": 1781}
        assert choose_engine(20.0, 288, **fan_in) == "dense"
        assert choose_engine(1.0, 288, **fan_in) == "delta"

    def test_unknown_engine_rejected(self, workload):
        with pytest.raises(ValueError, match="unknown engine"):
            workload.evaluate_batch([{}], engine="warp")
        with pytest.raises(ValueError, match="unknown engine"):
            evaluate_scenarios(workload, [{}], engine="warp")
        assert "dense" in ENGINES and "delta" in ENGINES


class TestStackThreading:
    """engine= must produce identical results through every layer."""

    def test_evaluate_scenarios_engines_agree_on_sweeps(self, workload):
        sweep = Sweep.one_at_a_time(
            sorted(workload.variables), [0.0, 0.8, 1.2]
        )
        dense = evaluate_scenarios(workload, sweep, engine="dense")
        delta = evaluate_scenarios(workload, sweep, engine="delta")
        auto = evaluate_scenarios(workload, sweep, engine="auto")
        assert numpy.array_equal(dense, delta)
        assert numpy.array_equal(dense, auto)

    def test_parallel_delta_spans_bit_identical(self, workload):
        sweep = Sweep.random(
            sorted(workload.variables), 96, changes=2, seed=13
        )
        serial_dense = evaluate_scenarios_parallel(
            workload, sweep, workers=0, engine="dense"
        )
        pooled_delta = evaluate_scenarios_parallel(
            workload, sweep, workers=2, min_parallel=0, chunk_size=17,
            engine="delta",
        )
        assert numpy.array_equal(serial_dense, pooled_delta)

    def test_top_k_and_sensitivity_engines_agree(self, workload):
        sweep = Sweep.one_at_a_time(sorted(workload.variables), [0.5])
        by_engine = [
            top_k(workload, sweep, k=5, engine=engine)
            for engine in ("dense", "delta")
        ]
        assert by_engine[0] == by_engine[1]
        reports = [
            sensitivity(workload, sweep, engine=engine)
            for engine in ("dense", "delta")
        ]
        assert reports[0] == reports[1]

    def test_session_and_artifact_ask_many_engines_agree(self):
        from repro.api.session import ProvenanceSession

        session = ProvenanceSession.from_strings(
            ["2*b1*m1 + 3*b2*m1 + 4*b1*m3", "b1*m1 + 5*b2*m3"],
            forest=("SB", ["b1", "b2"]),
        )
        scenarios = [
            {"m1": 0.8},
            Valuation({"b1": 0.5, "b2": 0.5}),
            {"b1": 0.0, "m3": 1.2},
        ]
        assert session.ask_many(scenarios, engine="dense") == session.ask_many(
            scenarios, engine="delta"
        )
        artifact = session.compress(bound=4)
        assert artifact.ask_many(scenarios, engine="dense") == artifact.ask_many(
            scenarios, engine="delta"
        )


class TestSweepDeltaForm:
    """Sweeps emit (baseline, sparse-delta) form natively."""

    @pytest.mark.parametrize("sweep", [
        Sweep.grid({"p": ["a"], "q": ["b", "c"]}, [0.5, 2.0]),
        Sweep.one_at_a_time(["a", "b", "c"], [0.0, 1.2],
                            baseline={"d": 0.9}),
        Sweep.random(["a", "b", "c", "d"], 12, changes=2, seed=3),
    ], ids=["grid", "oaat", "random"])
    def test_changes_at_matches_materialized_scenarios(self, sweep):
        assert [sweep.changes_at(i) for i in range(len(sweep))] == [
            sweep[i].changes for i in range(len(sweep))
        ]
        assert list(sweep.iter_changes(1, 3)) == [
            sweep[1].changes,
            sweep[2].changes,
        ]

    def test_changes_at_range_checked(self):
        sweep = Sweep.one_at_a_time(["a"], [0.5])
        with pytest.raises(IndexError):
            sweep.changes_at(1)

    def test_mean_changes(self):
        assert Sweep.grid(
            {"p": ["a", "b"], "q": ["c"]}, [0.5]
        ).mean_changes() == 3.0
        assert Sweep.one_at_a_time(["a", "b"], [0.5]).mean_changes() == 1.0
        # A baseline change overlapping one of two swept variables:
        # every scenario carries the baseline, half add a fresh one.
        assert Sweep.one_at_a_time(
            ["a", "b"], [0.5], baseline={"a": 0.9}
        ).mean_changes() == pytest.approx(1.5)
        assert Sweep.random(
            ["a", "b", "c"], 10, changes=2, seed=1
        ).mean_changes() == 2.0
