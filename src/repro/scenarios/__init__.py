"""Hypothetical reasoning over (abstracted) provenance.

Scenario specification, raw-vs-abstracted speedup and accuracy analysis
(Figure 10), and the §6 sampling-based online compression pipeline.
"""

from repro.scenarios.analysis import (
    SpeedupReport,
    approximate_lift,
    assignment_speedup,
    evaluate_scenarios,
    scenario_error,
)
from repro.scenarios.sampling import (
    OnlineCompressionResult,
    adapt_bound,
    extrapolate_size,
    online_compress,
    sample_polynomials,
)
from repro.scenarios.scenario import Scenario, ScenarioSuite

__all__ = [
    "Scenario",
    "ScenarioSuite",
    "SpeedupReport",
    "assignment_speedup",
    "approximate_lift",
    "evaluate_scenarios",
    "scenario_error",
    "sample_polynomials",
    "adapt_bound",
    "extrapolate_size",
    "online_compress",
    "OnlineCompressionResult",
]
