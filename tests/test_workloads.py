"""Tests for the workload generators (telephony, trees, random polys)."""

import pytest

from repro.core.forest import AbstractionForest
from repro.workloads.random_polys import (
    random_compatible_instance,
    random_polynomials,
)
from repro.workloads.telephony import TelephonyBenchmark, revenue_by_zip
from repro.workloads.trees import (
    TREE_CATALOG,
    binary_tree,
    catalog_tree,
    layered_tree,
    random_tree,
    table2_rows,
)


class TestLayeredTrees:
    def test_basic_shape(self):
        tree = layered_tree([f"x{i}" for i in range(8)], (2,))
        assert len(tree.root.children) == 2
        assert tree.leaf_labels == {f"x{i}" for i in range(8)}

    def test_three_level(self):
        tree = layered_tree([f"x{i}" for i in range(16)], (2, 4))
        assert tree.height == 3
        assert len(tree.root.children) == 2

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            layered_tree(["a", "b", "c"], (2,))

    def test_zero_fanout_rejected(self):
        with pytest.raises(ValueError):
            layered_tree(["a", "b"], (0,))

    def test_labels_unique_across_layers(self):
        tree = layered_tree([f"x{i}" for i in range(16)], (2, 2, 2))
        assert tree.size == len(set(tree.labels))


class TestTable2:
    """Reproduce the paper's Table 2 exactly."""

    # (type, node count, VVS count) — spot values straight from Table 2.
    PAPER_ROWS = [
        (1, 131, 5),
        (1, 137, 257),
        (1, 145, 65537),
        (1, 161, 4294967297),
        (2, 135, 26),
        (2, 147, 66050),
        (2, 163, 4295098370),
        (3, 141, 626),
        (3, 149, 83522),
        (4, 153, 390626),
        (4, 169, 6975757442),
        (5, 143, 677),
        (5, 151, 84101),
        (5, 167, 4362602501),
        (6, 155, 391877),
        (6, 171, 6975924485),
        (7, 157, 456977),
        (7, 173, 7072810001),
    ]

    def test_all_catalog_types_present(self):
        assert set(TREE_CATALOG) == {1, 2, 3, 4, 5, 6, 7}

    @pytest.mark.parametrize("tree_type,nodes,cuts", PAPER_ROWS)
    def test_paper_row(self, tree_type, nodes, cuts):
        computed = {(t, n): c for t, n, _, c in table2_rows()}
        assert computed[(tree_type, nodes)] == cuts

    def test_catalog_tree_builder(self):
        leaves = [f"s{i}" for i in range(128)]
        tree = catalog_tree(2, 0, leaves)
        assert tree.count_cuts() == 26

    def test_catalog_tree_bad_type(self):
        with pytest.raises(ValueError):
            catalog_tree(9, 0, ["a", "b"])


class TestBinaryAndRandomTrees:
    def test_binary_tree_shape(self):
        tree = binary_tree([f"x{i}" for i in range(16)])
        assert tree.height == 3
        assert len(tree.root.children) == 2

    def test_binary_tree_rejects_non_power(self):
        with pytest.raises(ValueError):
            binary_tree(["a", "b", "c"])

    def test_random_tree_is_deterministic(self):
        leaves = [f"x{i}" for i in range(7)]
        a = random_tree(leaves, seed=3)
        b = random_tree(leaves, seed=3)
        assert a.to_nested() == b.to_nested()

    def test_random_tree_covers_all_leaves(self):
        leaves = [f"x{i}" for i in range(11)]
        tree = random_tree(leaves, seed=5)
        assert tree.leaf_labels == set(leaves)

    def test_random_tree_single_leaf(self):
        tree = random_tree(["only"], seed=0)
        assert tree.leaf_labels == {"only"}
        assert not tree.root.is_leaf


class TestRandomPolynomials:
    def test_deterministic(self):
        a = random_polynomials(3, 5, [["a", "b"]], seed=9)
        b = random_polynomials(3, 5, [["a", "b"]], seed=9)
        assert a == b

    def test_compatibility_by_construction(self):
        pools = [[f"a{i}" for i in range(4)], [f"b{i}" for i in range(4)]]
        ps = random_polynomials(5, 10, pools, seed=2)
        for polynomial in ps:
            for monomial in polynomial.monomials:
                for pool in pools:
                    assert sum(1 for v in monomial.variables if v in pool) <= 1

    def test_compatible_instance_is_compatible(self):
        polys, forest = random_compatible_instance(seed=4)
        forest.check_compatible(polys)

    def test_extra_variables_outside_pools(self):
        ps = random_polynomials(3, 8, [["a"]], seed=1, extra_variables=3)
        free = {v for v in ps.variables if v.startswith("w")}
        assert free <= {"w0", "w1", "w2"}


class TestTelephonyBenchmark:
    def test_relations_deterministic(self, small_telephony):
        cust1, calls1, plans1 = small_telephony.relations()
        bench2 = TelephonyBenchmark(customers=60, num_plans=16, months=6,
                                    zip_pool=8, seed=11)
        cust2, calls2, plans2 = bench2.relations()
        assert cust1 == cust2 and calls1 == calls2 and plans1 == plans2

    def test_row_counts(self, small_telephony):
        cust, calls, plans = small_telephony.relations()
        assert len(cust) == 60
        assert len(calls) == 60 * 6
        assert len(plans) == 16 * 6

    def test_provenance_shape(self, small_telephony):
        provenance = small_telephony.provenance()
        assert 1 <= len(provenance) <= 8  # one polynomial per zip
        # Every monomial pairs one plan variable with one month variable.
        for polynomial in provenance:
            for monomial in polynomial.monomials:
                names = sorted(monomial.variables)
                assert len(names) == 2
                assert names[0].startswith("m") and names[1].startswith("p")

    def test_trees_compatible_with_provenance(self, small_telephony):
        provenance = small_telephony.provenance()
        forest = AbstractionForest(
            [
                small_telephony.plans_abstraction_tree((4,)),
                small_telephony.months_abstraction_tree(),
            ]
        )
        cleaned = forest.clean(provenance)
        cleaned.check_compatible(provenance)

    def test_provenance_totals_match_plain_sql(self, small_telephony):
        """Valuating everything at 1 equals the unparameterized SUM."""
        cust, calls, plans = small_telephony.relations()
        result = revenue_by_zip(cust, calls, plans, small_telephony.plan_variable)
        from repro.engine import Query

        plain = (
            Query(calls)
            .join(cust, on=("CID", "ID"))
            .join(plans, on=["Plan", "Mo"])
            .group_by("Zip")
            .sum(lambda r: r["Dur"] * r["Price"])
        )
        for key, polynomial in result:
            assert polynomial.evaluate({}) == pytest.approx(plain.value(key))
