"""Abstraction-selection algorithms (§3 of the paper).

* :func:`~repro.algorithms.optimal.optimal_vvs` — Algorithm 1, the
  optimal PTIME dynamic program for a single abstraction tree;
* :func:`~repro.algorithms.greedy.greedy_vvs` — Algorithm 2, the greedy
  heuristic for forests (the general problem is NP-hard);
* :func:`~repro.algorithms.brute_force.brute_force_vvs` — exhaustive cut
  enumeration, the paper's baseline;
* :func:`~repro.algorithms.competitor.summarize` — the Ainy et al.
  (CIKM 2015) pairwise-merge summarization used as the external
  comparison in Figure 12;
* :func:`~repro.algorithms.decision.exists_precise` — Definition 10's
  decision problem (exact DP for one tree, enumeration otherwise);
* :mod:`~repro.algorithms.registry` — the name→solver registry behind
  the CLI and the :mod:`repro.api` facade, with the ``"auto"`` policy.
"""

from repro.algorithms.brute_force import TooManyCutsError, brute_force_vvs
from repro.algorithms.competitor import CompetitorResult, TreeOracle, summarize
from repro.algorithms.decision import exists_precise, precise_pairs
from repro.algorithms.exact import SearchBudgetExceededError, exact_forest_vvs
from repro.algorithms.greedy import GreedyStep, greedy_vvs
from repro.algorithms.optimal import optimal_vvs, optimal_vvs_naive
from repro.algorithms import registry
from repro.algorithms.result import AbstractionResult, InfeasibleBoundError

__all__ = [
    "registry",
    "optimal_vvs",
    "optimal_vvs_naive",
    "greedy_vvs",
    "GreedyStep",
    "brute_force_vvs",
    "TooManyCutsError",
    "exact_forest_vvs",
    "SearchBudgetExceededError",
    "summarize",
    "CompetitorResult",
    "TreeOracle",
    "exists_precise",
    "precise_pairs",
    "AbstractionResult",
    "InfeasibleBoundError",
]
