"""Shared infrastructure for the experiment benchmarks.

Every figure/table of the paper's §4 (and Appendix B) has one bench
module; they all pull their workloads from here so the expensive
generation work happens once per pytest session. Scales are chosen so
the full suite runs in minutes on a laptop — the paper's absolute
numbers used 1–10 GB inputs, ours exercise the same code paths and
preserve the qualitative shapes (see EXPERIMENTS.md).

Each bench prints the paper-style series/table via ``emit`` — the text
also lands in ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can
quote measured numbers.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.core.abstraction import abstract_counts
from repro.core.forest import AbstractionForest
from repro.core.tree import AbstractionTree
from repro.util.tables import format_table
from repro.util.timing import Timer
from repro.workloads.telephony import TelephonyBenchmark
from repro.workloads.tpch import generate, query_provenance, supplier_variables
from repro.workloads.trees import TREE_CATALOG, layered_tree

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Benchmarked workloads, in the paper's presentation order. Q10 and the
#: running example are the paper's "many small polynomials" cases; Q1
#: and Q5 the "few large" ones.
WORKLOADS = ["tpch-q5", "tpch-q10", "tpch-q1", "telephony"]

#: Brute force is reported by the paper only below 80,000 cuts.
BRUTE_FORCE_CUT_LIMIT = 80_000

_TPCH_SCALE = 0.002
_TPCH_SEED = 7

#: Discount-parameterization alphabets. The paper uses 128×128 over
#: 10 GB of data; at bench scale that would leave every (sᵢ, pⱼ)
#: combination nearly unique (nothing to merge), so the benches shrink
#: the alphabets while the workload code keeps the paper's defaults.
_TPCH_BUCKETS = (32, 32)


@lru_cache(maxsize=None)
def tpch_database(scale_factor=_TPCH_SCALE, seed=_TPCH_SEED):
    return generate(scale_factor=scale_factor, seed=seed)


@lru_cache(maxsize=None)
def telephony_benchmark(customers=300, seed=5):
    return TelephonyBenchmark(
        customers=customers, num_plans=32, months=12, zip_pool=50, seed=seed
    )


@lru_cache(maxsize=None)
def workload_provenance(name, scale=1.0):
    """The provenance PolynomialSet of a named workload.

    ``scale`` grows/shrinks the underlying database (Figure 8 sweeps it).
    """
    if name.startswith("tpch-"):
        db = tpch_database(scale_factor=_TPCH_SCALE * scale)
        return query_provenance(db, name.split("-", 1)[1], buckets=_TPCH_BUCKETS)
    if name == "telephony":
        bench = telephony_benchmark(customers=max(20, int(300 * scale)))
        return bench.provenance()
    raise ValueError(f"unknown workload {name!r}")


@lru_cache(maxsize=None)
def workload_tree(name, fanouts):
    """The workload's abstraction tree with the given layer fan-outs.

    TPC-H workloads use the supplier variables (Figure 4); the telephony
    workload uses its plan variables. Fan-out products that do not
    divide the (bench-scaled) alphabet are padded by the caller's choice
    of configuration — see :func:`scaled_fanouts`.
    """
    if name.startswith("tpch-"):
        leaves = supplier_variables(_TPCH_BUCKETS[0])
        prefix = "sup"
    elif name == "telephony":
        leaves = telephony_benchmark().plan_variables
        prefix = "plans"
    else:
        raise ValueError(f"unknown workload {name!r}")
    return layered_tree(leaves, fanouts, prefix=prefix)


def scaled_fanouts(fanouts, num_leaves=32):
    """Clamp a Table 2 fan-out spec to a smaller leaf alphabet.

    Keeps the tree *shape* (number of levels, relative fan-outs) while
    ensuring the product of fan-outs divides ``num_leaves``.
    """
    clamped = []
    remaining = num_leaves
    for fanout in fanouts:
        fanout = min(fanout, max(1, remaining // 2))
        while remaining % fanout:
            fanout -= 1
        clamped.append(fanout)
        remaining //= fanout
    return tuple(clamped)


def feasible_bound(provenance, tree_or_forest, fraction=0.5):
    """A bound demanding ``fraction`` of the achievable compression.

    The paper's 10 GB runs use ``B = 0.5 · |P|_M`` directly; at bench
    scale the polynomials are sparser, so the bound is placed relative
    to the feasible range [min achievable size, |P|_M] — exactly how
    the paper's own Figure 9 positions its bound sweep.
    """
    if isinstance(tree_or_forest, AbstractionTree):
        forest = AbstractionForest([tree_or_forest])
    else:
        forest = tree_or_forest
    cleaned = forest.clean(provenance)
    if not cleaned.trees:
        return provenance.num_monomials
    min_size, _ = abstract_counts(provenance, cleaned.root_vvs().mapping())
    total = provenance.num_monomials
    return max(1, total - int(fraction * (total - min_size)))


def cleaned_single_tree(name, fanouts, scale=1.0):
    """(provenance, cleaned tree) for a workload — or (provenance, None)
    when no tree leaf occurs in the provenance."""
    provenance = workload_provenance(name, scale)
    tree = workload_tree(name, fanouts)
    return provenance, tree.clean(provenance.variables)


def timed(fn, *args, **kwargs):
    """(seconds, result) of one call."""
    with Timer() as timer:
        result = fn(*args, **kwargs)
    return timer.elapsed, result


def default_bound(provenance, ratio=0.5):
    """The paper's default bound: 0.5 of the input polynomial size."""
    return max(1, int(provenance.num_monomials * ratio))


def forest_of(tree):
    return AbstractionForest([tree])


def catalog_fanouts(tree_type):
    """The Table 2 fan-out configurations of a tree type."""
    return TREE_CATALOG[tree_type]


def emit(name, headers, rows, title):
    """Print a paper-style table and persist it under results/."""
    text = format_table(headers, rows, title=title)
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    return text
