"""Semiring law tests for every provided semiring (incl. property-based)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.parser import parse
from repro.core.polynomial import Polynomial
from repro.semiring import (
    BOOLEAN,
    FUZZY,
    LINEAGE,
    NATURAL,
    PROVENANCE,
    REAL,
    TROPICAL,
    VITERBI,
    WHY,
)

ALL_SEMIRINGS = [BOOLEAN, NATURAL, REAL, TROPICAL, VITERBI, FUZZY, LINEAGE, WHY,
                 PROVENANCE]


def _elements(semiring):
    """A small pool of representative elements per semiring."""
    if semiring is BOOLEAN:
        return [False, True]
    if semiring is NATURAL:
        return [0, 1, 2, 5]
    if semiring is REAL:
        return [0.0, 1.0, 2.5]
    if semiring is TROPICAL:
        return [math.inf, 0.0, 1.5, 3.0]
    if semiring is VITERBI:
        return [0.0, 0.25, 1.0]
    if semiring is FUZZY:
        return [0.0, 0.5, 1.0]
    if semiring is LINEAGE:
        return [None, frozenset(), frozenset({"x"}), frozenset({"x", "y"})]
    if semiring is WHY:
        return [
            frozenset(),
            frozenset([frozenset()]),
            frozenset([frozenset({"x"})]),
            frozenset([frozenset({"x"}), frozenset({"y"})]),
        ]
    if semiring is PROVENANCE:
        return [Polynomial.zero(), Polynomial.constant(1), parse("x"), parse("x + y")]
    raise AssertionError(semiring)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
class TestSemiringLaws:
    def test_additive_identity(self, semiring):
        for a in _elements(semiring):
            assert semiring.plus(a, semiring.zero) == a
            assert semiring.plus(semiring.zero, a) == a

    def test_multiplicative_identity(self, semiring):
        for a in _elements(semiring):
            assert semiring.times(a, semiring.one) == a
            assert semiring.times(semiring.one, a) == a

    def test_zero_annihilates(self, semiring):
        for a in _elements(semiring):
            assert semiring.times(a, semiring.zero) == semiring.zero

    def test_plus_commutative(self, semiring):
        pool = _elements(semiring)
        for a in pool:
            for b in pool:
                assert semiring.plus(a, b) == semiring.plus(b, a)

    def test_times_commutative(self, semiring):
        pool = _elements(semiring)
        for a in pool:
            for b in pool:
                assert semiring.times(a, b) == semiring.times(b, a)

    def test_plus_associative(self, semiring):
        pool = _elements(semiring)
        for a in pool:
            for b in pool:
                for c in pool:
                    assert semiring.plus(semiring.plus(a, b), c) == semiring.plus(
                        a, semiring.plus(b, c)
                    )

    def test_times_associative(self, semiring):
        pool = _elements(semiring)
        for a in pool:
            for b in pool:
                for c in pool:
                    assert semiring.times(semiring.times(a, b), c) == semiring.times(
                        a, semiring.times(b, c)
                    )

    def test_distributivity(self, semiring):
        pool = _elements(semiring)
        for a in pool:
            for b in pool:
                for c in pool:
                    left = semiring.times(a, semiring.plus(b, c))
                    right = semiring.plus(
                        semiring.times(a, b), semiring.times(a, c)
                    )
                    assert left == right

    def test_from_int_is_homomorphic_on_addition(self, semiring):
        for n in range(4):
            for m in range(4):
                assert semiring.plus(
                    semiring.from_int(n), semiring.from_int(m)
                ) == semiring.from_int(n + m)

    def test_from_int_rejects_negative(self, semiring):
        with pytest.raises(ValueError):
            semiring.from_int(-1)

    def test_folds(self, semiring):
        pool = _elements(semiring)
        assert semiring.sum([]) == semiring.zero
        assert semiring.product([]) == semiring.one
        assert semiring.sum(pool[:1]) == pool[0]

    def test_power(self, semiring):
        for a in _elements(semiring):
            assert semiring.power(a, 0) == semiring.one
            assert semiring.power(a, 1) == a
            assert semiring.power(a, 2) == semiring.times(a, a)

    def test_power_rejects_negative(self, semiring):
        with pytest.raises(ValueError):
            semiring.power(semiring.one, -1)


class TestSpecifics:
    @given(st.integers(0, 50), st.integers(0, 50))
    def test_natural_from_int_multiplicative(self, n, m):
        assert NATURAL.times(NATURAL.from_int(n), NATURAL.from_int(m)) == n * m

    def test_tropical_models_shortest_path(self):
        # Two paths of costs 3 and 5: combined cost min(3, 5).
        assert TROPICAL.plus(3.0, 5.0) == 3.0
        # A path of two edges: costs add.
        assert TROPICAL.times(2.0, 4.0) == 6.0

    def test_lineage_zero_is_distinct_from_empty(self):
        assert LINEAGE.zero is None
        assert LINEAGE.one == frozenset()
        assert LINEAGE.plus(None, frozenset({"x"})) == frozenset({"x"})

    def test_why_times_pairs_witnesses(self):
        a = frozenset([frozenset({"x"})])
        b = frozenset([frozenset({"y"}), frozenset({"z"})])
        assert WHY.times(a, b) == frozenset(
            [frozenset({"x", "y"}), frozenset({"x", "z"})]
        )

    def test_provenance_is_free_over_variables(self):
        x, y = PROVENANCE.variable("x"), PROVENANCE.variable("y")
        assert PROVENANCE.plus(x, y) == parse("x + y")
        assert PROVENANCE.times(x, y) == parse("x*y")
        assert PROVENANCE.monomial("x", ("y", 2)) == parse("x*y^2")
